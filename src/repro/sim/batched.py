"""Struct-of-arrays lockstep kernel over many independent fast engines.

Campaign seeds and array shards are embarrassingly parallel, but on one
interpreter each :class:`~repro.sim.fast.FastEngine` pays the full Python
epoch overhead — redirect rebuilds, threshold scans, migration loops — per
cell.  :class:`BatchedEngine` advances N fresh engines in lockstep inside
one process with their hot state re-homed into ``(N, num_blocks)``
struct-of-arrays:

* ``wear``, ``failed`` and the ECC threshold vectors become rows of shared
  2-D arrays; each engine's own attributes are replaced by row *views*, so
  every existing code path (ECC extension, fault-injection clamps, failure
  bookkeeping) reads and writes the same memory the kernel scans;
* the common epoch case — no block crossed its threshold, no block is dead
  — is applied as one ``np.add.at`` per cell plus a single vectorized
  threshold scan across the cell axis, skipping the per-cell
  ``np.unique``/resolve machinery entirely;
* Start-Gap migration batches advance via a closed-form register update
  (:func:`startgap_bulk_rows`) instead of the per-move commit loop;
* anything rare (threshold crossings, exposed failures, recovery
  bookkeeping) drops back to the engine's own round machinery
  (:meth:`~repro.sim.fast.FastEngine._software_rounds` and friends), so
  those paths stay byte-identical by construction.

Cells that stop early are *masked out of the active set*, never removed:
their engines keep their row views, stop reasons and series, so the
returned summaries and telemetry snapshots match the per-cell path
bit-for-bit.  Injection (``engine.inject``) and telemetry
(``engine.telem``) hooks keep their None defaults and are honored per
cell.

The module also hosts the *batchable-cell registry* the grid runner uses:
experiment modules register a ``build``/``finish`` pair for their cell
function, and :func:`run_cell_batch` folds a homogeneous group of grid
cells into one lockstep kernel, falling back to the original cell callable
for anything that does not conform (e.g. LLS cells, whose engine subclass
rebuilds its wear-leveler mid-run).
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import CapacityExhaustedError, ConfigurationError
from ..wl.startgap import StartGap
from .fast import FastEngine
from .metrics import LifetimeSummary
from .stop import StopCause, StopReason

__all__ = [
    "BatchedEngine",
    "BatchableSpec",
    "register_batchable",
    "is_batchable",
    "run_cell_batch",
    "startgap_bulk_rows",
]


def startgap_bulk_rows(wl: StartGap, moves: int) -> np.ndarray:
    """Closed-form equivalent of ``StartGap.bulk_migrations(moves)``.

    The per-move loop commits one register update per migration and calls
    the randomizer's inverse for a changed-PA report that
    ``bulk_migrations`` callers discard.  The gap position is periodic with
    period ``L + 1``, so the whole batch of ``(src, dst)`` endpoint rows
    and the final register state follow in O(moves) numpy work with no
    Feistel evaluations at all:

    ``gap_k = (gap_0 - k) mod (L + 1)``; move *k* copies
    ``((gap_k - 1) mod (L + 1), gap_k)`` (the wrap move ``(L, 0)`` falls
    out of the same formula); ``start`` advances once per wrap.
    """
    if wl.frozen or moves <= 0:
        return np.empty((0, 2), dtype=np.int64)
    logical = wl.logical_blocks
    period = logical + 1
    gaps = (wl.gap - np.arange(moves, dtype=np.int64)) % period
    rows = np.empty((moves, 2), dtype=np.int64)
    rows[:, 0] = (gaps - 1) % period
    rows[:, 1] = gaps
    wraps = int(np.count_nonzero(gaps == 0))
    wl.gap = int((wl.gap - moves) % period)
    wl.start = (wl.start + wraps) % logical
    wl.gap_moves += moves
    return rows


def _cache_randomizer(wl: StartGap) -> None:
    """Shadow the wl's static address permutation with a lookup table.

    The randomizer's Feistel keys are fixed at construction, so
    ``forward_many`` is a pure function of its input — tabulating it once
    and indexing is exact memoization, not an approximation.  The kernel
    calls it every redirect rebuild and software round, where the
    per-call network evaluation otherwise dominates the batched profile.
    """
    randomizer = wl.randomizer
    table = randomizer.forward_many(
        np.arange(wl.logical_blocks, dtype=np.int64))

    def forward_many(addresses: np.ndarray) -> np.ndarray:
        return table[np.asarray(addresses, dtype=np.int64)]

    setattr(randomizer, "forward_many", forward_many)


def _has_links(engine: FastEngine) -> bool:
    """Whether the engine's redirect table can differ from identity."""
    mode = engine.config.recovery
    if mode == "reviver":
        return bool(engine.links)
    if mode == "freep":
        return engine.region is not None and bool(engine.region.links)
    return False


def _round_limit(engine: FastEngine) -> int:
    """The engine's per-epoch re-issue round budget."""
    return engine.chip.num_blocks + engine.ospool.num_pages + 4


class BatchedEngine:
    """Advance N fresh :class:`FastEngine` cells in lockstep.

    ``run()`` may be called once; it returns one
    :class:`~repro.sim.metrics.LifetimeSummary` per engine, in input
    order, with every engine left in exactly the state a standalone
    ``engine.run()`` would have produced.
    """

    def __init__(self, engines: Sequence[FastEngine]) -> None:
        if not engines:
            raise ConfigurationError("BatchedEngine needs at least one engine")
        for engine in engines:
            if type(engine) is not FastEngine:
                raise ConfigurationError(
                    f"BatchedEngine requires plain FastEngine cells, got "
                    f"{type(engine).__name__}")
            if engine.total_writes != 0 or engine.stop is not None:
                raise ConfigurationError(
                    "BatchedEngine requires fresh engines (no writes, "
                    "no stop reason)")
        blocks = {engine.chip.num_blocks for engine in engines}
        if len(blocks) != 1:
            raise ConfigurationError(
                f"BatchedEngine cells must share num_blocks, got {sorted(blocks)}")
        self.engines: List[FastEngine] = list(engines)
        self.num_blocks = blocks.pop()
        n = len(self.engines)
        #: (N, B) struct-of-arrays views over every cell's hot state.
        self.wear = np.zeros((n, self.num_blocks), dtype=np.int64)
        self.failed = np.zeros((n, self.num_blocks), dtype=bool)
        self.thresholds = np.zeros((n, self.num_blocks), dtype=np.int64)
        #: Cells whose ECC does not expose an int64 threshold vector we can
        #: re-home; they run the per-cell resolve every epoch (matching the
        #: per-cell path exactly) instead of the vectorized crossing scan.
        self._always_resolve = np.zeros(n, dtype=bool)
        self._ran = False

    # ------------------------------------------------------------- re-homing

    def _rehome(self) -> None:
        """Move per-cell hot state into SoA rows, leaving row views behind.

        ``chip.wear``/``chip.failed``/``ecc._thresholds`` are assigned only
        in their constructors and mutated element-wise everywhere else
        (ECC extension, fault-injection clamps), so replacing each with a
        row view aliases every later mutation into the batched arrays.
        """
        for i, engine in enumerate(self.engines):
            if type(engine.wl) is StartGap:
                _cache_randomizer(engine.wl)
            chip = engine.chip
            self.wear[i] = chip.wear
            self.failed[i] = chip.failed
            chip.wear = self.wear[i]
            chip.failed = self.failed[i]
            backing = getattr(chip.ecc, "_thresholds", None)
            if (isinstance(backing, np.ndarray)
                    and backing is chip.ecc.thresholds
                    and backing.shape == (self.num_blocks,)
                    and backing.dtype == np.int64):
                self.thresholds[i] = backing
                setattr(chip.ecc, "_thresholds", self.thresholds[i])
            else:
                self.thresholds[i] = np.iinfo(np.int64).max
                self._always_resolve[i] = True

    # ------------------------------------------------------------------- run

    def run(self) -> List[LifetimeSummary]:
        """Run every cell to its stop condition; return per-cell summaries."""
        if self._ran:
            raise ConfigurationError("BatchedEngine.run may only be called once")
        self._ran = True
        self._rehome()
        for engine in self.engines:
            engine._begin_run()
        active = list(range(len(self.engines)))
        while active:
            running = []
            for i in active:
                stop = self.engines[i]._next_stop()
                if stop is not None:
                    self.engines[i].stop = stop
                else:
                    running.append(i)
            if not running:
                break
            active = self._lockstep_epoch(running)
        return [engine._finish_summary() for engine in self.engines]

    # ----------------------------------------------------------------- epoch

    def _lockstep_epoch(self, active: List[int]) -> List[int]:
        """One epoch for every active cell; returns the survivors.

        Per-cell operation order matches ``FastEngine._epoch`` exactly —
        only cross-cell orchestration is batched, and cells never share
        state, so interleaving cells is unobservable.
        """
        engines = self.engines
        batches = {i: engines[i]._epoch_batch() for i in active}
        has_failed = self.failed.any(axis=1)
        aborted: Set[int] = set()
        pending: Dict[int, tuple] = {}
        check: List[int] = []

        # --- software phase -------------------------------------------------
        software_start = time.perf_counter()  # repro: allow(DET-WALLCLOCK): phase profile only, stripped from compared payloads
        for i in active:
            engine = engines[i]
            counts = engine.trace.batch_counts(batches[i])
            engine._epoch_counts = counts
            redirected = _has_links(engine)
            if redirected:
                engine._rebuild_redirect()
            virtual = np.nonzero(counts)[0]
            remaining = counts[virtual].astype(np.int64)
            try:
                prepared = engine._prepare_round(virtual, remaining, True)
                if prepared is None:
                    continue
                virtual, remaining, pas, das, finals = prepared
                if has_failed[i] and engine.chip.failed[finals].any():
                    # Dead blocks in the epoch's write set: the engine's
                    # own rounds handle exposure/retry byte-identically.
                    engine._software_rounds(
                        virtual, remaining, first_round=False,
                        rounds=_round_limit(engine), prepared=prepared)
                    has_failed[i] = self.failed[i].any()
                    continue
            except CapacityExhaustedError as exc:
                self._abort(i, exc, aborted, stage="software")
                continue
            np.add.at(self.wear[i], finals, remaining)
            engine.chip.total_device_writes += int(remaining.sum())
            if redirected:
                engine._redirected_traffic += int(
                    remaining[finals != das].sum())
            pending[i] = (virtual, remaining, pas, das, finals)
            check.append(i)

        # One vectorized scan across the cell axis replaces N per-cell
        # unique+resolve passes; only cells with an actual crossing (or an
        # un-rehomed ECC) run the exact resolve/settle machinery.
        for i in self._crossed(check):
            engine = engines[i]
            virtual, remaining, pas, das, finals = pending[i]
            try:
                newly = engine.chip._resolve_threshold_crossings(
                    np.unique(finals))
                if newly.size:
                    has_failed[i] = True
                exposed = np.zeros(finals.shape[0], dtype=bool)
                virtual, remaining = engine._settle_round(
                    virtual, remaining, pas, das, finals, exposed, newly)
                if virtual.size:
                    engine._rebuild_redirect()
                    engine._software_rounds(
                        virtual, remaining, first_round=False,
                        rounds=_round_limit(engine) - 1)
                    has_failed[i] = self.failed[i].any()
            except CapacityExhaustedError as exc:
                self._abort(i, exc, aborted, stage="software")
        software_seconds = time.perf_counter() - software_start  # repro: allow(DET-WALLCLOCK): phase profile only, stripped from compared payloads

        # --- migration phase ------------------------------------------------
        migration_start = time.perf_counter()  # repro: allow(DET-WALLCLOCK): phase profile only, stripped from compared payloads
        mig_pending: Dict[int, np.ndarray] = {}
        mig_check: List[int] = []
        for i in active:
            if i in aborted:
                continue
            engine = engines[i]
            engine.total_writes += batches[i]
            if _has_links(engine):
                engine._rebuild_redirect()
            wl = engine.wl
            if wl.frozen:
                continue
            due = wl.schedule_due(engine.total_writes)
            if due <= 0:
                continue
            if type(wl) is StartGap:
                rows = startgap_bulk_rows(wl, due)
            else:
                rows = wl.bulk_migrations(due)
            if rows.size == 0:
                continue
            dsts = engine._redirect[rows[:, 1]]
            if has_failed[i]:
                dsts = dsts[~self.failed[i][dsts]]
                if dsts.size == 0:
                    continue
            np.add.at(self.wear[i], dsts, 1)
            engine.chip.total_device_writes += int(dsts.size)
            mig_pending[i] = dsts
            mig_check.append(i)

        for i in self._crossed(mig_check):
            engine = engines[i]
            try:
                newly = engine.chip._resolve_threshold_crossings(
                    np.unique(mig_pending[i]))
                engine._process_failures(newly, migration=True)
            except CapacityExhaustedError as exc:
                self._abort(i, exc, aborted, stage="migration")
        migration_seconds = time.perf_counter() - migration_start  # repro: allow(DET-WALLCLOCK): phase profile only, stripped from compared payloads

        # --- bookkeeping ----------------------------------------------------
        survivors = [i for i in active if i not in aborted]
        share = 1.0 / max(1, len(survivors))
        for i in survivors:
            engine = engines[i]
            engine._note_phase("redirect-rebuild", 0.0)
            engine._note_phase("redirect-rebuild", 0.0)
            engine._note_phase("software-apply", software_seconds * share)
            engine._note_phase("wear-leveling", migration_seconds * share)
            engine._note_epoch(batches[i])
            engine._sample()
        return survivors

    def _crossed(self, cells: List[int]) -> List[int]:
        """Cells with any live block at/over threshold (input order kept).

        ``_always_resolve`` cells are included unconditionally — the
        per-cell path resolves them every epoch, so they must here too.
        """
        if not cells:
            return []
        rows = np.asarray(cells, dtype=np.int64)
        hot = ((self.wear[rows] >= self.thresholds[rows])
               & ~self.failed[rows]).any(axis=1)
        hot |= self._always_resolve[rows]
        return [i for i, flag in zip(cells, hot.tolist()) if flag]

    def _abort(self, i: int, exc: CapacityExhaustedError, aborted: Set[int],
               stage: str) -> None:
        """End cell *i* mid-epoch exactly like the per-cell exception path.

        The per-cell telemetry context managers credit every phase entered
        before the exception, so the credits here depend on the stage that
        raised; the epoch counters are never credited for a partial epoch.
        """
        engine = self.engines[i]
        engine.stop = StopReason(StopCause.EXHAUSTED, str(exc))
        engine._note_phase("redirect-rebuild", 0.0)
        engine._note_phase("software-apply", 0.0)
        if stage == "migration":
            engine._note_phase("redirect-rebuild", 0.0)
            engine._note_phase("wear-leveling", 0.0)
        engine._sample()
        aborted.add(i)


# ----------------------------------------------------------- cell registry

#: ``build(**kwargs)`` returns the cell's engine (optionally paired with an
#: opaque context the finisher needs), or ``None`` to decline batching;
#: ``finish(engine, summary, context)`` turns a completed run into the cell
#: payload the grid expects.
@dataclass
class BatchableSpec:
    build: Callable[..., Any]
    finish: Callable[[FastEngine, LifetimeSummary, Any], Any]


_REGISTRY: Dict[str, BatchableSpec] = {}


def register_batchable(fn_ref: str,
                       build: Callable[..., Any],
                       finish: Callable[[FastEngine, LifetimeSummary, Any],
                                        Any]) -> None:
    """Declare ``module:function`` grid cells batchable via build/finish."""
    _REGISTRY[fn_ref] = BatchableSpec(build=build, finish=finish)


def _resolve_fn(fn_ref: str) -> Callable[..., Any]:
    module_name, _, attr = fn_ref.partition(":")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise ConfigurationError(f"cell function {fn_ref!r} is not callable")
    return fn


def is_batchable(fn_ref: str) -> bool:
    """Whether a grid cell function has a registered batchable spec.

    Importing the module is enough: registration happens at import time.
    """
    if fn_ref in _REGISTRY:
        return True
    module_name, sep, _ = fn_ref.partition(":")
    if not sep:
        return False
    try:
        importlib.import_module(module_name)
    except ImportError:
        return False
    return fn_ref in _REGISTRY


def run_cell_batch(fn_ref: str,
                   items: Sequence[Tuple[str, Dict[str, Any]]]
                   ) -> List[Tuple[str, Any]]:
    """Run a group of same-function grid cells through one lockstep kernel.

    ``items`` is ``[(key, kwargs), ...]``; the return preserves input
    order.  Cells whose build declines (returns ``None``) or yields a
    non-conforming engine run through the original cell callable instead,
    so mixed groups still complete.
    """
    spec = _REGISTRY.get(fn_ref)
    if spec is None and is_batchable(fn_ref):
        spec = _REGISTRY[fn_ref]
    if spec is None:
        raise ConfigurationError(f"cell function {fn_ref!r} is not batchable")
    results: Dict[str, Any] = {}
    fallback: Optional[Callable[..., Any]] = None
    built: List[Tuple[str, FastEngine, Any]] = []
    for key, kwargs in items:
        made = spec.build(**kwargs)
        engine, context = (made if isinstance(made, tuple)
                           else (made, None))
        if type(engine) is not FastEngine:
            if fallback is None:
                fallback = _resolve_fn(fn_ref)
            results[key] = fallback(**kwargs)
            continue
        built.append((key, engine, context))
    groups: Dict[int, List[Tuple[str, FastEngine, Any]]] = {}
    for entry in built:
        groups.setdefault(entry[1].chip.num_blocks, []).append(entry)
    for group in groups.values():
        if len(group) == 1:
            key, engine, context = group[0]
            results[key] = spec.finish(engine, engine.run(), context)
            continue
        summaries = BatchedEngine([e for _, e, _ in group]).run()
        for (key, engine, context), summary in zip(group, summaries):
            results[key] = spec.finish(engine, summary, context)
    return [(key, results[key]) for key, _ in items]
