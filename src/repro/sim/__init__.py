"""Simulation engines and metrics.

Two engines drive the same component stack at different fidelities:

* :class:`~repro.sim.engine.ExactEngine` — one software write at a time
  through a full :class:`~repro.mc.controller.BaseController`, with
  per-request access accounting, optional data-consistency verification,
  and invariant checking.  Used by tests, Table II, and small studies.
* :class:`~repro.sim.fast.FastEngine` — vectorized epoch simulation for
  lifetime-scale runs (Figures 5-8): writes are applied as batched
  per-block counts, wear-leveling advances in bulk, and failures are
  processed per batch.  Wear outcomes match the exact engine's shape; an
  agreement test pins the two together on small configurations.

:class:`~repro.sim.batched.BatchedEngine` advances N fresh fast engines
in lockstep with struct-of-arrays state (campaigns, batched grids); its
results are byte-identical to N separate ``FastEngine.run()`` calls.

:mod:`~repro.sim.metrics` defines the collectors both engines feed
(survival-rate and usable-space series, lifetime summaries).
"""

from .metrics import LifetimeSeries, LifetimeSummary, SamplePoint
from .batched import BatchedEngine, register_batchable, startgap_bulk_rows
from .engine import ExactEngine
from .fast import FastEngine, FastConfig
from .stop import EndOfLifeReport, StopCause, StopReason
from .wearstats import WearReport, endurance_utilization, gini, wear_cov

__all__ = [
    "LifetimeSeries", "LifetimeSummary", "SamplePoint",
    "BatchedEngine", "register_batchable", "startgap_bulk_rows",
    "ExactEngine", "FastEngine", "FastConfig",
    "EndOfLifeReport", "StopCause", "StopReason",
    "WearReport", "endurance_utilization", "gini", "wear_cov",
]
