"""Simulation engines and metrics.

Two engines drive the same component stack at different fidelities:

* :class:`~repro.sim.engine.ExactEngine` — one software write at a time
  through a full :class:`~repro.mc.controller.BaseController`, with
  per-request access accounting, optional data-consistency verification,
  and invariant checking.  Used by tests, Table II, and small studies.
* :class:`~repro.sim.fast.FastEngine` — vectorized epoch simulation for
  lifetime-scale runs (Figures 5-8): writes are applied as batched
  per-block counts, wear-leveling advances in bulk, and failures are
  processed per batch.  Wear outcomes match the exact engine's shape; an
  agreement test pins the two together on small configurations.

:mod:`~repro.sim.metrics` defines the collectors both engines feed
(survival-rate and usable-space series, lifetime summaries).
"""

from .metrics import LifetimeSeries, LifetimeSummary, SamplePoint
from .engine import ExactEngine
from .fast import FastEngine, FastConfig
from .stop import EndOfLifeReport, StopCause, StopReason
from .wearstats import WearReport, endurance_utilization, gini, wear_cov

__all__ = [
    "LifetimeSeries", "LifetimeSummary", "SamplePoint",
    "ExactEngine", "FastEngine", "FastConfig",
    "EndOfLifeReport", "StopCause", "StopReason",
    "WearReport", "endurance_utilization", "gini", "wear_cov",
]
