"""The exact, per-write simulation engine.

Drives a fully assembled memory controller one software write at a time.
This is the highest-fidelity path: every PCM access is counted per request,
every fault handled at the precise write that triggered it, and (optionally)
every write's round-trip verified against a shadow model of the data.  Cost
limits it to small chips — exactly what Table II and the test suite need.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..errors import CapacityExhaustedError, SimulatedCrash
from ..mc.controller import BaseController, ReviverController
from ..traces.base import WriteTrace
from .metrics import LifetimeSeries, LifetimeSummary
from .stop import EndOfLifeReport, StopCause, StopReason

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..faultinject.hooks import ScheduleDriver
    from ..telemetry.session import TelemetrySession


class ExactEngine:
    """Per-write driver around a controller and a trace."""

    def __init__(self, controller: BaseController, trace: WriteTrace,
                 dead_fraction: float = 0.3,
                 sample_interval: int = 10_000,
                 verify: bool = False,
                 read_fraction: float = 0.0,
                 label: str = "") -> None:
        if trace.virtual_blocks > controller.ospool.virtual_blocks:
            raise ValueError(
                f"trace space {trace.virtual_blocks} exceeds the software "
                f"space {controller.ospool.virtual_blocks}")
        self.controller = controller
        self.trace = trace
        self.dead_fraction = dead_fraction
        self.sample_interval = sample_interval
        self.verify = verify
        self.read_fraction = read_fraction
        self.series = LifetimeSeries(label=label or trace.name)
        #: Shadow model: virtual block -> last tag written (verify mode).
        self.expected: Dict[int, int] = {}
        self._next_tag = 1
        self._reads_owed = 0.0
        #: Structured reason the run ended (None while running).
        self.stop: Optional[StopReason] = None
        #: Fault-injection driver polled once per write; ``None`` (the
        #: default) disables injection.  Only :mod:`repro.faultinject`
        #: may set this.
        self.inject: Optional["ScheduleDriver"] = None
        #: Telemetry hook; ``None`` (the default) disables phase timing.
        #: Only :mod:`repro.telemetry` may attach a session.
        self.telem: Optional["TelemetrySession"] = None

    @property
    def stopped_reason(self) -> Optional[str]:
        """Legacy string form of :attr:`stop` (None while running)."""
        return self.stop.render() if self.stop is not None else None

    # ------------------------------------------------------------------- run

    def run(self, max_writes: Optional[int] = None) -> LifetimeSummary:
        """Run until the chip is dead, space is gone, or *max_writes*."""
        controller = self.controller
        chip = controller.chip
        budget = max_writes if max_writes is not None else float("inf")
        while controller.writes < budget:
            if self.inject is not None:
                self.inject.poll(controller.writes)
            if chip.failed_fraction() >= self.dead_fraction:
                self.stop = StopReason(StopCause.DEAD_FRACTION)
                break
            try:
                self._step()
            except CapacityExhaustedError as exc:
                self.stop = StopReason(StopCause.EXHAUSTED, str(exc))
                break
            if controller.writes % self.sample_interval == 0:
                self._sample()
                if self.verify:
                    self.verify_all()
        else:
            self.stop = StopReason(StopCause.MAX_WRITES)
        self._sample()
        return LifetimeSummary.from_series(
            self.series, os_reports=controller.reporter.report_count)

    def _step(self) -> None:
        vblock = self.trace.next_write()
        tag = self._next_tag if self.verify else None
        self._next_tag += 1
        try:
            if self.telem is None:
                self.controller.service_write(vblock, tag=tag)
            else:
                with self.telem.phase("service-write"):
                    self.controller.service_write(vblock, tag=tag)
        except SimulatedCrash as crash:
            # Power loss mid-write: the write itself is lost along with all
            # volatile controller state; the controller reboots and the
            # run continues (the OS would simply reissue its workload).
            self.controller.lost_vblocks.add(vblock)
            if self.telem is None:
                self.controller.crash_and_recover(crash)
            else:
                with self.telem.phase("crash-recover"):
                    self.controller.crash_and_recover(crash)
            return
        if self.verify and tag is not None:
            self.expected[vblock] = tag
        # Interleave reads at the configured ratio (access-time studies).
        self._reads_owed += self.read_fraction
        while self._reads_owed >= 1.0:
            self._reads_owed -= 1.0
            if self.telem is None:
                self.controller.service_read(self.trace.next_write())
            else:
                with self.telem.phase("service-read"):
                    self.controller.service_read(self.trace.next_write())

    def _sample(self) -> None:
        chip = self.controller.chip
        self.series.record(
            writes=self.controller.writes,
            survival=1.0 - chip.failed_fraction(),
            usable=self.controller.software_usable_fraction(),
            avg_access=self.controller.stats.avg_access_time)

    # ------------------------------------------------------------- reporting

    def end_of_life_report(self) -> EndOfLifeReport:
        """Structured census of how (and how gracefully) the run ended."""
        controller = self.controller
        chip = controller.chip
        stop = self.stop if self.stop is not None else StopReason(
            StopCause.MAX_WRITES, "still running")
        os_interruptions = controller.reporter.report_count
        victimized = 0
        pages_acquired = 0
        spares_available = 0
        linked = 0
        loops = 0
        if isinstance(controller, ReviverController):
            reviver = controller.reviver
            victimized = reviver.reporter.victimized_count
            pages_acquired = reviver.ledger.pages_acquired
            spares_available = reviver.spares.available
            linked = len(reviver.links)
            for da in reviver.links.linked_blocks():
                vpa = reviver.links.vpa_of(da)
                # A PA-DA loop: the shadow PA maps straight back onto the
                # failed block it serves (garbage data by construction).
                if vpa is not None and reviver.map_fn(vpa) == da:
                    loops += 1
        return EndOfLifeReport(
            stop=stop,
            total_writes=controller.writes,
            failed_fraction=chip.failed_fraction(),
            usable_fraction=controller.software_usable_fraction(),
            os_interruptions=os_interruptions,
            victimized_writes=victimized,
            pages_acquired=pages_acquired,
            spares_available=spares_available,
            linked_blocks=linked,
            pa_da_loops=loops,
            crashes_recovered=controller.crashes_recovered)

    # ---------------------------------------------------------- verification

    def verify_all(self) -> None:
        """Assert every live virtual block reads back its last written tag."""
        if self.telem is not None:
            with self.telem.phase("verify"):
                self._verify_all()
            return
        self._verify_all()

    def _verify_all(self) -> None:
        lost = self.controller.lost_vblocks
        for vblock, tag in self.expected.items():
            if vblock in lost:
                continue
            result = self.controller.service_read(vblock)
            if result.tag != tag:
                raise AssertionError(
                    f"data corruption: vblock {vblock} read {result.tag}, "
                    f"expected {tag} (pa {result.pa}, da {result.da})")
