"""Seed-campaign runner: many Monte-Carlo lifetimes through one grid.

The reproduction's statistical results come from campaigns of independent
seeded lifetimes.  This module defines the canonical campaign cell — one
WL-Reviver chip stack per seed, all derived seed streams rooted at the
cell seed — and runs N of them through :class:`~repro.experiments.parallel.
GridRunner`, where the batchable registration lets ``--batch`` fold whole
seed groups into one struct-of-arrays kernel
(:mod:`repro.sim.batched`).

``python -m repro.sim.campaign --seeds 100 --jobs 2 --batch 25`` runs the
standard 100-seed campaign; ``--check`` re-runs it through the per-cell
path and fails on any byte difference, which is the equivalence gate the
CI ``batched-smoke`` job drives.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..config import StartGapConfig
from ..ecc import ECP
from ..pcm import AddressGeometry, EnduranceModel, PCMChip
from ..rng import derive_rng, spawn_seed
from ..telemetry import TelemetrySession, attach_fast, merge_snapshots
from ..traces.synthetic import hotspot_distribution
from ..wl import StartGap
from .fast import FastConfig, FastEngine
from .batched import register_batchable
from .metrics import LifetimeSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.parallel import Cell

#: Campaign hardware defaults: a migration-heavy working point (psi=4 at
#: 1024 blocks) where wear-leveling traffic dominates the epoch loop.
DEFAULTS: Dict[str, Any] = {
    "num_blocks": 1024,
    "mean_endurance": 2000.0,
    "endurance_cov": 0.25,
    "max_order": 16,
    "ecp_k": 6,
    "psi": 4,
    "batch_writes": 8000,
    "recovery": "reviver",
    "dead_fraction": 0.3,
    "trace_cov": 3.0,
}


def build_campaign_cell(seed: int,
                        num_blocks: int = 1024,
                        mean_endurance: float = 2000.0,
                        endurance_cov: float = 0.25,
                        max_order: int = 16,
                        ecp_k: int = 6,
                        psi: int = 4,
                        batch_writes: int = 8000,
                        recovery: str = "reviver",
                        dead_fraction: float = 0.3,
                        trace_cov: float = 3.0,
                        telemetry: bool = True,
                        ) -> Tuple[FastEngine, Optional[TelemetrySession]]:
    """Assemble one campaign cell's engine (and telemetry session).

    Every random stream is derived from the cell seed by purpose-named
    :func:`~repro.rng.derive_rng` children, so the per-cell and batched
    paths consume identical streams by construction.
    """
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(
        num_blocks=num_blocks, mean=mean_endurance, cov=endurance_cov,
        max_order=max_order,
        seed=spawn_seed(derive_rng(seed, "endurance")))
    chip = PCMChip(geometry, ECP(endurance, ecp_k))
    wl = StartGap(num_blocks, config=StartGapConfig(
        psi=psi, seed=spawn_seed(derive_rng(seed, "startgap"))))
    trace = hotspot_distribution(
        wl.logical_blocks, trace_cov,
        seed=spawn_seed(derive_rng(seed, "trace")))
    config = FastConfig(recovery=recovery, dead_fraction=dead_fraction,
                        batch_writes=batch_writes,
                        seed=spawn_seed(derive_rng(seed, "engine")))
    engine = FastEngine(chip, wl, trace, config, label=f"campaign-{seed}")
    session: Optional[TelemetrySession] = None
    if telemetry:
        session = TelemetrySession()
        attach_fast(session, engine)
    return engine, session


def finish_campaign_cell(engine: FastEngine, summary: LifetimeSummary,
                         session: Optional[TelemetrySession]) -> Dict[str, Any]:
    """Turn a completed campaign engine into the cell's JSON payload."""
    # Imported lazily: shard.py registers its own batchable cell with this
    # module's machinery, so a top-level import would be circular.
    from ..array.shard import deterministic_snapshot
    payload: Dict[str, Any] = {
        "lifetime": summary.lifetime_writes,
        "stop": engine.stopped_reason,
        "total_writes": engine.total_writes,
        "series": engine.series.to_payload(),
        "report": engine.end_of_life_report().as_dict(),
    }
    if session is not None:
        payload["snapshot"] = deterministic_snapshot(
            session.registry.snapshot())
    return payload


def campaign_cell(**kwargs: Any) -> Dict[str, Any]:
    """Grid cell function: build, run, and summarize one campaign seed."""
    engine, session = build_campaign_cell(**kwargs)
    return finish_campaign_cell(engine, engine.run(), session)


register_batchable(f"{__name__}:campaign_cell",
                   build_campaign_cell, finish_campaign_cell)


def campaign_grid(seeds: int, seed: int = 0, telemetry: bool = True,
                  **params: Any) -> List["Cell"]:
    """The campaign's cells: ``campaign/NNNN`` keys with derived seeds."""
    from ..experiments.parallel import Cell, cell_seed
    cells = []
    merged = dict(DEFAULTS)
    merged.update(params)
    for index in range(seeds):
        key = f"campaign/{index:04d}"
        kwargs = dict(merged)
        kwargs["seed"] = cell_seed(seed, key)
        kwargs["telemetry"] = telemetry
        cells.append(Cell(key=key, fn=f"{__name__}:campaign_cell",
                          kwargs=kwargs))
    return cells


def run_campaign(seeds: int, seed: int = 0, jobs: int = 1, batch: int = 1,
                 telemetry: bool = True,
                 resume: Union[None, str, Path] = None,
                 progress: Any = None,
                 **params: Any) -> Dict[str, Any]:
    """Run the campaign; return cells, lifetime stats, merged telemetry."""
    from ..experiments.parallel import GridRunner
    cells = campaign_grid(seeds, seed=seed, telemetry=telemetry, **params)
    runner = GridRunner(jobs=jobs, resume=resume, progress=progress,
                        batch=batch)
    results = runner.run(cells)
    ordered = [results[cell.key] for cell in cells]
    lifetimes = [record["lifetime"] for record in ordered]
    payload: Dict[str, Any] = {
        "seeds": seeds,
        "seed": seed,
        "cells": {cell.key: record
                  for cell, record in zip(cells, ordered)},
        "lifetimes": lifetimes,
        "mean_lifetime": (sum(lifetimes) / len(lifetimes)
                          if lifetimes else 0.0),
    }
    if telemetry:
        merged: Dict[str, Dict[str, object]] = {}
        for record in ordered:
            merged = merge_snapshots(merged, record["snapshot"])
        payload["snapshot"] = merged
    return payload


def _comparable(payload: Dict[str, Any]) -> str:
    """Canonical JSON for equality checks (timings never enter cells)."""
    return json.dumps(payload, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.campaign",
        description="Monte-Carlo lifetime campaign over seeded cells.")
    parser.add_argument("--seeds", type=int, default=100,
                        help="number of campaign seeds (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root experiment seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--batch", type=int, default=1,
                        help="cells per struct-of-arrays group (default 1: "
                             "per-cell engines)")
    parser.add_argument("--blocks", type=int,
                        default=int(DEFAULTS["num_blocks"]),
                        help="device blocks per cell")
    parser.add_argument("--mean", type=float,
                        default=float(DEFAULTS["mean_endurance"]),
                        help="mean block endurance (scaled writes)")
    parser.add_argument("--psi", type=int, default=int(DEFAULTS["psi"]),
                        help="Start-Gap psi (writes per gap move)")
    parser.add_argument("--recovery", default=str(DEFAULTS["recovery"]),
                        choices=("reviver", "none", "freep"),
                        help="recovery mode (default reviver)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="skip per-cell telemetry sessions")
    parser.add_argument("--resume", type=Path, default=None,
                        help="JSON file persisting completed cells")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full campaign payload here")
    parser.add_argument("--check", action="store_true",
                        help="re-run per-cell (batch=1, jobs=1) and fail "
                             "on any byte difference")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    params = dict(num_blocks=args.blocks, mean_endurance=args.mean,
                  psi=args.psi, recovery=args.recovery)
    telemetry = not args.no_telemetry
    payload = run_campaign(args.seeds, seed=args.seed, jobs=args.jobs,
                           batch=args.batch, telemetry=telemetry,
                           resume=args.resume, **params)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, sort_keys=True, indent=2))
    if not args.quiet:
        print(f"campaign: {args.seeds} seeds, batch={args.batch}, "
              f"jobs={args.jobs}, mean lifetime "
              f"{payload['mean_lifetime']:.1f} writes")
    if args.check:
        reference = run_campaign(args.seeds, seed=args.seed, jobs=1,
                                 batch=1, telemetry=telemetry, **params)
        if _comparable(payload) != _comparable(reference):
            print("campaign check FAILED: batched output differs from "
                  "the per-cell path", file=sys.stderr)
            return 1
        if not args.quiet:
            print("campaign check passed: batched output is byte-identical "
                  "to the per-cell path")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
