"""Structured stop handling and the end-of-life report.

Both engines used to format their own ad-hoc ``stopped_reason`` strings and
let :class:`~repro.errors.CapacityExhaustedError` escape as a traceback in
some configurations.  This module makes end of life a *result*:

* :class:`StopCause` enumerates why a simulation ended; the legacy strings
  (``"dead-fraction"``, ``"capacity-lost"``, ``"max-writes"``,
  ``"exhausted: ..."``) are exactly what :meth:`StopReason.render` emits, so
  existing consumers keep working byte-for-byte;
* :class:`EndOfLifeReport` snapshots the degraded system — remaining
  capacity, the failure-chain census, how often the OS was interrupted —
  as plain JSON-ready data for experiment tables and the chaos campaigns.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Dict, Optional


class StopCause(enum.Enum):
    """Why a simulation engine stopped."""

    #: The configured fraction of device blocks failed.
    DEAD_FRACTION = "dead-fraction"
    #: Software-usable capacity fell below the configured floor.
    CAPACITY_LOST = "capacity-lost"
    #: The configured software-write budget was spent.
    MAX_WRITES = "max-writes"
    #: A finite resource ran out (spares, OS pages); graceful end of life.
    EXHAUSTED = "exhausted"
    #: A shard device of an array died (array-level fail-stop).
    SHARD_FAILED = "shard-failed"


@dataclass(frozen=True)
class StopReason:
    """A structured stop condition, render-compatible with the old strings."""

    cause: StopCause
    #: Human detail, e.g. the exhausted resource ("no usable pages ...").
    detail: str = ""

    def render(self) -> str:
        """The legacy ``stopped_reason`` string for this stop."""
        if self.detail:
            return f"{self.cause.value}: {self.detail}"
        return self.cause.value


@dataclass(frozen=True)
class EndOfLifeReport:
    """Snapshot of a simulated system at the moment it stopped.

    Everything a campaign or experiment table needs to describe *how* the
    chip degraded, without re-deriving it from engine internals.  All
    fields are JSON-serializable via :meth:`as_dict`.
    """

    #: Why the run ended (``None`` only if the engine never ran).
    stop: Optional[StopReason]
    #: Software writes serviced over the whole life.
    total_writes: int
    #: Fraction of device blocks failed at stop time.
    failed_fraction: float
    #: Software-usable fraction of the chip at stop time.
    usable_fraction: float
    #: Times the OS was interrupted by an access-error report.
    os_interruptions: int
    #: Reports that victimized a healthy write (WL-Reviver acquisition).
    victimized_writes: int
    #: Pages acquired by the recovery layer.
    pages_acquired: int
    #: Spare virtual-shadow slots still unlinked.
    spares_available: int
    #: Failure-chain census: linked blocks and how many sit on PA-DA loops.
    linked_blocks: int
    pa_da_loops: int
    #: Controller crashes survived through the recovery path.
    crashes_recovered: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the stop reason is rendered to its string)."""
        data = asdict(self)
        data["stop"] = self.stop.render() if self.stop is not None else None
        return data
