"""Metric collectors shared by both engines.

The paper reports three families of results:

* **lifetime** — software writes sustained until a target fraction of
  blocks has failed (Figure 5 uses 30 %);
* **survival-rate curves** — percentage of blocks still alive versus
  writes (Figure 6), and the usable-space analogues (Figures 7-8);
* **access time** — PCM accesses per software request (Table II).

:class:`LifetimeSeries` samples all of them on a fixed write grid so
different configurations can be compared point-by-point.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SamplePoint:
    """One sample of the chip's state."""

    #: Software writes serviced so far.
    writes: int
    #: Fraction of device blocks still healthy.
    survival: float
    #: Fraction of the chip usable by software (pages still in the pool).
    usable: float
    #: Mean PCM accesses per software request so far (0 if untracked).
    avg_access: float = 0.0


@dataclass
class LifetimeSeries:
    """Append-only series of :class:`SamplePoint`, with query helpers."""

    label: str = ""
    points: List[SamplePoint] = field(default_factory=list)

    def record(self, writes: int, survival: float, usable: float,
               avg_access: float = 0.0) -> None:
        """Append a sample (writes must be non-decreasing)."""
        self.points.append(SamplePoint(writes, survival, usable, avg_access))

    # ----------------------------------------------------------------- query

    @property
    def total_writes(self) -> int:
        """Writes at the last sample."""
        return self.points[-1].writes if self.points else 0

    def writes_to_survival(self, threshold: float) -> Optional[int]:
        """First sampled write count at which survival drops to *threshold*.

        Returns ``None`` if the series never reaches it.  This is the
        paper's lifetime metric with ``threshold = 0.7`` (30 % failed).
        """
        for point in self.points:
            if point.survival <= threshold:
                return point.writes
        return None

    def writes_to_usable(self, threshold: float) -> Optional[int]:
        """First sampled write count at which usable space drops that low."""
        for point in self.points:
            if point.usable <= threshold:
                return point.writes
        return None

    def survival_at(self, writes: int) -> float:
        """Survival at the latest sample not after *writes*."""
        return self._at(writes).survival

    def usable_at(self, writes: int) -> float:
        """Usable fraction at the latest sample not after *writes*."""
        return self._at(writes).usable

    def sample_at(self, writes: int) -> SamplePoint:
        """Latest sample not after *writes* (carry-forward semantics).

        Before the first sample the chip is pristine, so the synthetic
        point ``SamplePoint(0, 1.0, 1.0)`` is returned.
        """
        return self._at(writes)

    def _at(self, writes: int) -> SamplePoint:
        if not self.points:
            return SamplePoint(0, 1.0, 1.0)
        keys = [p.writes for p in self.points]
        index = bisect.bisect_right(keys, writes) - 1
        if index < 0:
            return SamplePoint(0, 1.0, 1.0)
        return self.points[index]

    # ----------------------------------------------------------- combination

    @classmethod
    def merge(cls, series: Sequence["LifetimeSeries"],
              weights: Optional[Sequence[float]] = None,
              grid: Optional[Sequence[int]] = None,
              access_weights: Optional[Sequence[float]] = None,
              label: str = "merged") -> "LifetimeSeries":
        """Point-wise combination of several series onto a shared grid.

        Each input series describes one device (or shard) of a larger
        aggregate.  At every write count on the *grid* (default: the sorted
        union of all sampled write counts), the merged sample is:

        * ``survival`` / ``usable`` — the *weights*-weighted mean of each
          series' carry-forward sample (weights default to equal; use block
          counts when devices differ in capacity);
        * ``avg_access`` — weighted by *access_weights* times the writes each
          series has absorbed so far, so devices that serviced more traffic
          dominate the mean (0 while nothing has been written).

        *access_weights* defaults to *weights*: with equal-capacity shards
        fed proportional traffic that is exactly the write-weighted mean.
        """
        if not series:
            raise ConfigurationError("merge() needs at least one series")
        if weights is None:
            weights = [1.0] * len(series)
        if len(weights) != len(series):
            raise ConfigurationError(
                f"{len(series)} series but {len(weights)} weights")
        if any(w < 0 for w in weights):
            raise ConfigurationError("merge() weights must be non-negative")
        total_weight = float(sum(weights))
        if total_weight <= 0:
            raise ConfigurationError("merge() weights must not all be zero")
        if access_weights is None:
            access_weights = weights
        if len(access_weights) != len(series):
            raise ConfigurationError(
                f"{len(series)} series but {len(access_weights)} access weights")
        if grid is None:
            grid = sorted({p.writes for one in series for p in one.points})
        merged = cls(label=label)
        for writes in grid:
            samples = [one.sample_at(writes) for one in series]
            survival = sum(w * s.survival
                           for w, s in zip(weights, samples)) / total_weight
            usable = sum(w * s.usable
                         for w, s in zip(weights, samples)) / total_weight
            access_mass = sum(a * s.writes
                              for a, s in zip(access_weights, samples))
            if access_mass > 0:
                avg_access = sum(a * s.writes * s.avg_access
                                 for a, s in zip(access_weights, samples)
                                 ) / access_mass
            else:
                avg_access = 0.0
            merged.record(int(writes), survival, usable, avg_access)
        return merged

    # ------------------------------------------------------------- transport

    def to_payload(self) -> dict:
        """Plain-data form (JSON-safe) for cross-process transport."""
        return {"writes": [p.writes for p in self.points],
                "survival": [p.survival for p in self.points],
                "usable": [p.usable for p in self.points],
                "avg_access": [p.avg_access for p in self.points]}

    @classmethod
    def from_payload(cls, payload: dict, label: str = "") -> "LifetimeSeries":
        """Rebuild a series from :meth:`to_payload` output."""
        points = [SamplePoint(int(w), float(s), float(u), float(a))
                  for w, s, u, a in zip(payload["writes"],
                                        payload["survival"],
                                        payload["usable"],
                                        payload["avg_access"])]
        return cls(label=label, points=points)

    def trimmed(self, min_survival: float) -> "LifetimeSeries":
        """Copy containing only samples with survival >= *min_survival*.

        Figure 6 plots survival down to 70 % only ("a more severely faulted
        PCM is less likely to be usable in practice").
        """
        kept = [p for p in self.points if p.survival >= min_survival]
        return LifetimeSeries(label=self.label, points=kept)


@dataclass(frozen=True)
class LifetimeSummary:
    """End-of-run summary used by the experiment tables."""

    label: str
    #: Writes sustained until the dead-fraction stop condition.
    lifetime_writes: int
    #: Survival fraction at the end of the run.
    final_survival: float
    #: Usable-space fraction at the end of the run.
    final_usable: float
    #: Mean PCM accesses per software request over the whole run.
    avg_access: float
    #: Times the OS was interrupted with an access error.
    os_reports: int = 0

    @classmethod
    def from_series(cls, series: LifetimeSeries,
                    os_reports: int = 0) -> "LifetimeSummary":
        """Summarize a finished series."""
        last = series.points[-1] if series.points else SamplePoint(0, 1.0, 1.0)
        return cls(label=series.label, lifetime_writes=last.writes,
                   final_survival=last.survival, final_usable=last.usable,
                   avg_access=last.avg_access, os_reports=os_reports)
