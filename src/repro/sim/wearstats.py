"""Wear-distribution statistics.

Quantifies *how well* a configuration levels, beyond the lifetime numbers:

* the CoV of per-block wear (the paper's own workload metric, applied to
  the outcome instead of the input);
* the Gini coefficient of wear (0 = perfectly even, ->1 = one block takes
  everything);
* normalized endurance utilization — how much of the chip's total write
  budget was actually delivered before death (an ideal leveler reaches the
  endurance-variation-limited bound, a broken one strands most of it);
* wear histograms for reports.

Used by the ablation benchmarks and the ``wear_quality`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..pcm.chip import PCMChip


def wear_cov(wear: np.ndarray) -> float:
    """CoV of a wear vector (0 for perfectly even wear)."""
    wear = np.asarray(wear, dtype=np.float64)
    mean = wear.mean() if wear.size else 0.0
    if mean == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard, mean of all-zero wear is exactly 0.0
        return 0.0
    return float(wear.std() / mean)


def gini(wear: np.ndarray) -> float:
    """Gini coefficient of a non-negative wear vector.

    Computed from the sorted-cumulative (Lorenz) form:
    ``G = (2 * sum(i * w_i) / (n * sum(w))) - (n + 1) / n`` with 1-based
    ranks over ascending values.
    """
    wear = np.sort(np.asarray(wear, dtype=np.float64))
    n = wear.size
    total = wear.sum()
    if n == 0 or total == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard, sum of all-zero wear is exactly 0.0
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (ranks * wear).sum() / (n * total) - (n + 1) / n)


def endurance_utilization(chip: PCMChip) -> float:
    """Fraction of the chip's total correctable write budget consumed.

    The budget of block *b* is its ECC threshold; wear beyond the threshold
    (possible in batched simulation bookkeeping) is clipped.  A perfect
    leveler ends its life near 1.0; a frozen one strands most of the chip.
    """
    thresholds = np.asarray(chip.ecc.thresholds, dtype=np.float64)
    consumed = np.minimum(chip.wear.astype(np.float64), thresholds)
    budget = thresholds.sum()
    if budget == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard against dividing by an empty threshold budget
        return 0.0
    return float(consumed.sum() / budget)


def wear_histogram(wear: np.ndarray, bins: int = 16) -> List[Tuple[float, int]]:
    """``(upper_edge, count)`` pairs of a linear wear histogram."""
    wear = np.asarray(wear, dtype=np.float64)
    if wear.size == 0:
        return []
    counts, edges = np.histogram(wear, bins=bins)
    return [(float(edge), int(count))
            for edge, count in zip(edges[1:], counts)]


@dataclass(frozen=True)
class WearReport:
    """Summary of a chip's wear distribution at one instant."""

    cov: float
    gini: float
    utilization: float
    max_wear: int
    mean_wear: float
    failed_fraction: float

    @classmethod
    def of(cls, chip: PCMChip) -> "WearReport":
        """Snapshot *chip*'s current wear statistics."""
        wear = chip.wear
        return cls(cov=wear_cov(wear),
                   gini=gini(wear),
                   utilization=endurance_utilization(chip),
                   max_wear=int(wear.max()) if wear.size else 0,
                   mean_wear=float(wear.mean()) if wear.size else 0.0,
                   failed_fraction=chip.failed_fraction())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WearReport(cov={self.cov:.3f}, gini={self.gini:.3f}, "
                f"utilization={self.utilization:.1%}, "
                f"failed={self.failed_fraction:.1%})")
