"""The vectorized epoch engine for lifetime-scale simulation.

The paper's figures require simulating the chip to end of life — tens of
millions of writes even at scaled endurance — which a per-write Python loop
cannot sustain.  :class:`FastEngine` preserves the wear *outcome* of the
exact machinery while batching:

* software writes are applied per epoch as a multinomial count vector,
  translated virtual->PA->DA with vectorized maps, and redirected through a
  per-epoch redirect table;
* the wear-leveler's migration schedule advances in bulk
  (:meth:`~repro.wl.base.WearLeveler.bulk_migrations`), adding one write of
  wear per migration to each destination (chains applied);
* failures are resolved at epoch end; the recovery bookkeeping (WL-Reviver
  spare pool and page ledger, FREE-p slots, baseline freezing + page
  retirement) is exact per failure event.

Documented approximations relative to :class:`~repro.sim.engine.ExactEngine`
(an agreement test bounds them on small configs):

* a block failing mid-epoch absorbs the rest of its epoch traffic before
  redirection kicks in;
* WL-Reviver chain *structure* is not maintained — the redirect table
  follows link chains functionally, which yields the same final wear
  destination as the paper's one-step switching;
* inverse-pointer metadata wear is ignored (a handful of writes per page
  acquisition versus millions of data writes);
* the victim page for a delayed acquisition is sampled from the epoch's
  write distribution instead of being literally the next write;
* when several software streams share one final block (a healthy block
  that is simultaneously an identity target and a redirect target) and
  that block dies mid-epoch, the clawed-back overshoot is re-issued to
  *every* contributing stream in proportion to its round traffic rather
  than serialized write-by-write.

The failure hot path (overshoot clawback, redirect-table rebuild, baseline
page retirement) is vectorized with numpy; the redirect rebuild follows
link chains by iterative pointer-jumping instead of per-key dict walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from ..config import ReviverConfig
from ..errors import CapacityExhaustedError, ProtocolError
from ..ecc.freep import FreePRegion
from ..osmodel.allocator import PagePool
from ..osmodel.faults import FaultReporter
from ..pcm.chip import PCMChip
from ..reviver.invariants import InvariantChecker
from ..reviver.pages import PageLedger
from ..reviver.registers import SparePool
from ..rng import SeedLike, derive_rng
from ..traces.base import WriteTrace
from ..wl.base import WearLeveler
from .metrics import LifetimeSeries, LifetimeSummary
from .stop import EndOfLifeReport, StopCause, StopReason

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..faultinject.hooks import ScheduleDriver
    from ..telemetry.session import TelemetrySession

#: Recovery modes the engine understands.
RECOVERY_MODES = ("reviver", "none", "freep")


@dataclass
class FastConfig:
    """Engine parameters."""

    recovery: str = "reviver"
    #: FREE-p pre-reserve as a fraction of the chip (recovery == "freep").
    freep_reserve: float = 0.05
    #: Stop when this fraction of device blocks has failed.
    dead_fraction: float = 0.3
    #: Software writes per epoch.
    batch_writes: int = 20_000
    #: Hard cap on software writes (None = until death).
    max_writes: Optional[int] = None
    #: Also stop once usable capacity falls to ``1 - dead_fraction``.
    #: Table II disables this to reach exact failed-block ratios.
    stop_on_capacity: bool = True
    #: OS page size in blocks.
    blocks_per_page: int = 64
    reviver: ReviverConfig = field(default_factory=ReviverConfig)
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.recovery not in RECOVERY_MODES:
            raise ProtocolError(f"unknown recovery mode {self.recovery!r}")
        if self.batch_writes <= 0:
            raise ProtocolError("batch_writes must be positive")


class _FunctionalLinkView:
    """Read adapter giving the engine's plain link dict the LinkTable API.

    The fast engine stores links functionally (failed DA -> VPA, no
    switching); this view exposes the read interface the
    :class:`~repro.reviver.invariants.InvariantChecker` needs, with the
    inverse direction derived on construction.
    """

    def __init__(self, links: Dict[int, int]) -> None:
        self._links = links
        self._rev = {vpa: da for da, vpa in links.items()}

    def vpa_of(self, da: int) -> Optional[int]:
        return self._links.get(da)

    def failed_of(self, vpa: int) -> Optional[int]:
        return self._rev.get(vpa)

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        das = np.fromiter(self._links.keys(), dtype=np.int64,
                          count=len(self._links))
        vpas = np.fromiter(self._links.values(), dtype=np.int64,
                           count=len(self._links))
        return das, vpas

    def inverse_as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        vpas = np.fromiter(self._rev.keys(), dtype=np.int64,
                           count=len(self._rev))
        das = np.fromiter(self._rev.values(), dtype=np.int64,
                          count=len(self._rev))
        return vpas, das


class FastEngine:
    """Vectorized lifetime simulator over chip + wear-leveler + recovery."""

    def __init__(self, chip: PCMChip, wl: WearLeveler, trace: WriteTrace,
                 config: Optional[FastConfig] = None, label: str = "",
                 region: Optional[FreePRegion] = None) -> None:
        self.chip = chip
        self.wl = wl
        self.config = config or FastConfig()
        self.ospool = PagePool(wl.logical_blocks,
                               blocks_per_page=self.config.blocks_per_page,
                               seed=self.config.seed)
        self.reporter = FaultReporter(self.ospool)
        self.trace = (trace if trace.virtual_blocks == self.ospool.virtual_blocks
                      else trace.restricted_to(self.ospool.virtual_blocks))
        self.series = LifetimeSeries(label=label or f"{wl.name}-{self.config.recovery}")
        self._rng = derive_rng(self.config.seed, "fast-engine")
        self.total_writes = 0
        #: Structured reason the run ended (None while running).
        self.stop: Optional[StopReason] = None
        #: Fault-injection driver polled once per epoch; ``None`` (the
        #: default) disables injection.  Only :mod:`repro.faultinject`
        #: may set this.
        self.inject: Optional["ScheduleDriver"] = None
        #: Telemetry hook; ``None`` (the default) keeps the epoch hot path
        #: untouched.  Only :mod:`repro.telemetry` may attach a session.
        self.telem: Optional["TelemetrySession"] = None
        # --- recovery state -------------------------------------------------
        self.region = region
        if self.config.recovery == "freep":
            if region is None:
                self.region = FreePRegion(chip.num_blocks,
                                          self.config.freep_reserve)
            if wl.device_blocks != self.region.working_blocks:
                raise ProtocolError(
                    "freep mode: wear-leveler must cover the working space")
        elif wl.device_blocks > chip.num_blocks:
            raise ProtocolError("wear-leveler space exceeds the chip")
        #: WL-Reviver fast bookkeeping.
        self.spares = SparePool()
        self.ledger = PageLedger(self.config.reviver,
                                 self.config.blocks_per_page,
                                 chip.geometry.block_bytes)
        #: failed DA -> virtual shadow PA (functional chains; no switching).
        self.links: Dict[int, int] = {}
        self.hidden_failures = 0
        #: Per-epoch redirect table (identity + chain targets).
        self._redirect = np.arange(chip.num_blocks, dtype=np.int64)
        #: Traffic counts of the current epoch (victim-page sampling).
        self._epoch_counts: Optional[np.ndarray] = None
        #: Redirected (extra-access) traffic accumulator for avg access time.
        self._redirected_traffic = 0
        #: Failures visible to software (baseline always; FREE-p after its
        #: region is exhausted).  Drives the block-granular usable metric.
        self.exposed_failures = 0
        #: Traffic the OS gave up on after repeated relocation churn.
        self.dropped_writes = 0

    @property
    def stopped_reason(self) -> Optional[str]:
        """Legacy string form of :attr:`stop` (None while running)."""
        return self.stop.render() if self.stop is not None else None

    # ------------------------------------------------------------------- run

    def run(self) -> LifetimeSummary:
        """Simulate epochs until a stop condition; return the summary."""
        self._begin_run()
        while True:
            stop = self._next_stop()
            if stop is not None:
                self.stop = stop
                break
            try:
                self._epoch(self._epoch_batch())
            except CapacityExhaustedError as exc:
                self.stop = StopReason(StopCause.EXHAUSTED, str(exc))
                # The partial epoch changed state since the last sample.
                self._sample()
                break
            self._sample()
        return self._finish_summary()

    def _begin_run(self) -> None:
        """Record the zero-write sample that anchors the series."""
        self._sample()

    def _budget(self) -> float:
        """Software-write budget (``inf`` when no cap is configured)."""
        cfg = self.config
        return (float(cfg.max_writes) if cfg.max_writes is not None
                else float("inf"))

    def _next_stop(self) -> Optional[StopReason]:
        """One run-loop tick: poll injection, evaluate stop conditions.

        Shared verbatim with the batched lockstep kernel
        (:mod:`repro.sim.batched`) so both paths stop at exactly the same
        write counts, in the same check order.
        """
        cfg = self.config
        if self.inject is not None:
            self.inject.poll(self.total_writes)
        if self.chip.failed_fraction() >= cfg.dead_fraction:
            return StopReason(StopCause.DEAD_FRACTION)
        if (cfg.stop_on_capacity
                and self._usable_fraction() <= 1.0 - cfg.dead_fraction):
            # The chip is just as unavailable when the lost capacity
            # comes from retired pages as from dead blocks.
            return StopReason(StopCause.CAPACITY_LOST)
        if self.total_writes >= self._budget():
            return StopReason(StopCause.MAX_WRITES)
        return None

    def _epoch_batch(self) -> int:
        """Software writes the next epoch should carry (budget-clipped)."""
        return int(min(self.config.batch_writes,
                       self._budget() - self.total_writes))

    def _finish_summary(self) -> LifetimeSummary:
        """The run's summary (valid once a stop reason is recorded)."""
        return LifetimeSummary.from_series(
            self.series, os_reports=self.reporter.report_count)

    # ----------------------------------------------------------------- epoch

    def _epoch(self, batch: int) -> None:
        if self.telem is None:
            # The disabled-telemetry hot path: identical to the historical
            # epoch loop, zero per-epoch overhead beyond this one test.
            counts = self.trace.batch_counts(batch)
            self._epoch_counts = counts
            self._rebuild_redirect()
            self._apply_software(counts)
            self.total_writes += batch
            self._rebuild_redirect()
            self._advance_wear_leveling()
            return
        telem = self.telem
        counts = self.trace.batch_counts(batch)
        self._epoch_counts = counts
        with telem.phase("redirect-rebuild"):
            self._rebuild_redirect()
        with telem.phase("software-apply"):
            self._apply_software(counts)
        self.total_writes += batch
        with telem.phase("redirect-rebuild"):
            self._rebuild_redirect()
        with telem.phase("wear-leveling"):
            self._advance_wear_leveling()
        telem.count("fast.epochs")
        telem.count("fast.writes", batch)

    def _note_phase(self, name: str, seconds: float) -> None:
        """Credit a phase duration to telemetry when a session is attached.

        The batched kernel runs this engine's phases outside the
        per-engine :meth:`_epoch` context managers, so it mirrors the same
        counters through this hook (phase seconds + call count).
        """
        if self.telem is not None:
            self.telem.add_phase_seconds(name, seconds)

    def _note_epoch(self, batch: int) -> None:
        """Credit one completed epoch's counters to telemetry."""
        if self.telem is not None:
            self.telem.count("fast.epochs")
            self.telem.count("fast.writes", batch)

    def _apply_software(self, counts: np.ndarray) -> None:
        """Apply the epoch's software writes with overshoot re-issue.

        A block that dies mid-epoch must not silently absorb the rest of
        its epoch traffic — that would let one shadow block soak up writes
        that in reality would have killed a chain of successors (the
        serial-killing dynamics of hot blocks after wear leveling stops).
        Traffic beyond a dying block's threshold is therefore *re-issued*
        through the updated redirect/translation in further rounds of the
        same epoch until it all lands on live blocks.
        """
        virtual = np.nonzero(counts)[0]
        remaining = counts[virtual].astype(np.int64)
        limit = self.chip.num_blocks + self.ospool.num_pages + 4
        self._software_rounds(virtual, remaining, first_round=True,
                              rounds=limit)

    def _software_rounds(self, virtual: np.ndarray, remaining: np.ndarray,
                         first_round: bool, rounds: int,
                         prepared: Optional[tuple] = None) -> None:
        """Run up to ``rounds`` re-issue rounds of the software phase.

        ``prepared`` lets a caller hand in an already-translated first
        round (the batched kernel prepares the round before deciding which
        path handles it) without repeating the translation's side effects.
        """
        for _ in range(rounds):
            if virtual.size == 0:
                return
            if prepared is None:
                prepared = self._prepare_round(virtual, remaining,
                                               first_round)
                if prepared is None:
                    return
            virtual, remaining, pas, das, finals = prepared
            prepared = None
            first_round = False
            exposed = self.chip.failed[finals]
            live_idx = ~exposed
            newly = self.chip.write_many(finals[live_idx],
                                         remaining[live_idx])
            self._redirected_traffic += int(remaining[live_idx][
                finals[live_idx] != das[live_idx]].sum())
            virtual, remaining = self._settle_round(
                virtual, remaining, pas, das, finals, exposed, newly)
            if virtual.size == 0:
                return
            self._rebuild_redirect()
        # Leftover traffic has nowhere live to go (late-life thrashing);
        # account it rather than looping forever.
        self.dropped_writes += int(remaining.sum())

    def _prepare_round(self, virtual: np.ndarray, remaining: np.ndarray,
                       first_round: bool) -> Optional[tuple]:
        """Translate one round's surviving traffic through OS + WL maps.

        Returns ``(virtual, remaining, pas, das, finals)`` for the round,
        or ``None`` when every stream folded out of the software space.
        Charges per-region schedules on the epoch's first round.
        """
        # The software pool can shrink mid-epoch (LLS chunk reservation);
        # traffic to folded-away virtual blocks is lost in the
        # reorganization.
        in_range = virtual < self.ospool.virtual_blocks
        if not in_range.all():
            self.dropped_writes += int(remaining[~in_range].sum())
            virtual = virtual[in_range]
            remaining = remaining[in_range]
            if virtual.size == 0:
                return None
        pas = self.ospool.translate_many(virtual)
        if first_round:
            charge = getattr(self.wl, "charge_writes", None)
            if charge is not None:
                # Per-region schedules (RegionedStartGap) are charged
                # from the epoch's first-round traffic histogram.
                charge(pas, remaining)
        das = self.wl.map_many(pas)
        finals = self._redirect[das]
        return virtual, remaining, pas, das, finals

    def _settle_round(self, virtual: np.ndarray, remaining: np.ndarray,
                      pas: np.ndarray, das: np.ndarray, finals: np.ndarray,
                      exposed: np.ndarray, newly: np.ndarray) -> tuple:
        """Process one round's failures; return the retry streams.

        Traffic past a dying block's threshold re-routes next round.
        Returns the filtered ``(virtual, remaining)`` pair (both empty when
        nothing needs re-issue).
        """
        over_blocks, over_counts = self._collect_overshoot(newly)
        self._process_failures(newly)
        retry = np.zeros(len(virtual), dtype=bool)
        for block, over in zip(over_blocks.tolist(),
                               over_counts.tolist()):
            # A healthy block can be several streams' final target at
            # once (its own identity plus redirect chains ending on
            # it); every such stream contributed wear, so the clawed-
            # back overshoot is split among them in proportion to what
            # each sent this round.
            idxs = np.nonzero(finals == block)[0]
            sent = remaining[idxs]
            total = int(sent.sum())
            share = sent * over // total
            deficit = over - int(share.sum())
            if deficit:
                order = np.argsort(-sent, kind="stable")
                share[order[:deficit]] += 1
            remaining[idxs] = share
            retry[idxs] = share > 0
        if exposed.any():
            if self.config.recovery == "reviver":
                # Theorem 1: software traffic never reaches a dead
                # block under WL-Reviver.
                raise ProtocolError(
                    f"software traffic reached dead blocks "
                    f"{finals[exposed][:5].tolist()} under the reviver")
            # Known-dead blocks with no redirection (baseline or
            # exhausted FREE-p): the OS retires those pages; the
            # affected virtual pages retry at their new frames.  Dead
            # blocks behind non-retirable PAs (the partial tail page)
            # just eat the writes.
            for i in np.nonzero(exposed)[0]:
                pa = int(pas[i])
                if not self.ospool.pa_in_software_space(pa):
                    continue
                if self.ospool.is_usable(self.ospool.page_of_pa(pa)):
                    self.reporter.report(pa, self.total_writes)
                retry[i] = True
        return virtual[retry], remaining[retry]

    def _collect_overshoot(self, newly: np.ndarray) -> tuple:
        """Wear past the threshold of each newly dead block, clawed back.

        Returns ``(blocks, overshoots)`` int64 arrays and resets each dead
        block's counter to its threshold so the excess is not
        double-counted.  Fully vectorized (clip + subtract over the
        ``newly`` array) — this runs once per re-issue round in the
        late-life regime where most blocks are dying.
        """
        if newly.size == 0:
            return newly, newly
        thresholds = self.chip.ecc.thresholds[newly]
        over = self.chip.wear[newly] - thresholds
        hot = over > 0
        blocks = newly[hot]
        self.chip.wear[blocks] = thresholds[hot]
        return blocks, over[hot]

    def _advance_wear_leveling(self) -> None:
        if self.wl.frozen:
            return
        due = self.wl.schedule_due(self.total_writes)
        if due <= 0:
            return
        rows = self.wl.bulk_migrations(due)
        if rows.size == 0:
            return
        dsts = self._redirect[rows[:, 1]]
        live = ~self.chip.failed[dsts]
        newly = self.chip.write_many(dsts[live],
                                     np.ones(int(live.sum()), dtype=np.int64))
        self._process_failures(newly, migration=True)

    # -------------------------------------------------------------- failures

    def _process_failures(self, newly: np.ndarray,
                          migration: bool = False) -> None:
        if newly.size == 0:
            return
        mode = self.config.recovery
        if mode == "reviver":
            # Each failure may acquire a page or consume a spare, and the
            # choice depends on the bookkeeping left by the previous one:
            # inherently sequential.
            for da in newly.tolist():
                self._reviver_failure(int(da))
        elif mode == "freep":
            for da in newly.tolist():
                self._freep_failure(int(da))
        else:
            self._baseline_failures(newly)

    def _baseline_failures(self, newly: np.ndarray) -> None:
        """Batched no-recovery failure handling, grouped per OS page.

        All failures of the batch freeze the scheme once and are counted
        at once; page retirement is issued once per distinct affected page
        (retiring a page already covers every failure inside it).
        """
        if not self.wl.frozen:
            self.wl.freeze()
        self.exposed_failures += int(newly.size)
        retired_pages = set()
        for da in newly.tolist():
            pa = self.wl.inverse(int(da))
            if pa is None or not self.ospool.pa_in_software_space(pa):
                continue  # unmapped (gap line) or tail slack
            page = self.ospool.page_of_pa(pa)
            if page in retired_pages:
                continue
            if self.ospool.is_usable(page):
                retired_pages.add(page)
                self.reporter.report(pa, self.total_writes)

    def _baseline_failure(self, da: int) -> None:
        """No recovery: the scheme freezes and the OS loses a page.

        The failing access surfaces to the OS, which retires the whole
        page containing the accessed PA (the OS-page-granularity premise
        of Section III-A) and rehomes the application's virtual page — so
        the hot data keeps killing blocks wherever it lands (the paper's
        post-freeze serial-killing dynamics) while each exposed failure
        costs a full page of capacity, the 64x amplification behind the
        precipitous usable-space collapse of Figures 7 and 8.
        """
        if not self.wl.frozen:
            self.wl.freeze()
        self.exposed_failures += 1
        pa = self.wl.inverse(da)
        if pa is None or not self.ospool.pa_in_software_space(pa):
            return  # unmapped (gap line) or tail slack: nothing to retire
        page = self.ospool.page_of_pa(pa)
        if self.ospool.is_usable(page):
            self.reporter.report(pa, self.total_writes)

    def _freep_failure(self, da: int) -> None:
        if self.region is not None and not self.region.exhausted:
            self.region.link(da)
            return
        self._baseline_failure(da)

    def _reserved_fraction(self) -> float:
        """Chip fraction pre-reserved or claimed by the recovery layer."""
        if self.config.recovery == "freep" and self.region is not None:
            return self.region.reserved_blocks / self.chip.num_blocks
        if self.config.recovery == "reviver":
            return self.ledger.blocks_claimed / self.chip.num_blocks
        return 0.0

    def _reviver_failure(self, da: int) -> None:
        if self.spares.available == 0:
            self._acquire_page(da)
        else:
            self.hidden_failures += 1
        mapped_by = self.wl.inverse(da)
        if mapped_by is not None and mapped_by in self.spares:
            # The PA owning the block's data is an unlinked spare: retire
            # the pair as a PA-DA loop without consuming a healthy shadow.
            vpa = self.spares.take_specific(mapped_by)
        else:
            vpa = self.spares.take()
        self.links[da] = vpa
        if self.telem is not None:
            self.telem.emit("link-install", da=da, vpa=vpa)

    def _acquire_page(self, failed_da: int) -> None:
        """Retire a page and claim its PAs as reviver property."""
        victim_pa = self._victim_pa(failed_da)
        pas = self.reporter.report(victim_pa, self.total_writes)
        event = self.reporter.last_event()
        assert event is not None
        page = self.ledger.claim(event.page_id, pas)
        self.spares.add(page.shadow_pas)

    def _victim_pa(self, failed_da: int) -> int:
        """Pick the PA whose page the OS retires for this acquisition.

        Software-exposed failures retire the page of the PA that maps to the
        failed block; otherwise (migration-detected, or that PA already
        reserved) the next software write is victimized — approximated by a
        traffic-weighted sample from the current epoch.
        """
        mapped_by = self.wl.inverse(failed_da)
        if mapped_by is not None and self.ospool.pa_in_software_space(mapped_by):
            if self.ospool.is_usable(self.ospool.page_of_pa(mapped_by)):
                return mapped_by
        counts = self._epoch_counts
        if counts is not None and counts.sum() > 0:
            probabilities = counts / counts.sum()
            vblock = int(self._rng.choice(len(counts), p=probabilities))
        else:
            vblock = int(self._rng.integers(0, self.ospool.virtual_blocks))
        return self.ospool.translate(vblock)

    # -------------------------------------------------------------- redirect

    def _rebuild_redirect(self) -> None:
        """Recompute the failed-block redirect table for the current maps.

        Chains are followed by iterative numpy pointer-jumping over the
        link arrays: all cursors advance in lockstep until each rests on a
        non-link block, or has walked ``len(links)`` hops — long enough to
        prove it is trapped in a loop.
        """
        num_blocks = self.chip.num_blocks
        self._redirect = np.arange(num_blocks, dtype=np.int64)
        mode = self.config.recovery
        if mode == "freep" and self.region is not None:
            links = self.region.links
            if links:
                origins = np.fromiter(links.keys(), dtype=np.int64,
                                      count=len(links))
                slots = np.fromiter(links.values(), dtype=np.int64,
                                    count=len(links))
                self._redirect[origins] = slots
            return
        if mode != "reviver" or not self.links:
            return
        failed_das = np.fromiter(self.links.keys(), dtype=np.int64,
                                 count=len(self.links))
        vpas = np.fromiter(self.links.values(), dtype=np.int64,
                           count=len(self.links))
        shadows = self.wl.map_many(vpas)
        next_da = np.arange(num_blocks, dtype=np.int64)
        next_da[failed_das] = shadows
        is_link = np.zeros(num_blocks, dtype=bool)
        is_link[failed_das] = True
        cursor = shadows.copy()
        active = np.nonzero(is_link[cursor])[0]
        for _ in range(len(failed_das)):
            if active.size == 0:
                break
            cursor[active] = next_da[cursor[active]]
            active = active[is_link[cursor[active]]]
        # A cursor resting on a failed block walked a chain that closed a
        # loop or dead-ends on an unrecovered shadow: garbage data, no
        # redirection.  Everything else found its healthy final block.
        final = np.where(self.chip.failed[cursor], failed_das, cursor)
        self._redirect[failed_das] = final

    # ------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """Vectorized subset of Theorems 1-3 that this engine maintains.

        The fast engine keeps links *functionally* (the redirect table
        follows chains to their final healthy block) rather than flattening
        them to one step, so the one-step-chain property and the immediate-
        shadow forms of Theorems 1-2 do not apply here.  What must always
        hold — and is checked — is that every chip-failed block is linked
        with both directions in agreement, and that no PA-DA loop block is
        reachable through an allocatable spare (Theorem 3).  Software
        traffic reaching a dead block is independently enforced per epoch
        in :meth:`_apply_software`.
        """
        view = _FunctionalLinkView(self.links)
        checker = InvariantChecker(
            view, self.spares,
            map_fn=self.wl.map,
            is_failed=self.chip.is_failed,
            software_pas=lambda: [],
            failed_blocks=lambda: self.chip.failed.nonzero()[0].tolist(),
            map_many_fn=self.wl.map_many,
            failed_mask_fn=lambda: self.chip.failed)
        checker.check_link_consistency()
        checker.check_theorem3()

    # --------------------------------------------------------------- metrics

    def _sample(self) -> None:
        if (self.config.reviver.check_invariants
                and self.config.recovery == "reviver"
                and self.stopped_reason is None):
            self.check_invariants()
        avg = 1.0
        if self.total_writes:
            avg = 1.0 + self._redirected_traffic / self.total_writes
        self.series.record(
            writes=self.total_writes,
            survival=1.0 - self.chip.failed_fraction(),
            usable=self._usable_fraction(),
            avg_access=avg)

    def _usable_fraction(self) -> float:
        """Software-usable chip fraction, per Figure 7's definition.

        Pre-reserved space (FREE-p's region, WL-Reviver's acquired pages)
        and pages retired after exposed failures are excluded; failures
        *hidden* by a recovery layer cost nothing beyond the reservation
        that hides them.  Accounting is page-granular, per the OS premise
        of Section III-A: a page with a reported error is never used again.
        """
        reserved = self._reserved_fraction()
        if self.config.recovery == "reviver":
            # Acquired pages are already excluded from the pool; nothing
            # else is lost (every failure hides behind them).
            return max(0.0, 1.0 - reserved)
        retired = self.ospool.retired_blocks / self.chip.num_blocks
        return max(0.0, 1.0 - reserved - retired)

    def end_of_life_report(self) -> EndOfLifeReport:
        """Structured census of how (and how gracefully) the run ended."""
        stop = self.stop if self.stop is not None else StopReason(
            StopCause.MAX_WRITES, "still running")
        loops = 0
        if self.config.recovery == "reviver" and self.links:
            self._rebuild_redirect()
            for da in self.links:
                if self._redirect[da] == da:
                    loops += 1
        return EndOfLifeReport(
            stop=stop,
            total_writes=self.total_writes,
            failed_fraction=self.chip.failed_fraction(),
            usable_fraction=self._usable_fraction(),
            os_interruptions=self.reporter.report_count,
            victimized_writes=self.reporter.victimized_count,
            pages_acquired=self.ledger.pages_acquired,
            spares_available=self.spares.available,
            linked_blocks=len(self.links),
            pa_da_loops=loops,
            crashes_recovered=0)

    def stats(self) -> dict:
        """Counters for experiment reports."""
        return {
            "total_writes": self.total_writes,
            "failed_fraction": self.chip.failed_fraction(),
            "usable_fraction": self._usable_fraction(),
            "pages_acquired": self.ledger.pages_acquired,
            "spares_available": self.spares.available,
            "linked_blocks": len(self.links),
            "hidden_failures": self.hidden_failures,
            "os_reports": self.reporter.report_count,
            "wl_frozen": self.wl.frozen,
            "stopped": self.stopped_reason,
        }
