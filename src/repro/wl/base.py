"""Wear-leveler interface and the migration port.

The paper's framework contract (Section III): *"WL-Reviver assumes only one
fundamental operation common to any of such schemes, which is to migrate
data into a memory block."*  That operation is expressed here as the
:class:`MigrationPort` protocol; schemes perform all data movement through a
port and never touch the chip directly.  Whoever implements the port (a bare
controller, WL-Reviver, FREE-p, LLS) is free to redirect accesses, absorb
faults, or *suspend* a migration when it cannot complete safely.

Migration protocol (commit-first): a scheme performs a migration by

1. asking ``can_start_migration()`` — ``False`` means the port is waiting
   for spare space (WL-Reviver's suspended state) and the scheme must defer
   the whole operation to a later tick, keeping its schedule debt;
2. reading the source block(s) with ``read_migration`` (reads never fail);
3. committing its mapping update (registers/keys/pointer);
4. writing each datum to its *post-commit owner PA* with
   ``write_migration_pa``.

The write-by-PA form lets the port resolve the destination through the
*new* mapping and any failure chains.  ``write_migration_pa`` always
succeeds logically: when the destination block faults and no spare space is
left, the port parks the write in a store buffer and victimizes the next
software write to acquire space (Section III-A's delayed acquisition); the
buffered data remains readable through the port in the meantime, so no data
is ever lost.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class MigrationPort(Protocol):
    """Data-movement interface handed to wear-leveling schemes."""

    def can_start_migration(self) -> bool:
        """Whether a new migration may begin now.

        ``False`` while the port waits for spare space (parked writes are
        outstanding); the scheme defers and retries on a later tick.
        """

    def read_migration(self, da: int) -> int:
        """Read the content tag currently stored for device block *da*.

        The port follows failure redirections and its own store buffer
        transparently; reads never fail (the paper's model: wear-out is
        detected on writes).
        """

    def write_migration_pa(self, pa: int, tag: int) -> None:
        """Store *tag* as the data of *pa* under the post-commit mapping.

        The port resolves *pa* through the current mapping and failure
        chains; on an unrecoverable-for-now fault it parks the write until
        space is acquired.  Logically the write always succeeds.
        """


class NullPort:
    """A minimal in-memory port for driving schemes in unit tests."""

    def __init__(self) -> None:
        self.reads: List[int] = []
        self.writes: List[tuple] = []
        self.store: Dict[int, int] = {}

    def can_start_migration(self) -> bool:
        return True

    def read_migration(self, da: int) -> int:
        self.reads.append(da)
        return self.store.get(da, 0)

    def write_migration_pa(self, pa: int, tag: int) -> None:
        self.writes.append((pa, tag))


class WearLeveler(abc.ABC):
    """Invertible PA-to-DA mapping plus a write-driven migration schedule."""

    def __init__(self, device_blocks: int) -> None:
        self.device_blocks = device_blocks
        #: Set when the scheme has ceased to function (no-reviver configs
        #: freeze the scheme at the first block failure, per Section I-B).
        self.frozen = False
        #: Software writes observed (drives the migration schedule).
        self.write_count = 0

    # ------------------------------------------------------------ capacities

    @property
    @abc.abstractmethod
    def logical_blocks(self) -> int:
        """Number of PAs the scheme exposes (<= device_blocks)."""

    # --------------------------------------------------------------- mapping

    @abc.abstractmethod
    def map(self, pa: int) -> int:
        """Translate physical address *pa* to its current device address."""

    @abc.abstractmethod
    def inverse(self, da: int) -> Optional[int]:
        """Translate device address *da* back to the PA mapped onto it.

        Returns ``None`` for device blocks not currently mapped by any PA
        (e.g. Start-Gap's gap line).
        """

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`map`; subclasses override with array math."""
        return np.fromiter((self.map(int(pa)) for pa in pas),
                           dtype=np.int64, count=len(pas))

    # ------------------------------------------------------------- migration

    @abc.abstractmethod
    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        """Account one software write; run any due migration through *port*.

        ``pa`` is the physical address the write targeted; schemes with
        per-region schedules (RegionedStartGap) use it to charge the right
        region, global schemes ignore it.  Returns the list of PAs whose
        PA-to-DA mapping changed during this tick (empty when no migration
        completed).  The caller (controller) uses the list to re-validate
        WL-Reviver chains.
        """

    @abc.abstractmethod
    def schedule_due(self, total_software_writes: int) -> int:
        """Migration operations owed after *total_software_writes* writes.

        Fast-engine entry point: compares the scheme's schedule against the
        migrations already performed (via :meth:`bulk_migrations`) and
        returns how many more are due now.
        """

    @abc.abstractmethod
    def bulk_migrations(self, moves: int) -> np.ndarray:
        """Advance the schedule by *moves* migrations without moving data.

        Fast-engine entry point: returns an ``(k, 2)`` int64 array of
        ``(src_da, dst_da)`` rows, one per physical migration *write* the
        moves would perform (a Start-Gap move is one row; a Security Refresh
        swap is two).  The engine applies wear and redirections itself.
        Must not be mixed with :meth:`tick` in the same run.
        """

    # -------------------------------------------------------------- lifecycle

    def freeze(self) -> None:
        """Stop all future migrations; the current mapping becomes static."""
        self.frozen = True

    @property
    def name(self) -> str:
        """Short display name used in experiment tables."""
        return type(self).__name__

    # ------------------------------------------------------------ validation

    def check_bijection(self) -> None:
        """Exhaustively verify map/inverse consistency (tests only)."""
        seen = set()
        for pa in range(self.logical_blocks):
            da = self.map(pa)
            if not 0 <= da < self.device_blocks:
                raise AssertionError(f"map({pa}) = {da} out of device range")
            if da in seen:
                raise AssertionError(f"duplicate mapping onto DA {da}")
            seen.add(da)
            back = self.inverse(da)
            if back != pa:
                raise AssertionError(f"inverse(map({pa})) = {back}")
