"""Traditional table-based wear leveling.

The paper's introduction describes the approach state-of-the-art schemes
replaced: track every block's write count, keep a full indirection table,
and periodically swap the hottest block's data with the coldest block's.
It levels well but costs a table lookup per access and counter storage —
exactly the overhead Start-Gap and Security Refresh avoid.  It is included
as a reference scheme to demonstrate the framework's scheme-independence
(WL-Reviver only needs the migrate operation) and for ablation experiments.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from .base import MigrationPort, WearLeveler


class TableWL(WearLeveler):
    """Hot/cold swapping over an explicit indirection table."""

    def __init__(self, device_blocks: int, swap_interval: int = 100) -> None:
        super().__init__(device_blocks)
        if swap_interval <= 0:
            raise ConfigurationError("swap_interval must be positive")
        self.swap_interval = swap_interval
        self._table = np.arange(device_blocks, dtype=np.int64)
        self._inverse = np.arange(device_blocks, dtype=np.int64)
        #: Cumulative writes absorbed per device block (wear; stays with
        #: the block through swaps — the cold-pick criterion).
        self.block_writes = np.zeros(device_blocks, dtype=np.int64)
        #: Recent writes per PA (heat; follows the data — the hot-pick
        #: criterion).  Halved at each swap to favor recency.
        self.pa_writes = np.zeros(device_blocks, dtype=np.int64)
        self.swaps = 0

    # ------------------------------------------------------------ capacities

    @property
    def logical_blocks(self) -> int:
        return self.device_blocks

    # --------------------------------------------------------------- mapping

    def map(self, pa: int) -> int:
        return int(self._table[pa])

    def inverse(self, da: int) -> Optional[int]:
        return int(self._inverse[da])

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        return self._table[np.asarray(pas, dtype=np.int64)]

    # ----------------------------------------------------------- bookkeeping

    def record_write(self, da: int) -> None:
        """Account one software write landing on *da* (controller hook)."""
        self.block_writes[da] += 1
        self.pa_writes[self._inverse[da]] += 1

    def _pick_swap(self) -> Optional[tuple]:
        hot_pa = int(self.pa_writes.argmax())
        if self.pa_writes[hot_pa] == 0:
            return None
        hot_da = int(self._table[hot_pa])
        # Coldest block by cumulative wear, excluding the hot block itself.
        order = np.argsort(self.block_writes, kind="stable")
        cold_da = int(order[0]) if order[0] != hot_da else int(order[1])
        if self.block_writes[cold_da] >= self.block_writes[hot_da]:
            return None  # the hot data already sits on a cold block
        return hot_da, cold_da

    def _commit_swap(self, da_a: int, da_b: int) -> List[int]:
        pa_a = int(self._inverse[da_a])
        pa_b = int(self._inverse[da_b])
        self._table[pa_a], self._table[pa_b] = da_b, da_a
        self._inverse[da_a], self._inverse[da_b] = pa_b, pa_a
        # Decay the heat so stale history does not pin the pick forever.
        self.pa_writes[pa_a] //= 2
        self.pa_writes[pa_b] //= 2
        self.swaps += 1
        return [pa_a, pa_b]

    # ------------------------------------------------------------- migration

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        if self.frozen:
            return []
        self.write_count += 1
        if self.write_count % self.swap_interval or not port.can_start_migration():
            return []
        pick = self._pick_swap()
        if pick is None:
            return []
        da_a, da_b = pick
        tag_a = port.read_migration(da_a)
        tag_b = port.read_migration(da_b)
        changed = self._commit_swap(da_a, da_b)
        pa_a, pa_b = changed
        # pa_a owned da_a's data and now maps to da_b, and vice versa.
        port.write_migration_pa(pa_a, tag_a)
        port.write_migration_pa(pa_b, tag_b)
        return changed

    def schedule_due(self, total_software_writes: int) -> int:
        return max(0, total_software_writes // self.swap_interval - self.swaps)

    def bulk_migrations(self, moves: int) -> np.ndarray:
        if self.frozen or moves <= 0:
            return np.empty((0, 2), dtype=np.int64)
        rows: List[tuple] = []
        for _ in range(moves):
            pick = self._pick_swap()
            if pick is None:
                continue
            da_a, da_b = pick
            rows.append((da_a, da_b))
            rows.append((da_b, da_a))
            self._commit_swap(da_a, da_b)
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)
