"""No wear leveling: the identity mapping, no migrations.

The "ECP6" / "PAYG" curves of Figure 6 (no -SG suffix) run this scheme —
writes land where the software puts them and hot blocks die first.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import MigrationPort, WearLeveler


class NoWL(WearLeveler):
    """Identity PA-to-DA mapping with an empty migration schedule."""

    @property
    def logical_blocks(self) -> int:
        return self.device_blocks

    def map(self, pa: int) -> int:
        return pa

    def inverse(self, da: int) -> Optional[int]:
        return da

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        return np.asarray(pas, dtype=np.int64)

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        self.write_count += 1
        return []

    def schedule_due(self, total_software_writes: int) -> int:
        return 0

    def bulk_migrations(self, moves: int) -> np.ndarray:
        return np.empty((0, 2), dtype=np.int64)
