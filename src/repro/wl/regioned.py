"""Regioned Start-Gap.

Qureshi's Start-Gap paper deploys the scheme per *region* rather than over
the whole memory: each region owns its own gap line, start register, and
write counter, so a gap move only copies within a region (bounded latency)
and hot regions rotate faster than cold ones.  The WL-Reviver framework is
indifferent to this composition — it only sees migrate operations and an
invertible mapping — which makes :class:`RegionedStartGap` a good stress
test of the "any scheme" claim and the realistic configuration for large
chips.

Address layout: with ``R`` regions of ``D_r = device_blocks / R`` physical
lines each, region ``r`` owns DAs ``[r * D_r, (r+1) * D_r)`` and exposes
``D_r - 1`` PAs; the global PA space is the concatenation of the regions'
logical spaces.  Writes are charged to the region of the written PA, so
each region performs one gap move per ``psi`` writes *to that region* —
the per-region schedule of the original design.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import StartGapConfig
from ..errors import ConfigurationError
from .base import MigrationPort, WearLeveler
from .startgap import StartGap


class RegionedStartGap(WearLeveler):
    """Independent Start-Gap instances over equal slices of the device."""

    def __init__(self, device_blocks: int, num_regions: int = 4,
                 config: Optional[StartGapConfig] = None) -> None:
        super().__init__(device_blocks)
        if num_regions <= 0:
            raise ConfigurationError("num_regions must be positive")
        if device_blocks % num_regions:
            raise ConfigurationError(
                f"{device_blocks} blocks do not split into "
                f"{num_regions} equal regions")
        self.num_regions = num_regions
        self.region_device = device_blocks // num_regions
        if self.region_device < 2:
            raise ConfigurationError("regions too small for Start-Gap")
        self.config = config or StartGapConfig()
        self.regions: List[StartGap] = []
        for index in range(num_regions):
            region_config = StartGapConfig(
                psi=self.config.psi,
                randomizer=self.config.randomizer,
                feistel_rounds=self.config.feistel_rounds,
                seed=self.config.seed + index)
            self.regions.append(StartGap(self.region_device,
                                         config=region_config))
        self._region_logical = self.regions[0].logical_blocks
        #: Writes charged to each region (drives per-region schedules).
        self.region_writes = np.zeros(num_regions, dtype=np.int64)
        self._bulk_cursor = 0

    # ------------------------------------------------------------ capacities

    @property
    def logical_blocks(self) -> int:
        return self._region_logical * self.num_regions

    @property
    def psi(self) -> int:
        """Writes per gap movement, per region."""
        return self.config.psi

    # --------------------------------------------------------------- mapping

    def _split_pa(self, pa: int) -> tuple:
        return divmod(pa, self._region_logical)

    def region_of_pa(self, pa: int) -> int:
        """Region owning physical address *pa*."""
        return pa // self._region_logical

    def map(self, pa: int) -> int:
        region, offset = self._split_pa(pa)
        return region * self.region_device + self.regions[region].map(offset)

    def inverse(self, da: int) -> Optional[int]:
        region, offset = divmod(da, self.region_device)
        local = self.regions[region].inverse(offset)
        if local is None:
            return None  # the region's gap line
        return region * self._region_logical + local

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        pas = np.asarray(pas, dtype=np.int64)
        regions = pas // self._region_logical
        offsets = pas % self._region_logical
        out = np.empty(len(pas), dtype=np.int64)
        for index, scheme in enumerate(self.regions):
            mask = regions == index
            if mask.any():
                out[mask] = (index * self.region_device
                             + scheme.map_many(offsets[mask]))
        return out

    # ------------------------------------------------------------- migration

    class _RegionPort:
        """Translates a region's local addresses to global for the port."""

        def __init__(self, parent: "RegionedStartGap", region: int,
                     port: MigrationPort) -> None:
            self._da_base = region * parent.region_device
            self._pa_base = region * parent._region_logical
            self._port = port

        def can_start_migration(self) -> bool:
            return self._port.can_start_migration()

        def read_migration(self, da: int) -> int:
            return self._port.read_migration(self._da_base + da)

        def write_migration_pa(self, pa: int, tag: int) -> None:
            self._port.write_migration_pa(self._pa_base + pa, tag)

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        if self.frozen:
            return []
        self.write_count += 1
        # Charge the write to its region; without the PA (legacy callers)
        # fall back to round-robin charging.
        if pa is not None:
            region = self.region_of_pa(pa)
        else:
            region = self.write_count % self.num_regions
        self.region_writes[region] += 1
        scheme = self.regions[region]
        local_changed = scheme.tick(self._RegionPort(self, region, port))
        base = region * self._region_logical
        return [base + local for local in local_changed]

    def charge_writes(self, pas: np.ndarray, counts: np.ndarray) -> None:
        """Bulk-charge software writes to their regions (fast engine).

        The exact engine charges through :meth:`tick`; engines must use one
        path or the other, never both, or regions would be double-charged.
        """
        regions = np.asarray(pas, dtype=np.int64) // self._region_logical
        np.add.at(self.region_writes, regions,
                  np.asarray(counts, dtype=np.int64))

    def schedule_due(self, total_software_writes: int) -> int:
        return sum(int(self.region_writes[index]) // self.psi
                   - self.regions[index].gap_moves
                   for index in range(self.num_regions))

    def bulk_migrations(self, moves: int) -> np.ndarray:
        if self.frozen or moves <= 0:
            return np.empty((0, 2), dtype=np.int64)
        rows = []
        for _ in range(moves):
            # Serve the region with the largest schedule debt.
            debts = [int(self.region_writes[i]) // self.psi
                     - self.regions[i].gap_moves
                     for i in range(self.num_regions)]
            region = int(np.argmax(debts))
            if debts[region] <= 0:
                region = self._bulk_cursor % self.num_regions
                self._bulk_cursor += 1
            local = self.regions[region].bulk_migrations(1)
            if local.size:
                rows.append(local[0] + region * self.region_device)
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    # -------------------------------------------------------------- lifecycle

    def freeze(self) -> None:
        super().freeze()
        for scheme in self.regions:
            scheme.freeze()

    def describe(self) -> str:
        """One-line state summary."""
        moves = [scheme.gap_moves for scheme in self.regions]
        return (f"RegionedStartGap(regions={self.num_regions}, "
                f"region_blocks={self.region_device}, psi={self.psi}, "
                f"moves={moves}, frozen={self.frozen})")
