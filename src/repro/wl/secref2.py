"""Two-level Security Refresh (Seong et al., ISCA 2010, full design).

The single-level scheme (:mod:`repro.wl.secref`) refreshes one flat region;
the published design composes two levels to get fast local refresh without
global data movement on every step:

* the memory splits into ``2^k`` *sub-regions* of ``2^m`` blocks;
* an **inner** Security Refresh instance runs independently inside each
  sub-region (own keys, own refresh pointer, charged by the writes landing
  in that sub-region);
* an **outer** Security Refresh instance permutes which *physical*
  sub-region backs each *logical* sub-region; one outer refresh migrates a
  whole sub-region pair (``2 * 2^m`` block writes), so its interval is
  correspondingly long.

Mapping composition (all powers of two):

``da = outer.map(sub) * 2^m + inner[sub].map(offset)``
  where ``(sub, offset) = divmod(pa, 2^m)``.

Both levels are the verified single-level implementation, so bijectivity
and the commit-first migration discipline carry over; the inner instances
are keyed per *logical* sub-region, which keeps their state attached to
the data as the outer level moves it.  WL-Reviver needs no changes — this
scheme exists precisely to stress the framework's "any scheme" claim with
a composite, hierarchically-scheduled migrator.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import SecurityRefreshConfig
from ..errors import ConfigurationError
from ..units import is_power_of_two, log2_exact
from .base import MigrationPort, WearLeveler
from .secref import SecurityRefresh


class TwoLevelSecurityRefresh(WearLeveler):
    """Outer sub-region permutation over per-sub-region inner refreshers."""

    def __init__(self, device_blocks: int, num_subregions: int = 8,
                 inner_interval: int = 100,
                 outer_interval: Optional[int] = None,
                 seed: int = 3) -> None:
        super().__init__(device_blocks)
        if not is_power_of_two(device_blocks):
            raise ConfigurationError("device_blocks must be a power of two")
        if not is_power_of_two(num_subregions):
            raise ConfigurationError("num_subregions must be a power of two")
        if num_subregions >= device_blocks:
            raise ConfigurationError("sub-regions must hold >= 2 blocks")
        self.num_subregions = num_subregions
        self.sub_blocks = device_blocks // num_subregions
        self._sub_bits = log2_exact(self.sub_blocks)
        if outer_interval is None:
            # One outer refresh costs 2 * sub_blocks migrations; keep its
            # amortized write overhead equal to the inner level's.
            outer_interval = inner_interval * 2 * self.sub_blocks
        self.outer = SecurityRefresh(
            num_subregions,
            config=SecurityRefreshConfig(refresh_interval=outer_interval,
                                         seed=seed))
        self.inner: List[SecurityRefresh] = [
            SecurityRefresh(self.sub_blocks,
                            config=SecurityRefreshConfig(
                                refresh_interval=inner_interval,
                                seed=seed + 1 + index))
            for index in range(num_subregions)]

    # ------------------------------------------------------------ capacities

    @property
    def logical_blocks(self) -> int:
        return self.device_blocks

    # --------------------------------------------------------------- mapping

    def _split(self, pa: int) -> tuple:
        return pa >> self._sub_bits, pa & (self.sub_blocks - 1)

    def map(self, pa: int) -> int:
        sub, offset = self._split(pa)
        return (self.outer.map(sub) << self._sub_bits) \
            | self.inner[sub].map(offset)

    def inverse(self, da: int) -> Optional[int]:
        physical_sub, physical_offset = self._split(da)
        sub = self.outer.inverse(physical_sub)
        offset = self.inner[sub].inverse(physical_offset)
        return (sub << self._sub_bits) | offset

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        pas = np.asarray(pas, dtype=np.int64)
        subs = pas >> self._sub_bits
        offsets = pas & (self.sub_blocks - 1)
        physical_subs = self.outer.map_many(subs)
        out = np.empty(len(pas), dtype=np.int64)
        for sub in np.unique(subs):
            mask = subs == sub
            out[mask] = ((physical_subs[mask] << self._sub_bits)
                         | self.inner[int(sub)].map_many(offsets[mask]))
        return out

    # ------------------------------------------------------------- migration

    class _InnerPort:
        """Lifts a sub-region's local operations to global addresses.

        The inner scheme thinks in offsets; reads arrive as *local DAs*
        (offset under the inner mapping) and writes as *local PAs*
        (offsets).  Globalization goes through the *current outer mapping*
        for reads and through the parent's composed mapping for writes.
        """

        def __init__(self, parent: "TwoLevelSecurityRefresh",
                     sub: int, port: MigrationPort) -> None:
            self._parent = parent
            self._sub = sub
            self._port = port

        def can_start_migration(self) -> bool:
            return self._port.can_start_migration()

        def read_migration(self, local_da: int) -> int:
            base = (self._parent.outer.map(self._sub)
                    << self._parent._sub_bits)
            return self._port.read_migration(base | local_da)

        def write_migration_pa(self, local_pa: int, tag: int) -> None:
            global_pa = (self._sub << self._parent._sub_bits) | local_pa
            self._port.write_migration_pa(global_pa, tag)

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        if self.frozen:
            return []
        self.write_count += 1
        changed: List[int] = []
        # Inner level: charge the written sub-region.
        if pa is not None:
            sub = pa >> self._sub_bits
        else:
            sub = self.write_count % self.num_subregions
        inner = self.inner[sub]
        local_changed = inner.tick(self._InnerPort(self, sub, port))
        changed.extend((sub << self._sub_bits) | off for off in local_changed)
        # Outer level: one sub-region swap when due.
        changed.extend(self._outer_tick(port))
        return changed

    def _outer_tick(self, port: MigrationPort) -> List[int]:
        self.outer.write_count += 1
        due = (self.outer.write_count
               // self.outer.config.refresh_interval) - self.outer.refreshes
        changed: List[int] = []
        while due > 0 and port.can_start_migration():
            changed.extend(self._outer_refresh_one(port))
            due -= 1
        return changed

    def _outer_refresh_one(self, port: MigrationPort) -> List[int]:
        """Refresh one outer address: migrate a whole sub-region pair."""
        sub = self.outer.rp
        partner = sub ^ self.outer.key_prev ^ self.outer.key_cur
        if partner <= sub:
            self.outer._advance_rp()
            return []
        # Read both sub-regions through the pre-commit mapping.
        tags_a = [port.read_migration(self.map((sub << self._sub_bits) | off))
                  for off in range(self.sub_blocks)]
        tags_b = [port.read_migration(
            self.map((partner << self._sub_bits) | off))
            for off in range(self.sub_blocks)]
        self.outer._advance_rp()  # commit the outer remapping
        for off, tag in enumerate(tags_a):
            port.write_migration_pa((sub << self._sub_bits) | off, tag)
        for off, tag in enumerate(tags_b):
            port.write_migration_pa((partner << self._sub_bits) | off, tag)
        base_a = sub << self._sub_bits
        base_b = partner << self._sub_bits
        return ([base_a | off for off in range(self.sub_blocks)]
                + [base_b | off for off in range(self.sub_blocks)])

    # ------------------------------------------------------------ bulk (fast)

    def charge_writes(self, pas: np.ndarray, counts: np.ndarray) -> None:
        """Bulk-charge inner schedules per sub-region (fast engine)."""
        subs = np.asarray(pas, dtype=np.int64) >> self._sub_bits
        counts = np.asarray(counts, dtype=np.int64)
        for sub in np.unique(subs):
            mask = subs == sub
            self.inner[int(sub)].write_count += int(counts[mask].sum())
        self.outer.write_count += int(counts.sum())

    def schedule_due(self, total_software_writes: int) -> int:
        inner_due = sum(
            max(0, inner.write_count // inner.config.refresh_interval
                - inner.refreshes)
            for inner in self.inner)
        outer_due = max(0, self.outer.write_count
                        // self.outer.config.refresh_interval
                        - self.outer.refreshes)
        return inner_due + outer_due

    def bulk_migrations(self, moves: int) -> np.ndarray:
        if self.frozen or moves <= 0:
            return np.empty((0, 2), dtype=np.int64)
        rows: List[np.ndarray] = []
        for _ in range(moves):
            # Serve the most indebted inner region first, then the outer.
            debts = [inner.write_count // inner.config.refresh_interval
                     - inner.refreshes for inner in self.inner]
            best = int(np.argmax(debts))
            if debts[best] > 0:
                base = self.outer.map(best) << self._sub_bits
                local = self.inner[best].bulk_migrations(1)
                if local.size:
                    rows.append(local + base)
                continue
            outer_due = (self.outer.write_count
                         // self.outer.config.refresh_interval
                         - self.outer.refreshes)
            if outer_due <= 0:
                break
            rows.append(self._outer_bulk_rows())
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate([r for r in rows if r.size],
                              axis=0).astype(np.int64)

    def _outer_bulk_rows(self) -> np.ndarray:
        sub = self.outer.rp
        partner = sub ^ self.outer.key_prev ^ self.outer.key_cur
        if partner <= sub:
            self.outer._advance_rp()
            return np.empty((0, 2), dtype=np.int64)
        src_a = (self.outer.map(sub) << self._sub_bits) \
            + np.arange(self.sub_blocks)
        src_b = (self.outer.map(partner) << self._sub_bits) \
            + np.arange(self.sub_blocks)
        self.outer._advance_rp()
        dst_a = (self.outer.map(sub) << self._sub_bits) \
            + np.arange(self.sub_blocks)
        dst_b = (self.outer.map(partner) << self._sub_bits) \
            + np.arange(self.sub_blocks)
        return np.concatenate([
            np.stack([src_a, dst_a], axis=1),
            np.stack([src_b, dst_b], axis=1)], axis=0)

    # -------------------------------------------------------------- reporting

    def describe(self) -> str:
        """One-line state summary."""
        return (f"TwoLevelSecurityRefresh(subs={self.num_subregions}x"
                f"{self.sub_blocks}, outer_rp={self.outer.rp}, "
                f"outer_round={self.outer.rounds}, frozen={self.frozen})")
