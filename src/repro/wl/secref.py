"""Security Refresh, single level (Seong et al., ISCA 2010).

The scheme remaps a region of ``2^k`` blocks with two random XOR keys: the
previous round's key ``k_prev`` and the current round's key ``k_cur``.  A
*refresh pointer* ``rp`` sweeps the logical addresses; every
``refresh_interval`` writes to the region it refreshes one address by
swapping the data of the address pair that the key change affects.

Because the remapping is an XOR, refreshes happen in pairs: refreshing
logical address ``ma`` also places the data of its partner
``ma ^ k_prev ^ k_cur``.  An address therefore counts as refreshed when
*either* it or its partner is below ``rp``; when ``rp`` later reaches the
partner the refresh is a no-op.  Swaps go through a buffer register, never a
spare PCM block, so all ``2^k`` physical blocks are mapped — the *implicit*
buffer block of Theorem 3.

Mapping: ``da = ma ^ k_cur`` if refreshed else ``ma ^ k_prev``; both
directions are the same XOR, which makes the inverse trivial.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import SecurityRefreshConfig
from ..errors import ConfigurationError
from ..rng import derive_rng
from ..units import is_power_of_two
from .base import MigrationPort, WearLeveler


class SecurityRefresh(WearLeveler):
    """Single-level Security Refresh over a power-of-two region."""

    def __init__(self, device_blocks: int,
                 config: Optional[SecurityRefreshConfig] = None) -> None:
        super().__init__(device_blocks)
        if not is_power_of_two(device_blocks):
            raise ConfigurationError(
                "Security Refresh requires a power-of-two region "
                f"(got {device_blocks} blocks)")
        self.config = config or SecurityRefreshConfig()
        self._rng = derive_rng(self.config.seed, "secref-keys")
        self.key_prev = 0
        self.key_cur = self._draw_key()
        #: Next logical address to refresh in this round.
        self.rp = 0
        #: Completed refresh rounds.
        self.rounds = 0
        #: Refresh operations performed (including pair no-ops).
        self.refreshes = 0

    def _draw_key(self) -> int:
        return int(self._rng.integers(0, self.device_blocks))

    # ------------------------------------------------------------ capacities

    @property
    def logical_blocks(self) -> int:
        return self.device_blocks

    # --------------------------------------------------------------- mapping

    def _refreshed(self, ma: int) -> bool:
        partner = ma ^ self.key_prev ^ self.key_cur
        return ma < self.rp or partner < self.rp

    def map(self, pa: int) -> int:
        if self._refreshed(pa):
            return pa ^ self.key_cur
        return pa ^ self.key_prev

    def inverse(self, da: int) -> Optional[int]:
        candidate = da ^ self.key_cur
        if self._refreshed(candidate):
            return candidate
        return da ^ self.key_prev

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        pas = np.asarray(pas, dtype=np.int64)
        partners = pas ^ (self.key_prev ^ self.key_cur)
        refreshed = (pas < self.rp) | (partners < self.rp)
        return np.where(refreshed, pas ^ self.key_cur, pas ^ self.key_prev)

    # ------------------------------------------------------------- migration

    def _due_refreshes(self) -> int:
        """Refresh operations owed given the write count so far."""
        return self.write_count // self.config.refresh_interval - self.refreshes

    def _refresh_one(self, port: MigrationPort) -> List[int]:
        """Refresh logical address ``rp``; return PAs whose mapping changed."""
        ma = self.rp
        partner = ma ^ self.key_prev ^ self.key_cur
        if partner <= ma:
            # Pair already refreshed earlier in the round (or key collision
            # made the pair degenerate): advancing the pointer is enough.
            self._advance_rp()
            return []
        da_a = ma ^ self.key_prev       # current home of ma's data
        da_b = ma ^ self.key_cur        # == partner ^ key_prev
        tag_a = port.read_migration(da_a)
        tag_b = port.read_migration(da_b)
        # Commit the remapping, then store both data under their new owner
        # PAs (the swap's buffer register is implicit in the port).
        self._advance_rp()
        port.write_migration_pa(ma, tag_a)
        port.write_migration_pa(partner, tag_b)
        return [ma, partner]

    def _advance_rp(self) -> None:
        self.refreshes += 1
        self.rp += 1
        if self.rp >= self.logical_blocks:
            self.rounds += 1
            self.rp = 0
            self.key_prev = self.key_cur
            self.key_cur = self._draw_key()

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        if self.frozen:
            return []
        self.write_count += 1
        changed: List[int] = []
        while self._due_refreshes() > 0 and port.can_start_migration():
            changed.extend(self._refresh_one(port))
        return changed

    def schedule_due(self, total_software_writes: int) -> int:
        return max(0, total_software_writes // self.config.refresh_interval
                   - self.refreshes)

    def bulk_migrations(self, moves: int) -> np.ndarray:
        if self.frozen or moves <= 0:
            return np.empty((0, 2), dtype=np.int64)
        rows: List[tuple] = []
        for _ in range(moves):
            ma = self.rp
            partner = ma ^ self.key_prev ^ self.key_cur
            if partner > ma:
                da_a = ma ^ self.key_prev
                da_b = ma ^ self.key_cur
                rows.append((da_a, da_b))
                rows.append((da_b, da_a))
            self._advance_rp()
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    # -------------------------------------------------------------- reporting

    def describe(self) -> str:
        """One-line state summary."""
        return (f"SecurityRefresh(N={self.device_blocks}, "
                f"interval={self.config.refresh_interval}, rp={self.rp}, "
                f"round={self.rounds}, frozen={self.frozen})")
