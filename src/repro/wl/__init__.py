"""Wear-leveling schemes.

Every scheme implements :class:`~repro.wl.base.WearLeveler`: an invertible
PA-to-DA mapping plus a write-triggered migration schedule driven through a
:class:`~repro.wl.base.MigrationPort`.  WL-Reviver interacts with schemes
*only* through the port's migrate operations (the one operation the paper
assumes is common to all schemes), so the framework code never needs to know
which scheme is running.

Schemes:

* :class:`~repro.wl.startgap.StartGap` — Start-Gap with static address
  randomization (Qureshi et al., MICRO'09); the paper's representative.
* :class:`~repro.wl.regioned.RegionedStartGap` — the original paper's
  deployed form: independent Start-Gap instances per region, each with its
  own per-region write schedule.
* :class:`~repro.wl.secref.SecurityRefresh` — single-level Security Refresh
  (Seong et al., ISCA'10): key-XOR remapping with in-place pair swaps.
* :class:`~repro.wl.secref2.TwoLevelSecurityRefresh` — the ISCA'10 paper's
  full design: per-sub-region inner refreshers under an outer sub-region
  permutation.
* :class:`~repro.wl.table.TableWL` — the "traditional" indirection-table
  scheme (hot/cold swapping) the paper's introduction argues is too
  expensive for hardware; kept as a reference point.
* :class:`~repro.wl.nowl.NoWL` — identity mapping, no migration.
"""

from .base import MigrationPort, WearLeveler, NullPort
from .randomizer import (
    AddressRandomizer,
    FeistelRandomizer,
    IdentityRandomizer,
    PermutationRandomizer,
    RestrictedRandomizer,
    make_randomizer,
)
from .startgap import StartGap
from .regioned import RegionedStartGap
from .secref import SecurityRefresh
from .secref2 import TwoLevelSecurityRefresh
from .table import TableWL
from .nowl import NoWL

__all__ = [
    "MigrationPort", "WearLeveler", "NullPort",
    "AddressRandomizer", "FeistelRandomizer", "IdentityRandomizer",
    "PermutationRandomizer", "RestrictedRandomizer", "make_randomizer",
    "StartGap", "RegionedStartGap", "SecurityRefresh",
    "TwoLevelSecurityRefresh", "TableWL", "NoWL",
]
