"""Start-Gap wear leveling (Qureshi et al., MICRO 2009).

For a logical space of ``L`` lines, Start-Gap provisions ``L + 1`` physical
lines; the extra line is the *gap* (never mapped by any PA — the explicit
buffer block Theorem 3 of the WL-Reviver paper relies on).  Two registers
suffice:

* ``gap`` — physical position of the empty line;
* ``start`` — how many full rotations the address space has performed.

Every ``psi`` software writes one *gap move* copies the line below the gap
into the gap, moving the gap down one position.  When the gap reaches
position 0, a wrap move copies the top physical line into position 0 and the
gap returns to the top while ``start`` advances — after ``L + 1`` moves every
line has shifted by one and the rotation repeats.

Mapping (with ``ra`` the statically randomized PA):

``x = (ra + start) mod L``;  ``da = x + 1 if x >= gap else x``.

Randomized Start-Gap composes this with a static random bijection of the PA
space (:mod:`repro.wl.randomizer`) to destroy spatial correlation; the paper
stresses that LLS must *restrict* this bijection while WL-Reviver keeps it
intact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import StartGapConfig
from ..errors import ConfigurationError
from .base import MigrationPort, WearLeveler
from .randomizer import AddressRandomizer, make_randomizer


class StartGap(WearLeveler):
    """Randomized Start-Gap over ``device_blocks`` physical lines."""

    def __init__(self, device_blocks: int,
                 config: Optional[StartGapConfig] = None,
                 randomizer: Optional[AddressRandomizer] = None) -> None:
        super().__init__(device_blocks)
        if device_blocks < 2:
            raise ConfigurationError("Start-Gap needs at least 2 device blocks")
        self.config = config or StartGapConfig()
        self._logical = device_blocks - 1
        self.randomizer = randomizer or make_randomizer(
            self.config.randomizer, self._logical,
            seed=self.config.seed, rounds=self.config.feistel_rounds)
        if self.randomizer.size != self._logical:
            raise ConfigurationError(
                f"randomizer covers {self.randomizer.size} addresses, "
                f"need {self._logical}")
        #: Physical position of the gap line (starts at the top line L).
        self.gap = self._logical
        #: Rotation counter in [0, L).
        self.start = 0
        #: Total gap moves performed (for reporting).
        self.gap_moves = 0
        #: A migration the port suspended; retried on subsequent ticks.
        self._pending_moves = 0

    # ------------------------------------------------------------ capacities

    @property
    def logical_blocks(self) -> int:
        return self._logical

    @property
    def psi(self) -> int:
        """Software writes per gap movement."""
        return self.config.psi

    # --------------------------------------------------------------- mapping

    def map(self, pa: int) -> int:
        ra = self.randomizer.forward(pa)
        x = (ra + self.start) % self._logical
        return x + 1 if x >= self.gap else x

    def inverse(self, da: int) -> Optional[int]:
        if da == self.gap:
            return None
        x = da - 1 if da > self.gap else da
        ra = (x - self.start) % self._logical
        return self.randomizer.backward(ra)

    def map_many(self, pas: np.ndarray) -> np.ndarray:
        ra = self.randomizer.forward_many(np.asarray(pas, dtype=np.int64))
        x = (ra + self.start) % self._logical
        return x + np.where(x >= self.gap, 1, 0)

    # ------------------------------------------------------------- migration

    def _move_endpoints(self) -> tuple:
        """``(src, dst)`` of the next gap move in the current state."""
        if self.gap == 0:
            # Wrap move: top physical line rotates into position 0.
            return self._logical, 0
        return self.gap - 1, self.gap

    def _commit_move(self) -> List[int]:
        """Update registers after a completed move; return the changed PA."""
        src, dst = self._move_endpoints()
        if self.gap == 0:
            self.gap = self._logical
            self.start = (self.start + 1) % self._logical
        else:
            self.gap -= 1
        self.gap_moves += 1
        changed = self.inverse(dst)
        return [changed] if changed is not None else []

    def tick(self, port: MigrationPort, pa: Optional[int] = None) -> List[int]:
        if self.frozen:
            return []
        self.write_count += 1
        if self.write_count % self.psi == 0:
            self._pending_moves += 1
        changed: List[int] = []
        while self._pending_moves and port.can_start_migration():
            src, _ = self._move_endpoints()
            tag = port.read_migration(src)
            moved = self._commit_move()
            # Post-commit, the destination is owned by exactly the moved PA.
            for pa in moved:
                port.write_migration_pa(pa, tag)
            changed.extend(moved)
            self._pending_moves -= 1
        return changed

    def schedule_due(self, total_software_writes: int) -> int:
        return max(0, total_software_writes // self.psi - self.gap_moves)

    def bulk_migrations(self, moves: int) -> np.ndarray:
        if self.frozen or moves <= 0:
            return np.empty((0, 2), dtype=np.int64)
        rows = np.empty((moves, 2), dtype=np.int64)
        for i in range(moves):
            rows[i] = self._move_endpoints()
            self._commit_move()
        return rows

    # -------------------------------------------------------------- reporting

    def describe(self) -> str:
        """One-line state summary."""
        return (f"StartGap(L={self._logical}, psi={self.psi}, "
                f"gap={self.gap}, start={self.start}, "
                f"moves={self.gap_moves}, frozen={self.frozen})")
