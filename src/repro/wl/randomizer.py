"""Static address randomizers.

Start-Gap alone only shifts addresses by one position per gap move, which
leaves spatial correlation intact; the published scheme therefore composes
it with a *static random bijection* of the address space ("Randomized
Start-Gap").  This module provides the bijections:

* :class:`FeistelRandomizer` — a keyed Feistel network, the hardware-
  realistic choice (constant logic, no table).  Domains that are not a power
  of two are handled with cycle-walking: apply the permutation of the next
  power of two repeatedly until the value lands inside the domain (a
  standard format-preserving-encryption construction; still a bijection).
* :class:`PermutationRandomizer` — an explicit random permutation table;
  the gold standard the Feistel network approximates.
* :class:`IdentityRandomizer` — no randomization (ablations; shows the
  spatial-correlation weakness).
* :class:`RestrictedRandomizer` — the *handicapped* randomization LLS must
  adopt (Section IV-D): addresses in the lower half may only randomize into
  the upper half and vice versa, which keeps concentrated writes from being
  fully spread.  For odd domains the last address maps to itself.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import AddressError, ConfigurationError
from ..rng import SeedLike, make_rng

_MASK64 = (1 << 64) - 1


class AddressRandomizer(abc.ABC):
    """A seeded bijection over ``[0, size)``."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError("randomizer size must be positive")
        self.size = size

    @abc.abstractmethod
    def forward(self, address: int) -> int:
        """Randomize *address*."""

    @abc.abstractmethod
    def backward(self, address: int) -> int:
        """Invert :meth:`forward`."""

    def forward_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`forward` (subclasses override where possible)."""
        return np.fromiter((self.forward(int(a)) for a in addresses),
                           dtype=np.int64, count=len(addresses))

    def backward_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`backward`."""
        return np.fromiter((self.backward(int(a)) for a in addresses),
                           dtype=np.int64, count=len(addresses))

    def _check(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise AddressError(f"address {address} outside [0, {self.size})")
        return address


class IdentityRandomizer(AddressRandomizer):
    """No randomization at all."""

    def forward(self, address: int) -> int:
        return self._check(address)

    def backward(self, address: int) -> int:
        return self._check(address)

    def forward_many(self, addresses: np.ndarray) -> np.ndarray:
        return np.asarray(addresses, dtype=np.int64)

    def backward_many(self, addresses: np.ndarray) -> np.ndarray:
        return np.asarray(addresses, dtype=np.int64)


class PermutationRandomizer(AddressRandomizer):
    """Explicit random permutation (table-based)."""

    def __init__(self, size: int, seed: SeedLike = None) -> None:
        super().__init__(size)
        rng = make_rng(seed)
        self._table = rng.permutation(size).astype(np.int64)
        self._inverse = np.empty(size, dtype=np.int64)
        self._inverse[self._table] = np.arange(size, dtype=np.int64)

    def forward(self, address: int) -> int:
        return int(self._table[self._check(address)])

    def backward(self, address: int) -> int:
        return int(self._inverse[self._check(address)])

    def forward_many(self, addresses: np.ndarray) -> np.ndarray:
        return self._table[np.asarray(addresses, dtype=np.int64)]

    def backward_many(self, addresses: np.ndarray) -> np.ndarray:
        return self._inverse[np.asarray(addresses, dtype=np.int64)]


class FeistelRandomizer(AddressRandomizer):
    """Keyed balanced Feistel network with cycle-walking."""

    def __init__(self, size: int, seed: SeedLike = None, rounds: int = 4) -> None:
        super().__init__(size)
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        self.rounds = rounds
        # Width of the enclosing power-of-two domain, forced even so the
        # Feistel halves are balanced.
        bits = max(2, (size - 1).bit_length())
        if bits % 2:
            bits += 1
        self._bits = bits
        self._half = bits // 2
        self._half_mask = (1 << self._half) - 1
        rng = make_rng(seed)
        self._keys = [int(k) for k in rng.integers(0, _MASK64, size=rounds,
                                                   dtype=np.uint64)]

    # ------------------------------------------------------------- internals

    def _round_fn(self, value: int, key: int) -> int:
        """Keyed mixing function of one Feistel round (any function works)."""
        x = (value * 0x9E3779B97F4A7C15 + key) & _MASK64
        x ^= x >> 29
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x ^= x >> 32
        return x & self._half_mask

    def _permute_pow2(self, value: int) -> int:
        left = value >> self._half
        right = value & self._half_mask
        for key in self._keys:
            left, right = right, left ^ self._round_fn(right, key)
        return (left << self._half) | right

    def _unpermute_pow2(self, value: int) -> int:
        left = value >> self._half
        right = value & self._half_mask
        for key in reversed(self._keys):
            left, right = right ^ self._round_fn(left, key), left
        return (left << self._half) | right

    # -------------------------------------------------------------- interface

    def forward(self, address: int) -> int:
        value = self._check(address)
        while True:
            value = self._permute_pow2(value)
            if value < self.size:
                return value

    def backward(self, address: int) -> int:
        value = self._check(address)
        while True:
            value = self._unpermute_pow2(value)
            if value < self.size:
                return value

    def forward_many(self, addresses: np.ndarray) -> np.ndarray:
        values = np.asarray(addresses, dtype=np.uint64)
        out = self._permute_pow2_vec(values)
        walk = out >= self.size
        while walk.any():
            out[walk] = self._permute_pow2_vec(out[walk])
            walk = out >= self.size
        return out.astype(np.int64)

    def backward_many(self, addresses: np.ndarray) -> np.ndarray:
        values = np.asarray(addresses, dtype=np.uint64)
        out = self._unpermute_pow2_vec(values)
        walk = out >= self.size
        while walk.any():
            out[walk] = self._unpermute_pow2_vec(out[walk])
            walk = out >= self.size
        return out.astype(np.int64)

    # Vectorized mirrors of the scalar round functions (uint64 wraparound
    # arithmetic matches the scalar masked arithmetic exactly).

    def _round_fn_vec(self, values: np.ndarray, key: int) -> np.ndarray:
        with np.errstate(over="ignore"):
            x = values * np.uint64(0x9E3779B97F4A7C15) + np.uint64(key)
            x ^= x >> np.uint64(29)
            x *= np.uint64(0xBF58476D1CE4E5B9)
            x ^= x >> np.uint64(32)
        return x & np.uint64(self._half_mask)

    def _permute_pow2_vec(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half)
        right = values & np.uint64(self._half_mask)
        for key in self._keys:
            left, right = right, left ^ self._round_fn_vec(right, key)
        return (left << np.uint64(self._half)) | right

    def _unpermute_pow2_vec(self, values: np.ndarray) -> np.ndarray:
        left = values >> np.uint64(self._half)
        right = values & np.uint64(self._half_mask)
        for key in reversed(self._keys):
            left, right = right ^ self._round_fn_vec(left, key), left
        return (left << np.uint64(self._half)) | right


class RestrictedRandomizer(AddressRandomizer):
    """LLS's half-space-restricted randomization.

    Lower-half addresses randomize only into the upper half and vice versa;
    for an odd *size* the middle element is fixed.  This is the adaptation
    the paper identifies as the reason LLS's leveling is weaker: a hot
    region confined to one half lands in a single target half instead of
    spreading over the whole space.
    """

    def __init__(self, size: int, seed: SeedLike = None) -> None:
        super().__init__(size)
        rng = make_rng(seed)
        self._half_size = size // 2
        h = self._half_size
        # lower[i] in upper half positions, upper[j] in lower half positions.
        self._low_to_up = (rng.permutation(h) + h).astype(np.int64)
        self._up_to_low = rng.permutation(h).astype(np.int64)
        self._inv = np.empty(size, dtype=np.int64)
        self._inv[self._low_to_up] = np.arange(h, dtype=np.int64)
        self._inv[self._up_to_low] = np.arange(h, 2 * h, dtype=np.int64)
        if size % 2:
            self._inv[size - 1] = size - 1

    def forward(self, address: int) -> int:
        address = self._check(address)
        h = self._half_size
        if address < h:
            return int(self._low_to_up[address])
        if address < 2 * h:
            return int(self._up_to_low[address - h])
        return address  # odd-size fixed point

    def backward(self, address: int) -> int:
        return int(self._inv[self._check(address)])

    def forward_many(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.int64)
        h = self._half_size
        out = addresses.copy()
        low = addresses < h
        up = (addresses >= h) & (addresses < 2 * h)
        out[low] = self._low_to_up[addresses[low]]
        out[up] = self._up_to_low[addresses[up] - h]
        return out

    def backward_many(self, addresses: np.ndarray) -> np.ndarray:
        return self._inv[np.asarray(addresses, dtype=np.int64)]


def make_randomizer(kind: str, size: int, seed: SeedLike = None,
                    rounds: int = 4) -> AddressRandomizer:
    """Factory keyed by the config string (see ``StartGapConfig.randomizer``)."""
    if kind == "feistel":
        return FeistelRandomizer(size, seed=seed, rounds=rounds)
    if kind == "permutation":
        return PermutationRandomizer(size, seed=seed)
    if kind == "identity":
        return IdentityRandomizer(size)
    if kind == "restricted":
        return RestrictedRandomizer(size, seed=seed)
    raise ConfigurationError(f"unknown randomizer kind {kind!r}")
