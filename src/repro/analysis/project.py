"""Whole-program project model: modules, imports, functions, call sites.

The per-file rules of :mod:`repro.analysis.rules` are purely syntactic —
each sees one parsed module and nothing else.  The protocol invariants the
batched kernel and the shared-memory transport introduced (row views must
keep aliasing, build/finish pairs are exempt from aliasing discipline,
hooks stay ``None``-defaulted everywhere) are *cross-module* contracts:
whether a function is a registered batchable builder is decided by a
``register_batchable(...)`` call in some other part of the same module —
or, for the grid runner, another module entirely.

:class:`ProjectModel` is built once per lint run over every parsed
:class:`~repro.analysis.core.SourceFile` and gives rules three indexes:

* **modules** — dotted module name (derived from the file path) to
  :class:`ModuleInfo`, with the import edges restricted to project-local
  modules forming the import graph;
* **functions** — every ``def`` (sync or async, nested and methods
  included) as a :class:`FunctionInfo` with its qualified name, parameter
  list and assigned-name symbol table;
* **call index** — callee tail name (``register_batchable`` in
  ``sim.batched.register_batchable(...)``) to every call site, so rules
  can find protocol registration points without re-walking each tree.

Rules receive the model through :class:`~repro.analysis.core.ProjectRule`;
``lint_source`` on a lone file builds a single-file model so fixtures and
editors see identical behavior, just with an empty cross-module horizon.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import SourceFile

#: Path components that root an import namespace: the module name of
#: ``src/repro/sim/fast.py`` starts after the ``src`` segment.
_SOURCE_ROOTS = ("src",)


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    ``src/repro/sim/fast.py`` -> ``repro.sim.fast``;
    ``tools/sarif_check.py`` -> ``tools.sarif_check``; an ``__init__.py``
    names its package.  Paths outside any source root keep their full
    relative shape so distinct files never collide.
    """
    parts = list(path.parts)
    for root in _SOURCE_ROOTS:
        if root in parts:
            parts = parts[len(parts) - parts[::-1].index(root):]
            break
    if not parts:
        return path.stem
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One ``def`` with the facts the dataflow rules consume."""

    qualname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: ``(name, annotation source or None, has a literal None default)``
    params: Tuple[Tuple[str, Optional[str], bool], ...]
    #: Every name bound by assignment anywhere in the body.
    assigned: Set[str] = field(default_factory=set)
    #: Tail names of every call made in the body (``fn`` for ``m.fn(...)``).
    calls: Set[str] = field(default_factory=set)


@dataclass
class CallSite:
    """One call expression, indexed by its callee tail name."""

    module: str
    path: str
    node: ast.Call


@dataclass
class ModuleInfo:
    """One project module: identity, imports, functions."""

    name: str
    path: str
    tree: ast.Module
    #: Dotted names of every imported module (absolute form when derivable).
    imports: Set[str] = field(default_factory=set)
    functions: List[FunctionInfo] = field(default_factory=list)


def _callee_tail(func: ast.expr) -> Optional[str]:
    """The final identifier of a call target, if it has one."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _annotation_source(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed annotation
        return None


def _param_rows(args: ast.arguments) -> Tuple[Tuple[str, Optional[str], bool], ...]:
    """Flatten an arguments node into ``(name, annotation, default-is-None)``."""
    rows: List[Tuple[str, Optional[str], bool]] = []
    positional = args.posonlyargs + args.args
    defaults: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        rows.append((arg.arg, _annotation_source(arg.annotation),
                     isinstance(default, ast.Constant)
                     and default.value is None))
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        rows.append((arg.arg, _annotation_source(arg.annotation),
                     isinstance(kw_default, ast.Constant)
                     and kw_default.value is None))
    return tuple(rows)


def _resolve_import(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Best-effort absolute module name for a (possibly relative) import."""
    if node.level == 0:
        return node.module
    base = module.split(".")
    # ``from . import x`` inside package p.q resolves against p.q's package;
    # a module's own dotted name already names the package for __init__.
    hops = node.level
    if len(base) < hops:
        return node.module
    prefix = base[:len(base) - hops]
    if node.module:
        prefix.append(node.module)
    return ".".join(prefix) if prefix else None


class _ModuleScanner(ast.NodeVisitor):
    """Single pass collecting imports, functions and call sites."""

    def __init__(self, info: ModuleInfo, calls: Dict[str, List[CallSite]]):
        self.info = info
        self.calls = calls
        self._stack: List[str] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        resolved = _resolve_import(self.info.name, node)
        if resolved:
            self.info.imports.add(resolved)
        self.generic_visit(node)

    def _visit_function(self, node: ast.FunctionDef) -> None:
        qualname = ".".join(self._stack + [node.name])
        info = FunctionInfo(qualname=qualname, module=self.info.name,
                            node=node, params=_param_rows(node.args))
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (child.targets if isinstance(child, ast.Assign)
                           else [child.target])
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            info.assigned.add(leaf.id)
            elif isinstance(child, ast.Call):
                tail = _callee_tail(child.func)
                if tail is not None:
                    info.calls.add(tail)
        self.info.functions.append(info)
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        tail = _callee_tail(node.func)
        if tail is not None:
            self.calls.setdefault(tail, []).append(
                CallSite(module=self.info.name, path=self.info.path,
                         node=node))
        self.generic_visit(node)


class ProjectModel:
    """The whole-program view rules query; built once per lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.call_index: Dict[str, List[CallSite]] = {}

    # ------------------------------------------------------------ building

    def add_source(self, name: str, path: str, tree: ast.Module) -> ModuleInfo:
        info = ModuleInfo(name=name, path=path, tree=tree)
        _ModuleScanner(info, self.call_index).visit(tree)
        self.modules[name] = info
        self.by_path[path] = info
        return info

    # ------------------------------------------------------------- queries

    def import_graph(self) -> Dict[str, Set[str]]:
        """Edges of the project-local import graph (external edges dropped)."""
        local = set(self.modules)
        graph: Dict[str, Set[str]] = {}
        for name, info in self.modules.items():
            edges = set()
            for imported in info.imports:
                # ``from repro.sim import batched`` records ``repro.sim``;
                # accept both the exact module and any project child of it.
                if imported in local:
                    edges.add(imported)
                else:
                    edges.update(m for m in local
                                 if m.startswith(imported + "."))
            graph[name] = edges
        return graph

    def importers_of(self, module: str) -> Set[str]:
        """Project modules that (transitively do not matter) import *module*."""
        return {name for name, edges in self.import_graph().items()
                if module in edges}

    def functions_in(self, path: str) -> List[FunctionInfo]:
        info = self.by_path.get(path)
        return list(info.functions) if info is not None else []

    def calls_of(self, tail_name: str) -> List[CallSite]:
        return list(self.call_index.get(tail_name, []))

    def batchable_pairs(self) -> Set[Tuple[str, str]]:
        """``(module, function name)`` of every registered build/finish pair.

        Mirrors :func:`repro.sim.batched.register_batchable` call sites:
        positional or keyword ``build=``/``finish=`` arguments referenced by
        name.  Builders construct *fresh* engines (their arrays are not yet
        batch rows) and finishers run after the kernel releases the rows, so
        SOA-ALIAS exempts both ends of the pair.
        """
        pairs: Set[Tuple[str, str]] = set()
        for site in self.calls_of("register_batchable"):
            named: List[ast.expr] = list(site.node.args[1:3])
            for keyword in site.node.keywords:
                if keyword.arg in ("build", "finish"):
                    named.append(keyword.value)
            for expr in named:
                if isinstance(expr, ast.Name):
                    pairs.add((site.module, expr.id))
                elif isinstance(expr, ast.Attribute):
                    pairs.add((site.module, expr.attr))
        return pairs


def build_project(sources: Sequence["SourceFile"]) -> ProjectModel:
    """Assemble the project model over every parsed source file."""
    project = ProjectModel()
    for src in sources:
        project.add_source(module_name_for(src.path), src.posix, src.tree)
    return project
