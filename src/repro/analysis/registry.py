"""Rule registry: rules self-register at import via the decorator."""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ConfigurationError
from .core import Rule

_RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if rule.id in _RULES:
        raise ConfigurationError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package triggers every @register decorator.
    from . import rules  # noqa: F401  (import-for-side-effect)


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _ensure_loaded()
    return sorted(_RULES)


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id (case-insensitive); raise on unknown ids."""
    _ensure_loaded()
    key = rule_id.upper()
    if key not in _RULES:
        known = ", ".join(sorted(_RULES))
        raise ConfigurationError(f"unknown rule {rule_id!r} (known: {known})")
    return _RULES[key]
