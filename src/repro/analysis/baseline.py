"""Finding baselines: adopt a new rule without a flag-day burn-down.

A new whole-program rule lands against a tree with pre-existing true
positives.  Forcing every call site to be fixed (or suppressed inline) in
the same PR couples unrelated modules to the rule rollout; leaving the
gate off hides regressions.  A baseline file is the middle path: the
known findings are recorded once, the gate stays on, and only *new*
findings fail the build.  Burning entries down to zero is the end state
— the gate prints how many baseline entries remain so the debt is
visible, and an entry that no longer matches anything is reported as
stale so fixed findings leave the file.

Entries are keyed on ``(rule, path, message)`` with a count, not on line
numbers: unrelated edits above a finding must not un-baseline it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .core import Finding

Key = Tuple[str, str, str]


def _key(finding: Finding) -> Key:
    return (finding.rule, finding.path, finding.message)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record the given findings as the accepted debt."""
    counts: Dict[Key, int] = {}
    for finding in findings:
        key = _key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"rule": rule, "path": file, "message": message, "count": count}
        for (rule, file, message), count in sorted(counts.items())]
    payload = {"entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Dict[Key, int]:
    """Parse a baseline file into fingerprint counts."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload["entries"]
        counts: Dict[Key, int] = {}
        for entry in entries:
            key = (str(entry["rule"]), str(entry["path"]),
                   str(entry["message"]))
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return counts
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ConfigurationError(f"unreadable baseline {path}: {exc}") \
            from exc


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[Key, int]
                   ) -> Tuple[List[Finding], List[Key]]:
    """Split findings into (new, stale-baseline-keys).

    Each baseline entry absorbs up to ``count`` matching findings; the
    remainder are new.  Keys with leftover capacity are stale — the debt
    they recorded has been paid and they should be deleted.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, stale
