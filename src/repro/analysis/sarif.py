"""SARIF 2.1.0 emission so findings annotate pull requests.

The Static Analysis Results Interchange Format is what code hosts ingest
to turn lint output into inline PR annotations.  This emitter produces
the minimal conforming document: one run, the registered rules as
``tool.driver.rules`` (id, short description, help text from the rule's
rationale), and one ``result`` per finding with a 1-based
``physicalLocation`` region.  :func:`validate_sarif` is the structural
check CI (and the round-trip test) runs against the emitted document —
self-contained on purpose, since the container installs no JSON-schema
package.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .core import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Framework-level findings that exist outside the rule registry.
_FRAMEWORK_RULES = {
    "PARSE": "file does not parse",
    "ALLOW-REASON": "suppression comment without a justification",
}


def to_sarif(findings: Sequence[Finding],
             rules: Sequence[Rule]) -> Dict[str, object]:
    """Render findings as one SARIF 2.1.0 log dictionary."""
    descriptors: List[Dict[str, object]] = []
    known = set()
    for rule in rules:
        known.add(rule.id)
        descriptors.append({
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.rationale},
        })
    for rule_id, text in _FRAMEWORK_RULES.items():
        known.add(rule_id)
        descriptors.append({
            "id": rule_id,
            "shortDescription": {"text": text},
        })
    # Findings from rules outside the passed selection (cached runs with a
    # different --select, fixtures) still need a descriptor to index.
    for finding in findings:
        if finding.rule not in known:
            known.add(finding.rule)
            descriptors.append({
                "id": finding.rule,
                "shortDescription": {"text": finding.rule},
            })
    index = {desc["id"]: i for i, desc in enumerate(descriptors)}
    results: List[Dict[str, object]] = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://github.com/paper-repro/wl-reviver",
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }


def validate_sarif(document: object) -> List[str]:
    """Structural conformance check; returns problems (empty = valid).

    Covers the invariants the emitter (and any consumer) relies on:
    version/runs at top level, a named driver with id'd rules, and every
    result carrying a ruleId, a message and a 1-based physical location.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver", {}) \
            if isinstance(run.get("tool"), dict) else {}
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name missing")
        rule_ids = set()
        for rule in driver.get("rules", []) if isinstance(driver, dict) \
                else []:
            if not isinstance(rule, dict) or not rule.get("id"):
                problems.append(f"{where} has a rule without an id")
            else:
                rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for i, result in enumerate(results):
            spot = f"{where}.results[{i}]"
            if not isinstance(result, dict):
                problems.append(f"{spot} is not an object")
                continue
            if not result.get("ruleId"):
                problems.append(f"{spot}.ruleId missing")
            elif rule_ids and result["ruleId"] not in rule_ids:
                problems.append(f"{spot}.ruleId {result['ruleId']!r} "
                                f"not in driver rules")
            message = result.get("message")
            if not (isinstance(message, dict)
                    and isinstance(message.get("text"), str)):
                problems.append(f"{spot}.message.text missing")
            locations = result.get("locations")
            if not (isinstance(locations, list) and locations):
                problems.append(f"{spot}.locations missing")
                continue
            physical = locations[0].get("physicalLocation", {}) \
                if isinstance(locations[0], dict) else {}
            artifact = physical.get("artifactLocation", {}) \
                if isinstance(physical, dict) else {}
            region = physical.get("region", {}) \
                if isinstance(physical, dict) else {}
            if not (isinstance(artifact, dict) and artifact.get("uri")):
                problems.append(f"{spot} artifactLocation.uri missing")
            if not isinstance(region, dict) \
                    or not isinstance(region.get("startLine"), int) \
                    or region["startLine"] < 1:
                problems.append(f"{spot} region.startLine must be >= 1")
            elif isinstance(region.get("startColumn"), int) \
                    and region["startColumn"] < 1:
                problems.append(f"{spot} region.startColumn must be >= 1")
    return problems
