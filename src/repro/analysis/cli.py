"""Command line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or fully baselined), 1 = findings reported,
2 = usage error.

Beyond the original text/JSON report the CLI grew the adoption and CI
machinery of the whole-program analyzer:

* ``--format sarif`` emits a SARIF 2.1.0 log for PR annotation;
* ``--baseline FILE`` filters known findings (and reports stale entries);
  ``--write-baseline FILE`` records the current findings as the accepted
  debt and exits clean;
* ``--cache FILE`` makes re-runs incremental — an unchanged tree with an
  unchanged ruleset replays findings with zero re-parses; ``--stats``
  prints the hit/miss/parse counters that prove it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from ..errors import ConfigurationError
from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import AnalysisCache
from .core import Finding
from .registry import all_rules, get_rule
from .runner import lint_paths
from .sarif import to_sarif


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Codebase-specific lint for the WL-Reviver reproduction.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                        help="run only the named rules")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="filter findings recorded in this baseline "
                             "file; stale entries are reported")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current findings as the baseline and "
                             "exit 0")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help="incremental-analysis cache file (content-"
                             "hashed, ruleset-versioned)")
    parser.add_argument("--stats", action="store_true",
                        help="print cache hit/miss/parse counters")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    return parser


def _render_text(findings: List[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"{len(findings)} {noun}", file=stream)


def _render_json(findings: List[Finding], stream: TextIO) -> None:
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def main(argv: Optional[List[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    """Run the linter; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}", file=out)
            print(f"    guards against: {rule.rationale}", file=out)
        return 0
    try:
        rules = ([get_rule(name) for name in args.select.split(",")]
                 if args.select else None)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=out)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=out)
        return 2
    cache = AnalysisCache(Path(args.cache)) if args.cache else None
    findings = lint_paths(paths, rules, cache=cache)
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings)
        print(f"wrote {len(findings)} finding(s) to baseline "
              f"{args.write_baseline}", file=out)
        return 0
    stale_count = 0
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=out)
            return 2
        before = len(findings)
        findings, stale = apply_baseline(findings, baseline)
        stale_count = len(stale)
        for rule, path, message in stale:
            print(f"stale baseline entry: {path}: {rule} {message}",
                  file=out)
        suppressed = before - len(findings)
        if suppressed:
            print(f"{suppressed} baselined finding(s) "
                  f"suppressed; burn them down", file=out)
    if args.format == "json":
        _render_json(findings, out)
    elif args.format == "sarif":
        json.dump(to_sarif(findings, rules if rules is not None
                           else all_rules()), out, indent=2)
        out.write("\n")
    else:
        _render_text(findings, out)
    if args.stats and cache is not None:
        print(f"cache: {cache.stats.hits} hit(s), "
              f"{cache.stats.misses} miss(es), "
              f"{cache.stats.parses} parse(s)", file=out)
    return 1 if findings or stale_count else 0
