"""Command line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from ..errors import ConfigurationError
from .core import Finding
from .registry import all_rules, get_rule
from .runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Codebase-specific lint for the WL-Reviver reproduction.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                        help="run only the named rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    return parser


def _render_text(findings: List[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"{len(findings)} {noun}", file=stream)


def _render_json(findings: List[Finding], stream: TextIO) -> None:
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def main(argv: Optional[List[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    """Run the linter; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}", file=out)
            print(f"    guards against: {rule.rationale}", file=out)
        return 0
    try:
        rules = ([get_rule(name) for name in args.select.split(",")]
                 if args.select else None)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=out)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=out)
        return 2
    findings = lint_paths(paths, rules)
    if args.format == "json":
        _render_json(findings, out)
    else:
        _render_text(findings, out)
    return 1 if findings else 0
