"""Visitor core of the lint framework: findings, source files, rule base.

A :class:`Rule` owns one bug class.  It sees a fully parsed
:class:`SourceFile` and returns :class:`Finding` records; the runner applies
suppressions and path exemptions so rules stay purely syntactic.

:class:`ProjectRule` extends the contract for whole-program analyses: the
runner builds one :class:`~repro.analysis.project.ProjectModel` over every
file in the run and hands it to :meth:`ProjectRule.check_project` alongside
each source, so cross-module facts (batchable build/finish registration,
import edges) inform per-file findings.  Linting a lone file still works —
the fallback builds a single-file model.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from .suppressions import SuppressionIndex, scan_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectModel


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human-readable one-liner (1-based column, editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceFile:
    """A parsed module plus everything rules and the runner need."""

    def __init__(self, path: Path, text: str) -> None:
        self.path = path
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self.suppressions: SuppressionIndex = scan_suppressions(text)

    @property
    def posix(self) -> str:
        """Path with forward slashes, for pattern matching and output."""
        return self.path.as_posix()


class Rule:
    """Base class: one registered, self-describing lint rule.

    Subclasses set :attr:`id`, :attr:`summary`, optionally
    :attr:`exempt_patterns` (fnmatch patterns over the posix path naming the
    modules allowed to do what the rule bans), and implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    #: The shipped bug (or broken guarantee) this rule exists to prevent.
    rationale: str = ""
    exempt_patterns: Tuple[str, ...] = ()

    def applies_to(self, src: SourceFile) -> bool:
        """Whether *src* is subject to this rule (not an exempt module)."""
        return not any(fnmatch.fnmatch(src.posix, pattern)
                       for pattern in self.exempt_patterns)

    def check(self, src: SourceFile) -> List[Finding]:
        """Return every violation in *src* (suppressions handled later)."""
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        return Finding(rule=self.id, path=src.posix,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


class ProjectRule(Rule):
    """A rule whose findings depend on the whole-program model.

    Subclasses implement :meth:`check_project`; :meth:`check` stays valid
    for single-file use (fixtures, editor integration) by building a
    one-module project on the fly.
    """

    def check(self, src: SourceFile) -> List[Finding]:
        from .project import build_project
        return self.check_project(src, build_project([src]))

    def check_project(self, src: SourceFile,
                      project: Optional["ProjectModel"]) -> List[Finding]:
        """Return every violation in *src* given the project model."""
        raise NotImplementedError
