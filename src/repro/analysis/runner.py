"""File discovery and rule execution.

``lint_source`` is the single entry point tests and the CLI share: parse,
run every applicable rule, then apply suppressions.  Two framework-level
findings exist outside the rule registry: ``PARSE`` (a file that does not
parse cannot be certified clean) and ``ALLOW-REASON`` (a suppression comment
without a justification).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .core import Finding, Rule, SourceFile
from .registry import all_rules


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_source(text: str, path: Path,
                rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Lint one module's source; returns findings sorted by position."""
    selected = list(rules) if rules is not None else all_rules()
    try:
        src = SourceFile(path, text)
    except SyntaxError as exc:
        return [Finding(rule="PARSE", path=path.as_posix(),
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}")]
    findings: List[Finding] = []
    for rule in selected:
        if not rule.applies_to(src):
            continue
        findings.extend(
            finding for finding in rule.check(src)
            if not src.suppressions.is_suppressed(rule.id, finding.line))
    for line, col in src.suppressions.missing_reason:
        findings.append(Finding(
            rule="ALLOW-REASON", path=src.posix, line=line, col=col,
            message="suppression without a justification; write "
                    "`# repro: allow(RULE): why this is safe here`"))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Sequence[Path],
               rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Lint every python file under *paths*; findings sorted by location."""
    selected = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_source(path.read_text(encoding="utf-8"),
                                    path, selected))
    return findings
