"""File discovery and rule execution.

``lint_source`` is the single entry point tests and the CLI share: parse,
run every applicable rule, then apply suppressions.  Two framework-level
findings exist outside the rule registry: ``PARSE`` (a file that does not
parse cannot be certified clean) and ``ALLOW-REASON`` (a suppression comment
without a justification).

``lint_paths`` is the whole-program entry point: it parses every file
first, builds one :class:`~repro.analysis.project.ProjectModel` over the
parse-clean subset, and hands that model to every
:class:`~repro.analysis.core.ProjectRule` so cross-module facts inform
per-file findings.  An optional :class:`~repro.analysis.cache.AnalysisCache`
makes re-runs incremental: when no file changed and the ruleset is the
same, findings replay from the cache with zero re-parses.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .cache import AnalysisCache, ruleset_fingerprint, tree_digest
from .core import Finding, ProjectRule, Rule, SourceFile
from .project import ProjectModel, build_project
from .registry import all_rules


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of unique ``.py`` files.

    Overlapping inputs — a directory plus a file inside it, or the same
    path twice — must not lint (and report) a file twice, so entries are
    deduplicated by resolved path before the final sort.
    """
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    files.sort(key=lambda p: p.as_posix())
    return files


def _parse_finding(path: Path, exc: SyntaxError) -> Finding:
    # ``exc.offset`` is 1-based but tokenizer errors can report 0 (and the
    # attribute may be None); clamp so the rendered 1-based column never
    # underflows to ``:0``.
    return Finding(rule="PARSE", path=path.as_posix(),
                   line=exc.lineno or 1,
                   col=max(0, (exc.offset or 1) - 1),
                   message=f"file does not parse: {exc.msg}")


def _check_source(src: SourceFile, rules: Sequence[Rule],
                  project: Optional[ProjectModel]) -> List[Finding]:
    """Run every applicable rule on one parsed file, apply suppressions."""
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(src):
            continue
        if isinstance(rule, ProjectRule) and project is not None:
            raw = rule.check_project(src, project)
        else:
            raw = rule.check(src)
        findings.extend(
            finding for finding in raw
            if not src.suppressions.is_suppressed(rule.id, finding.line))
    for line, col in src.suppressions.missing_reason:
        findings.append(Finding(
            rule="ALLOW-REASON", path=src.posix, line=line, col=col,
            message="suppression without a justification; write "
                    "`# repro: allow(RULE): why this is safe here`"))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(text: str, path: Path,
                rules: Optional[Iterable[Rule]] = None,
                project: Optional[ProjectModel] = None) -> List[Finding]:
    """Lint one module's source; returns findings sorted by position."""
    selected = list(rules) if rules is not None else all_rules()
    try:
        src = SourceFile(path, text)
    except SyntaxError as exc:
        return [_parse_finding(path, exc)]
    return _check_source(src, selected, project)


def lint_paths(paths: Sequence[Path],
               rules: Optional[Iterable[Rule]] = None,
               cache: Optional[AnalysisCache] = None) -> List[Finding]:
    """Lint every python file under *paths*; findings sorted by location.

    All files are parsed before any rule runs so the project model sees
    the whole program.  With *cache*, an unchanged tree (same contents,
    same ruleset) replays stored findings without parsing anything; any
    change re-lints the full tree, because whole-program rules may move
    findings in files that did not themselves change.
    """
    selected = list(rules) if rules is not None else all_rules()
    files = iter_python_files(paths)
    contents: List[Tuple[Path, str]] = [
        (path, path.read_text(encoding="utf-8")) for path in files]
    if cache is not None:
        ruleset = ruleset_fingerprint(selected)
        digest = tree_digest(
            (path.as_posix(), text) for path, text in contents)
        cached = cache.lookup(ruleset, digest)
        if cached is not None:
            return cached
    findings: List[Finding] = []
    sources: List[SourceFile] = []
    for path, text in contents:
        try:
            sources.append(SourceFile(path, text))
        except SyntaxError as exc:
            findings.append(_parse_finding(path, exc))
    if cache is not None:
        cache.stats.parses += len(sources)
    project = build_project(sources)
    for src in sources:
        findings.extend(_check_source(src, selected, project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if cache is not None:
        cache.store(ruleset, digest, findings)
    return findings
