"""Codebase-specific static analysis for the WL-Reviver reproduction.

Every rule in :mod:`repro.analysis.rules` bans a bug class that actually
shipped (and was fixed in a past PR) or that silently breaks a guarantee the
package documents:

* **RAW-GEOM** — raw ``blocks_per_page`` address arithmetic outside the
  geometry owners (:mod:`repro.pcm.geometry`, :mod:`repro.osmodel.allocator`,
  :mod:`repro.units`).
* **RNG-DET** — module-level ``np.random.*`` / stdlib ``random`` instead of
  seeded :class:`numpy.random.Generator` streams from :mod:`repro.rng`.
* **LINK-MUT** — mutation of :class:`~repro.reviver.links.LinkTable` /
  :class:`~repro.reviver.registers.SparePool` internals from outside
  :mod:`repro.reviver`.
* **EXC-SWALLOW** — bare or over-broad ``except`` clauses that can eat
  :class:`~repro.errors.ProtocolError`.
* **FLOAT-EQ** — float equality comparisons in metrics and experiment code.
* **FAULT-HOOK** — fault-injection hook plumbing that bypasses
  :mod:`repro.faultinject`'s registration contract.
* **TELEM-API** — telemetry counter/span misuse outside the
  :mod:`repro.telemetry` facade.
* **SOA-ALIAS** — chained advanced-index stores and copy-semantics rebinds
  on values that must alias the batched kernel's struct-of-arrays rows
  (whole-program: ``register_batchable`` build/finish pairs are exempt).
* **SHM-LIFE** — ``SharedMemory`` handles that miss ``close()`` on some
  path or ``unlink()`` twice, tracked through try/finally.
* **DET-WALLCLOCK** — wall-clock and unseeded-random reads
  (``time.time``, ``datetime.now``, ``random.*``) outside the
  telemetry-exempt modules.
* **HOOK-NONE** — ``inject``/``telem`` hook parameters that do not default
  to ``None`` or are called without an ``is not None`` guard.

Run it with ``python -m repro.analysis src tools benchmarks examples``
(exit code 0 = clean, 1 = findings, 2 = usage error).  A finding is
silenced by a same-line ``# repro: allow(RULE-ID): justification``
comment, or file-wide with ``# repro: allow-file(RULE-ID): justification``.
Re-runs are incremental with ``--cache FILE``; known debt is held in a
``--baseline`` file; ``--format sarif`` emits SARIF 2.1.0 for CI.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import RULESET_VERSION, AnalysisCache, CacheStats
from .core import Finding, ProjectRule, Rule, SourceFile
from .project import ProjectModel, build_project
from .registry import all_rules, get_rule, rule_ids
from .runner import lint_paths, lint_source
from .sarif import to_sarif, validate_sarif

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "Finding",
    "ProjectModel",
    "ProjectRule",
    "RULESET_VERSION",
    "Rule",
    "SourceFile",
    "all_rules",
    "apply_baseline",
    "build_project",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_ids",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]
