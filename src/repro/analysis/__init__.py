"""Codebase-specific static analysis for the WL-Reviver reproduction.

Every rule in :mod:`repro.analysis.rules` bans a bug class that actually
shipped (and was fixed in a past PR) or that silently breaks a guarantee the
package documents:

* **RAW-GEOM** — raw ``blocks_per_page`` address arithmetic outside the
  geometry owners (:mod:`repro.pcm.geometry`, :mod:`repro.osmodel.allocator`,
  :mod:`repro.units`).
* **RNG-DET** — module-level ``np.random.*`` / stdlib ``random`` instead of
  seeded :class:`numpy.random.Generator` streams from :mod:`repro.rng`.
* **LINK-MUT** — mutation of :class:`~repro.reviver.links.LinkTable` /
  :class:`~repro.reviver.registers.SparePool` internals from outside
  :mod:`repro.reviver`.
* **EXC-SWALLOW** — bare or over-broad ``except`` clauses that can eat
  :class:`~repro.errors.ProtocolError`.
* **FLOAT-EQ** — float equality comparisons in metrics and experiment code.

Run it with ``python -m repro.analysis src`` (exit code 0 = clean, 1 =
findings, 2 = usage error).  A finding is silenced by a same-line
``# repro: allow(RULE-ID): justification`` comment, or file-wide with
``# repro: allow-file(RULE-ID): justification``.
"""

from __future__ import annotations

from .core import Finding, Rule, SourceFile
from .registry import all_rules, get_rule, rule_ids
from .runner import lint_paths, lint_source

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "rule_ids",
    "lint_paths",
    "lint_source",
]
