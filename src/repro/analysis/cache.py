"""Incremental-analysis cache: content-hashed, ruleset-versioned.

CI and pre-commit re-lint trees that usually have not changed since the
last run.  The cache keys a full run on two fingerprints:

* the **ruleset fingerprint** — the sorted rule ids plus
  :data:`RULESET_VERSION`, which every PR that changes rule *behavior*
  (not just adds a rule — id sets are part of the key already) must bump
  so stale findings can never replay against new semantics;
* the **tree digest** — a hash over every file's path and content hash.

A hit replays the stored findings with zero re-parses; the
:class:`CacheStats` counters make that property testable.  Any change —
one edited file, a different file set, a rule bump — misses and the whole
tree re-lints: the project-model rules can move findings into files that
did not themselves change, so per-file reuse would be unsound for them,
and parsing is the dominant cost either way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .core import Finding, Rule

#: Bump whenever any rule's behavior changes, so cached findings produced
#: by the old semantics cannot satisfy the new gate.
RULESET_VERSION = "2026.08.1"


def ruleset_fingerprint(rules: Sequence[Rule]) -> str:
    """Stable fingerprint of the active rule set."""
    payload = RULESET_VERSION + "|" + ",".join(
        sorted(rule.id for rule in rules))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def tree_digest(contents: Iterable[Tuple[str, str]]) -> str:
    """Hash of every (path, content) pair, order-independent."""
    rows = sorted(
        (path, hashlib.sha256(text.encode("utf-8")).hexdigest())
        for path, text in contents)
    joined = "\n".join(f"{path}\0{digest}" for path, digest in rows)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Observable effect of one run against the cache."""

    hits: int = 0
    misses: int = 0
    #: Files actually parsed this run (zero on a full cache hit).
    parses: int = 0


@dataclass
class AnalysisCache:
    """One cache file; load once, save after a miss re-populates it."""

    path: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._ruleset: Optional[str] = None
        self._tree: Optional[str] = None
        self._findings: List[Finding] = []
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
                self._ruleset = payload["ruleset"]
                self._tree = payload["tree"]
                self._findings = [
                    Finding(rule=row["rule"], path=row["path"],
                            line=row["line"], col=row["col"],
                            message=row["message"])
                    for row in payload["findings"]]
            except (ValueError, KeyError, TypeError, OSError):
                # A torn or stale cache file is a miss, never an error.
                self._ruleset = None
                self._tree = None
                self._findings = []

    def lookup(self, ruleset: str, tree: str) -> Optional[List[Finding]]:
        """Stored findings when both fingerprints match, else None."""
        if ruleset == self._ruleset and tree == self._tree:
            self.stats.hits += 1
            return list(self._findings)
        self.stats.misses += 1
        return None

    def store(self, ruleset: str, tree: str,
              findings: Sequence[Finding]) -> None:
        """Record a run's findings and persist them when a path is set."""
        self._ruleset = ruleset
        self._tree = tree
        self._findings = list(findings)
        if self.path is None:
            return
        payload = {
            "version": RULESET_VERSION,
            "ruleset": ruleset,
            "tree": tree,
            "findings": [finding.as_dict() for finding in findings],
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload, indent=1),
                                 encoding="utf-8")
        except OSError:
            pass  # an unwritable cache degrades to a cold one
