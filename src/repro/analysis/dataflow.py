"""Flow-sensitive forward dataflow over one function body.

The whole-program rules all ask path questions a syntactic walk cannot
answer: *is this hook call dominated by an ``is not None`` guard*, *does
every path from this ``SharedMemory`` reach ``close()``*, *does this name
still alias a batch row here*.  :class:`FunctionFlow` is the shared
engine: an abstract interpreter over a function's statement list that

* threads an environment (``name -> abstract value``) through straight-line
  code, joining at ``if``/loop/``try`` merge points;
* runs loops to a bounded fixpoint (two passes — the lattices here have
  no infinite ascending chains through a loop body);
* models ``try``/``except``/``finally`` the way the SHM lifecycle needs:
  the ``finally`` suite runs against the fall-through state *and* against
  every early exit and exceptional escape recorded inside the protected
  region, where the exceptional state of a body is the join of the
  environments *entering* each statement (a statement that raises never
  completed its own binding);
* refines environments on ``x is None`` / ``x is not None`` tests, through
  ``not`` and the conjuncts of ``and`` chains and ``assert`` statements.

Exceptions are modeled at statement granularity via explicit control flow
(``raise``, ``try`` escape edges); an arbitrary expression is not assumed
to raise.  Rules subclass and override the ``on_*`` transfer hooks.

The module also hosts the numpy **view-ness** abstract domain the
SOA-ALIAS rule interprets with: values are classified VIEW (may alias
memory the caller scans — ndarray parameters, basic subscripts of
attributes, ``ravel``/``reshape``/slices of views), FRESH (owns its
buffer — ``.copy()``, arithmetic, advanced indexing), MASK (a boolean
index built from a comparison), or UNKNOWN.
"""

from __future__ import annotations

import ast
import enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

Env = Dict[str, object]

#: Loop bodies are re-walked at most this many times; the domains used by
#: the rules stabilize after one re-walk (values only widen toward UNKNOWN).
_LOOP_PASSES = 2


def expr_key(expr: ast.expr) -> Optional[str]:
    """Dotted key of a Name/Attribute chain (``self.telem``), else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FunctionFlow:
    """Forward abstract interpretation engine; subclass per analysis."""

    def __init__(self) -> None:
        #: Environments entering each statement of every active ``try``
        #: region — the exceptional-escape states of those regions.
        self._try_collectors: List[List[Env]] = []

    # -------------------------------------------------------- lattice hooks

    def join_values(self, a: object, b: object) -> object:
        """Join two abstract values bound to the same name."""
        return a if a == b else None

    def join_missing(self, value: object) -> Optional[object]:
        """Join a value with "unbound": return None to drop the fact."""
        return None

    def join_env(self, a: Env, b: Env) -> Env:
        out: Env = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                joined = self.join_values(a[key], b[key])
                if joined is not None:
                    out[key] = joined
            else:
                kept = self.join_missing(a.get(key, b.get(key)))
                if kept is not None:
                    out[key] = kept
        return out

    def _join_all(self, envs: Sequence[Env]) -> Optional[Env]:
        live = list(envs)
        if not live:
            return None
        out = dict(live[0])
        for env in live[1:]:
            out = self.join_env(out, env)
        return out

    # ------------------------------------------------------- transfer hooks

    def on_expr(self, expr: ast.expr, env: Env, stmt: ast.stmt) -> None:
        """Called once per evaluated expression (pre-assignment)."""

    def on_assign(self, target: ast.expr, value: Optional[ast.expr],
                  env: Env, stmt: ast.stmt) -> None:
        """Transfer one binding; default kills tracked facts for the name."""
        key = expr_key(target)
        if key is not None:
            env.pop(key, None)

    def on_delete(self, target: ast.expr, env: Env, stmt: ast.stmt) -> None:
        key = expr_key(target)
        if key is not None:
            env.pop(key, None)

    def on_none_test(self, key: str, is_none: bool, env: Env,
                     test: ast.expr) -> None:
        """Refine *env* under a known-outcome ``key is [not] None`` test."""

    def on_exit(self, env: Env, stmt: Optional[ast.stmt], kind: str) -> None:
        """A path leaves the function (kind: return/raise/fallthrough)."""

    # ---------------------------------------------------------- entry point

    def run(self, node: ast.AST, initial: Optional[Env] = None) -> None:
        """Interpret one FunctionDef/AsyncFunctionDef body."""
        body = getattr(node, "body", [])
        env: Env = dict(initial) if initial else {}
        out = self._walk_body(list(body), env, loop_exits=None)
        if out is not None:
            self.on_exit(out, None, "fallthrough")

    # --------------------------------------------------------- statement walk

    def _walk_body(self, stmts: List[ast.stmt], env: Env,
                   loop_exits: Optional[Tuple[List[Env], List[Env]]]
                   ) -> Optional[Env]:
        """Walk a suite; returns the fall-through env or None (unreachable)."""
        current: Optional[Env] = env
        for stmt in stmts:
            if current is None:
                break
            for collector in self._try_collectors:
                collector.append(dict(current))
            current = self._walk_stmt(stmt, current, loop_exits)
        return current

    def _walk_stmt(self, stmt: ast.stmt, env: Env,
                   loop_exits: Optional[Tuple[List[Env], List[Env]]]
                   ) -> Optional[Env]:
        if isinstance(stmt, ast.Assign):
            self.on_expr(stmt.value, env, stmt)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, env, stmt)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.on_expr(stmt.value, env, stmt)
            self._assign_target(stmt.target, stmt.value, env, stmt)
            return env
        if isinstance(stmt, ast.AugAssign):
            self.on_expr(stmt.value, env, stmt)
            self.on_expr(stmt.target, env, stmt)
            # ``x += e`` is an in-place update, not a rebinding: tracked
            # facts about the target survive.
            return env
        if isinstance(stmt, ast.Expr):
            self.on_expr(stmt.value, env, stmt)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.on_expr(stmt.value, env, stmt)
            self.on_exit(env, stmt, "return")
            return None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.on_expr(stmt.exc, env, stmt)
            if not self._try_collectors:
                self.on_exit(env, stmt, "raise")
            return None
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, env, loop_exits)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._walk_loop(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, env, loop_exits)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.on_expr(item.context_expr, env, stmt)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars,
                                        item.context_expr, env, stmt)
            return self._walk_body(stmt.body, env, loop_exits)
        if isinstance(stmt, ast.Assert):
            self.on_expr(stmt.test, env, stmt)
            self._refine(stmt.test, env, positive=True)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.on_delete(target, env, stmt)
            return env
        if isinstance(stmt, ast.Break):
            if loop_exits is not None:
                loop_exits[0].append(dict(env))
            return None
        if isinstance(stmt, ast.Continue):
            if loop_exits is not None:
                loop_exits[1].append(dict(env))
            return None
        if isinstance(stmt, ast.Match):
            self.on_expr(stmt.subject, env, stmt)
            falls = []
            for case in stmt.cases:
                out = self._walk_body(case.body, dict(env), loop_exits)
                if out is not None:
                    falls.append(out)
            falls.append(env)  # no case may match
            joined = self._join_all(falls)
            return joined
        # Nested defs/classes, imports, global/nonlocal, pass: no effect on
        # this function's frame (nested bodies are analyzed on their own).
        return env

    def _assign_target(self, target: ast.expr, value: Optional[ast.expr],
                       env: Env, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) \
                    else element
                self._assign_target(inner, None, env, stmt)
            return
        self.on_assign(target, value, env, stmt)

    # ------------------------------------------------------------ branching

    def _walk_if(self, stmt: ast.If, env: Env,
                 loop_exits: Optional[Tuple[List[Env], List[Env]]]
                 ) -> Optional[Env]:
        self.on_expr(stmt.test, env, stmt)
        true_env = dict(env)
        false_env = dict(env)
        self._refine(stmt.test, true_env, positive=True)
        self._refine(stmt.test, false_env, positive=False)
        outs = []
        out = self._walk_body(stmt.body, true_env, loop_exits)
        if out is not None:
            outs.append(out)
        out = self._walk_body(stmt.orelse, false_env, loop_exits)
        if out is not None:
            outs.append(out)
        return self._join_all(outs)

    def _refine(self, test: ast.expr, env: Env, positive: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._refine(test.operand, env, not positive)
            return
        if isinstance(test, ast.BoolOp):
            # Only the branch where the whole chain's outcome pins every
            # operand's outcome can refine: a taken ``and`` means every
            # conjunct was true; a fallen-through ``or`` means all false.
            if (isinstance(test.op, ast.And) and positive) or \
                    (isinstance(test.op, ast.Or) and not positive):
                for operand in test.values:
                    self._refine(operand, env, positive)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None \
                and isinstance(test.ops[0], (ast.Is, ast.IsNot)):
            key = expr_key(test.left)
            if key is not None:
                is_none = isinstance(test.ops[0], ast.Is) == positive
                self.on_none_test(key, is_none, env, test)

    # ----------------------------------------------------------------- loops

    def _walk_loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
                   env: Env) -> Optional[Env]:
        test = stmt.test if isinstance(stmt, ast.While) else None
        if test is not None:
            self.on_expr(test, env, stmt)
        iterable = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
            else None
        if iterable is not None:
            self.on_expr(iterable, env, stmt)
        breaks: List[Env] = []
        current = dict(env)
        for _ in range(_LOOP_PASSES):
            body_env = dict(current)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._assign_target(stmt.target, None, body_env, stmt)
            continues: List[Env] = []
            out = self._walk_body(list(stmt.body), body_env,
                                  loop_exits=(breaks, continues))
            candidates = [current] + continues + ([out] if out is not None
                                                 else [])
            merged = self._join_all(candidates)
            assert merged is not None  # ``current`` is always a candidate
            if merged == current:
                break
            current = merged
        infinite = (test is not None and isinstance(test, ast.Constant)
                    and bool(test.value))
        after: List[Env] = [] if infinite else [current]
        after.extend(breaks)
        orelse = list(getattr(stmt, "orelse", []))
        if orelse and not infinite:
            out = self._walk_body(orelse, dict(current), loop_exits=None)
            if out is None:
                after = list(breaks)
            # else: the orelse effects fold into ``current`` conservatively
        return self._join_all(after)

    # ------------------------------------------------------------------- try

    def _walk_try(self, stmt: ast.Try, env: Env,
                  loop_exits: Optional[Tuple[List[Env], List[Env]]]
                  ) -> Optional[Env]:
        # Capture every exit taken inside the protected region so the
        # ``finally`` suite can be applied to it.
        pending_exits: List[Tuple[Env, Optional[ast.stmt], str]] = []
        real_on_exit = self.on_exit

        def capture_exit(exit_env: Env, exit_stmt: Optional[ast.stmt],
                         kind: str) -> None:
            pending_exits.append((dict(exit_env), exit_stmt, kind))

        collector: List[Env] = [dict(env)]
        self._try_collectors.append(collector)
        if stmt.finalbody:
            self.on_exit = capture_exit  # type: ignore[method-assign]
        try:
            body_out = self._walk_body(stmt.body, dict(env), loop_exits)
            escape = self._join_all(collector)
        finally:
            self._try_collectors.pop()
        handler_outs: List[Env] = []
        uncaught: Optional[Env] = escape
        for handler in stmt.handlers:
            handler_env = dict(escape) if escape is not None else {}
            if handler.name:
                env_copy = handler_env
                env_copy.pop(handler.name, None)
            out = self._walk_body(handler.body, handler_env, loop_exits)
            if out is not None:
                handler_outs.append(out)
            if handler.type is None or (
                    isinstance(handler.type, ast.Name)
                    and handler.type.id in ("Exception", "BaseException")):
                uncaught = None  # a catch-all handler stops propagation
        if stmt.orelse and body_out is not None:
            body_out = self._walk_body(stmt.orelse, body_out, loop_exits)
        falls = [e for e in [body_out] + handler_outs if e is not None]
        fall_through = self._join_all(falls)
        if stmt.finalbody:
            self.on_exit = real_on_exit  # type: ignore[method-assign]
            # Early exits re-run through finally, then leave the function.
            if pending_exits:
                joined = self._join_all([e for e, _, _ in pending_exits])
                assert joined is not None
                fin = self._walk_body(list(stmt.finalbody), joined,
                                      loop_exits=None)
                if fin is not None:
                    kinds = {kind for _, _, kind in pending_exits}
                    last = pending_exits[-1][1]
                    self.on_exit(fin, last,
                                 "raise" if kinds == {"raise"} else "return")
            # An uncaught exception also unwinds through finally.
            if uncaught is not None:
                fin = self._walk_body(list(stmt.finalbody), dict(uncaught),
                                      loop_exits=None)
                if fin is not None and not self._try_collectors:
                    self.on_exit(fin, stmt, "raise")
            if fall_through is None:
                return None
            return self._walk_body(list(stmt.finalbody), fall_through,
                                   loop_exits)
        if uncaught is not None and not self._try_collectors \
                and stmt.handlers:
            self.on_exit(uncaught, stmt, "raise")
        return fall_through


# ------------------------------------------------------- view-ness domain


class Viewness(enum.Enum):
    """Abstract aliasing class of a bound numpy value."""

    VIEW = "view"        # may alias caller-visible / batch-row memory
    FRESH = "fresh"      # owns its buffer; rebinding is harmless
    MASK = "mask"        # boolean/index array built from a comparison
    UNKNOWN = "unknown"


#: ndarray method calls that *propagate* view-ness from their receiver.
_VIEW_METHODS = frozenset({"ravel", "reshape", "view", "squeeze",
                           "swapaxes", "transpose"})
#: ndarray method calls that always return a fresh buffer.
_FRESH_METHODS = frozenset({"copy", "astype", "tolist", "sum", "cumsum",
                            "flatten", "nonzero", "argsort", "take"})

#: Parameter annotations naming an ndarray (the tree is mypy-strict, so
#: array parameters are reliably annotated).
NDARRAY_ANNOTATIONS = frozenset({
    "np.ndarray", "numpy.ndarray", "ndarray",
    "Optional[np.ndarray]", "Optional[numpy.ndarray]",
})


def is_basic_index(index: ast.expr, env: Env) -> bool:
    """Whether subscripting with *index* yields a numpy *view* (not a copy).

    Basic indexing — integers, slices, tuples of those — returns views;
    advanced indexing (arrays, masks, lists) copies.  Unknown names count
    as basic: loop indices and scalar locals dominate that population, and
    the rules built on this domain only act on definite facts.
    """
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Constant):
        return not isinstance(index.value, (list, tuple))
    if isinstance(index, ast.Tuple):
        return all(is_basic_index(element, env) for element in index.elts)
    if isinstance(index, ast.UnaryOp):
        return isinstance(index.op, ast.USub) \
            and is_basic_index(index.operand, env)
    if isinstance(index, (ast.List, ast.Compare, ast.BoolOp)):
        return False
    if isinstance(index, ast.Name):
        return env.get(index.id) not in (Viewness.MASK, Viewness.VIEW,
                                         Viewness.FRESH)
    if isinstance(index, ast.Call):
        return False
    if isinstance(index, (ast.Attribute, ast.BinOp)):
        # ``x[self.gap]`` / ``x[i + 1]``: scalar arithmetic, assume basic.
        return True
    return False


def viewness_of(value: ast.expr, env: Env) -> Viewness:
    """Classify the aliasing behavior of evaluating *value* under *env*."""
    if isinstance(value, ast.Name):
        bound = env.get(value.id)
        return bound if isinstance(bound, Viewness) else Viewness.UNKNOWN
    if isinstance(value, ast.Subscript):
        base = viewness_of(value.value, env)
        if isinstance(value.value, ast.Attribute):
            base = Viewness.VIEW  # ``self.wear[i]``: a row of owned state
        if base in (Viewness.VIEW, Viewness.UNKNOWN):
            if not is_basic_index(value.slice, env):
                return Viewness.FRESH  # advanced indexing copies
            return base
        return base
    if isinstance(value, ast.Attribute):
        return Viewness.UNKNOWN
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute):
            if func.attr in _VIEW_METHODS:
                return viewness_of(func.value, env)
            if func.attr in _FRESH_METHODS:
                return Viewness.FRESH
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ("np", "numpy"):
                if func.attr in ("nonzero", "where", "flatnonzero"):
                    return Viewness.MASK
                return Viewness.FRESH  # np.zeros/np.add/... own their output
        return Viewness.UNKNOWN
    if isinstance(value, ast.Compare):
        return Viewness.MASK
    if isinstance(value, ast.BinOp):
        return Viewness.FRESH  # arithmetic allocates a result array
    if isinstance(value, ast.UnaryOp):
        inner = viewness_of(value.operand, env)
        if isinstance(value.op, (ast.Invert, ast.Not)) \
                and inner is Viewness.MASK:
            return Viewness.MASK
        return Viewness.FRESH if inner is not Viewness.UNKNOWN \
            else Viewness.UNKNOWN
    if isinstance(value, (ast.List, ast.ListComp, ast.Dict, ast.Set)):
        return Viewness.FRESH
    return Viewness.UNKNOWN


class ViewnessFlow(FunctionFlow):
    """Reaching view-ness of every local; base for SOA-ALIAS."""

    def __init__(self, ndarray_params: Sequence[str] = ()) -> None:
        super().__init__()
        self.ndarray_params = set(ndarray_params)

    def initial_env(self) -> Env:
        return {name: Viewness.VIEW for name in self.ndarray_params}

    def join_values(self, a: object, b: object) -> object:
        if a == b:
            return a
        values = {a, b}
        if Viewness.VIEW in values:
            return Viewness.VIEW  # may-alias wins: stay conservative
        return Viewness.UNKNOWN

    def on_assign(self, target: ast.expr, value: Optional[ast.expr],
                  env: Env, stmt: ast.stmt) -> None:
        if not isinstance(target, ast.Name):
            return  # attribute/subscript stores do not rebind locals
        if value is None:
            env[target.id] = Viewness.UNKNOWN
            return
        env[target.id] = viewness_of(value, env)
