"""Rule modules; importing this package registers every rule.

Each module owns one rule and its fixtures live in
``tests/test_analysis_rules.py``: a rule only exists here because the bug
class it bans either shipped in a past PR or breaks a documented guarantee.
"""

from __future__ import annotations

from . import (det_wallclock, exc_swallow, fault_hook, float_eq, hook_none,
               link_mut, raw_geom, rng_det, shm_life, soa_alias, telem_api)

__all__ = ["det_wallclock", "exc_swallow", "fault_hook", "float_eq",
           "hook_none", "link_mut", "raw_geom", "rng_det", "shm_life",
           "soa_alias", "telem_api"]
