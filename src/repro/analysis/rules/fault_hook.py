"""FAULT-HOOK: touching fault-injection hooks outside repro.faultinject.

The chip, the controllers, and both engines carry an ``inject`` attribute
that is ``None`` by default; when set, the hardware is *allowed to lie* —
reads raise transient errors, the controller crashes at protocol sites,
thresholds are clamped.  The disabled-hook guarantee (zero behavioral and
performance impact) and the reproducibility of chaos campaigns both rest
on one rule: only :mod:`repro.faultinject` may attach, detach, or call
those hooks.  A stray ``engine.inject = ...`` in an experiment or a
convenience ``chip.inject.on_read(...)`` in a test helper silently turns
a deterministic simulation into an injected one.

The array layer (:mod:`repro.array`) is deliberately *not* exempt: shard
cells receive per-shard schedules projected by
:func:`repro.faultinject.for_shard` and wire them with
``ScheduleDriver.attach_fast`` like everyone else — N devices are N
times the temptation to poke a hook directly.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: Attribute naming the injection hooks on chip/controller/engines.
HOOK_ATTR = "inject"


@register
class FaultHookRule(Rule):
    """Ban foreign access to the ``inject`` fault-injection hooks."""

    id = "FAULT-HOOK"
    summary = ("access to fault-injection `inject` hooks from outside "
               "repro.faultinject")
    rationale = ("the disabled-hook guarantee (hooks are None, zero cost, "
                 "deterministic behavior) only holds if attaching and "
                 "driving hooks is confined to the faultinject package")
    exempt_patterns: Tuple[str, ...] = ("*/repro/faultinject/*",)

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr == HOOK_ATTR
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id in ("self", "cls"))):
                findings.append(self.finding(
                    src, node,
                    f"foreign access to fault-injection hook `{node.attr}`; "
                    f"attach schedules through "
                    f"repro.faultinject.ScheduleDriver instead"))
        return findings
