"""LINK-MUT: reaching into LinkTable/SparePool internals from outside.

Theorems 1-3 (WL-Reviver §IV) hold because every link-table and spare-pool
mutation flows through :class:`~repro.reviver.links.LinkTable` /
:class:`~repro.reviver.registers.SparePool` methods, which keep both pointer
directions, the FIFO register semantics, and the pending metadata-write
records in sync.  Touching ``_pointer`` / ``_inverse`` / ``_spares`` from
another module bypasses all three, producing exactly the silent
accounting-divergence bugs PR 1 had to fix — so outside :mod:`repro.reviver`
(and a class's own ``self``), those attributes are off limits.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: Private attributes owned by the reviver protocol structures.
PROTECTED_ATTRS = frozenset({"_pointer", "_inverse", "_spares"})


@register
class LinkMutationRule(Rule):
    """Ban foreign access to reviver protocol-structure internals."""

    id = "LINK-MUT"
    summary = ("access to LinkTable/SparePool internals (_pointer, _inverse, "
               "_spares) from outside repro.reviver")
    rationale = ("mutating one link direction without the other (or a spare "
                 "without its register accounting) silently violates "
                 "Theorems 1-3; only the reviver package may do it")
    exempt_patterns: Tuple[str, ...] = ("*/repro/reviver/*",)

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in PROTECTED_ATTRS
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id in ("self", "cls"))):
                findings.append(self.finding(
                    src, node,
                    f"foreign access to protocol internal `{node.attr}`; "
                    f"use the LinkTable/SparePool API so both directions "
                    f"and the metadata accounting stay in sync"))
        return findings
