"""SOA-ALIAS: writes that silently de-alias struct-of-arrays row views.

The batched kernel's byte-identical guarantee rests on one invariant: the
``(N, num_blocks)`` batch arrays and each engine's own attributes are the
*same memory*.  ``_rehome`` replaces ``chip.wear`` with ``self.wear[i]``
so every later element-wise mutation lands in the array the kernel scans.
Two write shapes break that invariant without raising anything:

* **chained advanced-index stores** — ``arr[mask][i] = v``: advanced
  indexing (a boolean mask, an index array, a list) returns a *copy*, so
  the store mutates a temporary and vanishes.  numpy does not warn.
* **copy-semantics rebinds** — ``row = row + 1`` where ``row`` is a view
  (an ndarray parameter, ``self.wear[i]``, a slice/``ravel`` of either):
  the arithmetic allocates a fresh buffer and the name silently stops
  aliasing.  The rebind is only a bug when the function then *writes
  elements through the rebound name* expecting the alias — pure
  compute-and-return rebinds stay legal — so the flag requires a later
  subscript store on the same name.

View-ness is tracked flow-sensitively by the
:class:`~repro.analysis.dataflow.ViewnessFlow` domain: parameter and
row-view origins propagate through slices and ``ravel``; ``.copy()``,
``np.*`` constructors, arithmetic and advanced indexing all produce FRESH
values whose rebinds are unconstrained.

Registered batchable ``build``/``finish`` pairs are exempt via the
project model: a builder's arrays are not yet batch rows and a finisher
runs after the kernel released them, mirroring
:func:`repro.sim.batched.register_batchable`'s contract.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from ..core import Finding, ProjectRule, SourceFile
from ..dataflow import (Env, NDARRAY_ANNOTATIONS, Viewness, ViewnessFlow,
                        is_basic_index, viewness_of)
from ..project import ProjectModel, module_name_for
from ..registry import register


def _subscript_store_lines(node: ast.AST) -> Dict[str, List[int]]:
    """Lines where each bare name is the base of a subscript store."""
    lines: Dict[str, List[int]] = {}
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    lines.setdefault(target.value.id, []).append(
                        target.lineno)
    return lines


class _AliasFlow(ViewnessFlow):
    """Viewness pass that records de-aliasing rebinds of live views."""

    def __init__(self, ndarray_params: Tuple[str, ...],
                 store_lines: Dict[str, List[int]]) -> None:
        super().__init__(ndarray_params)
        self.store_lines = store_lines
        self.rebinds: List[Tuple[ast.stmt, str]] = []
        self._seen: Set[Tuple[int, int]] = set()

    def on_assign(self, target: ast.expr, value: Optional[ast.expr],
                  env: Env, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name) and value is not None:
            name = target.id
            was_view = env.get(name) is Viewness.VIEW
            self_referential = any(
                isinstance(leaf, ast.Name) and leaf.id == name
                for leaf in ast.walk(value))
            becomes = viewness_of(value, env)
            if (was_view and self_referential
                    and becomes is Viewness.FRESH
                    and not self._is_sanctioned_copy(value)
                    and self._written_after(name, stmt.lineno)):
                anchor = (stmt.lineno, stmt.col_offset)
                if anchor not in self._seen:
                    self._seen.add(anchor)
                    self.rebinds.append((stmt, name))
        super().on_assign(target, value, env, stmt)

    def _written_after(self, name: str, lineno: int) -> bool:
        return any(line > lineno for line in self.store_lines.get(name, []))

    @staticmethod
    def _is_sanctioned_copy(value: ast.expr) -> bool:
        """``x = x.copy()`` (possibly wrapped) is the documented opt-out."""
        for leaf in ast.walk(value):
            if isinstance(leaf, ast.Call) \
                    and isinstance(leaf.func, ast.Attribute) \
                    and leaf.func.attr == "copy":
                return True
        return False


@register
class SoaAliasRule(ProjectRule):
    """Ban copy-semantics writes on values that must alias batch rows."""

    id = "SOA-ALIAS"
    summary = ("chained advanced-index store or copy-semantics rebind on "
               "a value that must alias a batch row view")
    rationale = ("the batched kernel's byte-identical equivalence holds "
                 "only while every mutation path aliases into the "
                 "(N, num_blocks) arrays; one `x = x + 1` rebind or "
                 "`arr[mask][i] = v` chained store mutates a silent copy "
                 "and the divergence surfaces epochs later as wear drift")

    def check_project(self, src: SourceFile,
                      project: Optional[ProjectModel]) -> List[Finding]:
        exempt: Set[str] = set()
        if project is not None:
            module = module_name_for(src.path)
            exempt = {fn for mod, fn in project.batchable_pairs()
                      if mod == module}
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(self._check_chained_stores(src, node))
            if node.name in exempt:
                continue
            findings.extend(self._check_rebinds(src, node))
        return findings

    # -------------------------------------------------- chained stores

    def _check_chained_stores(
            self, src: SourceFile,
            func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> List[Finding]:
        """``base[advanced][...] = v`` stores into a temporary copy."""
        findings: List[Finding] = []
        # Flow-insensitive mask facts are enough for index classification.
        final_env = self._final_env(func)
        for child in ast.walk(func):
            if not isinstance(child, (ast.Assign, ast.AugAssign)):
                continue
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            for target in targets:
                if not (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Subscript)):
                    continue
                inner = target.value
                if not is_basic_index(inner.slice, final_env):
                    findings.append(self.finding(
                        src, target,
                        "store through a chained advanced index mutates "
                        "a temporary copy, not the row; index once "
                        "(`arr[mask, i] = v`) or use np.add.at"))
        return findings

    @staticmethod
    def _final_env(func: ast.AST) -> Env:
        """Flow-insensitive mask facts: the join of every binding's class.

        A name is treated as a mask/array index if *any* reaching
        definition makes it one — the conservative direction for a rule
        that must not miss ``mask = wear > limit; arr[mask][i] = v``.
        """
        env: Env = {}
        for child in ast.walk(func):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        kind = viewness_of(child.value, env)
                        if kind in (Viewness.MASK, Viewness.FRESH,
                                    Viewness.VIEW):
                            env[target.id] = kind
        return env

    # --------------------------------------------------------- rebinds

    def _check_rebinds(
            self, src: SourceFile,
            func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> List[Finding]:
        params = tuple(
            arg.arg
            for arg in (func.args.posonlyargs + func.args.args
                        + func.args.kwonlyargs)
            if arg.annotation is not None
            and _annotation_names_ndarray(arg.annotation))
        flow = _AliasFlow(params, _subscript_store_lines(func))
        flow.run(func, flow.initial_env())
        return [self.finding(
            src, stmt,
            f"`{name} = ...` rebinds a row view to a fresh buffer and a "
            f"later `{name}[...] = ...` writes into the copy; mutate "
            f"in place (`{name} op= ...`) or take an explicit .copy()")
            for stmt, name in flow.rebinds]


def _annotation_names_ndarray(annotation: ast.expr) -> bool:
    try:
        rendered = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - malformed annotation
        return False
    rendered = rendered.replace('"', "").replace("'", "")
    return rendered in NDARRAY_ANNOTATIONS
