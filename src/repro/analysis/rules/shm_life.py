"""SHM-LIFE: SharedMemory segments must close on every path, unlink once.

The grid runner's result transport (:mod:`repro.experiments.shm`) parks
cell payloads in ``multiprocessing.shared_memory`` segments: the worker
creates and fills one, the parent attaches, reads and unlinks it.  The
failure modes are silent and asymmetric — a path that skips ``close()``
leaks the mapping (and trips the resource tracker's exit warning under
bpo-39959), while a path that reaches ``unlink()`` twice raises — or, on
the bug class this rule exists for, destroys a segment a *second* handle
still expects to read.  Those are path properties, invisible to syntactic
rules: the shipped transport closes in ``finally`` so the exceptional
path cleans up too.

Per local segment handle (``seg = SharedMemory(...)`` create or attach),
the flow pass tracks OPEN -> CLOSED/UNLINKED and flags:

* a function exit — return, raise, fall-through, an exceptional escape
  unwound through ``finally`` — where the handle may still be OPEN;
* a second ``unlink()`` reachable on the same path;
* rebinding the only name holding an OPEN segment.

A handle that escapes the function (returned, stored on an object,
passed whole to another call) transfers ownership and leaves the
analysis; inter-procedural lifetimes like pack/unpack are each checked on
their own side of the pipe.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core import Finding, Rule, SourceFile
from ..dataflow import Env, FunctionFlow
from ..registry import register

#: Per-path states of one tracked segment handle.
_OPEN = "open"
_CLOSED = "closed"
_UNLINKED = "unlinked"
#: Ownership left this function; stop tracking.
_ESCAPED = "escaped"

States = FrozenSet[str]


def _is_shm_constructor(call: ast.Call) -> bool:
    """Whether *call* creates or attaches a SharedMemory segment."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


class _ShmFlow(FunctionFlow):
    """Track segment handles through one function body."""

    def __init__(self) -> None:
        super().__init__()
        #: name -> constructor node (for anchoring leak findings).
        self.origins: Dict[str, ast.Call] = {}
        self.leaks: List[Tuple[ast.AST, str]] = []
        self.double_unlinks: List[ast.AST] = []
        self.drops: List[Tuple[ast.AST, str]] = []
        self._seen: Set[Tuple[int, int, str]] = set()

    # ------------------------------------------------------------- lattice

    def join_values(self, a: object, b: object) -> object:
        if isinstance(a, frozenset) and isinstance(b, frozenset):
            return a | b
        return a if a == b else None

    def join_missing(self, value: object) -> Optional[object]:
        # A handle bound on only one branch keeps its states; the other
        # branch simply contributes no obligation.
        return value if isinstance(value, frozenset) else None

    # ------------------------------------------------------------ transfer

    def _record(self, bucket: List, node: ast.AST, name: str,
                kind: str) -> None:
        anchor = (getattr(node, "lineno", 0),
                  getattr(node, "col_offset", 0), kind)
        if anchor not in self._seen:
            self._seen.add(anchor)
            bucket.append((node, name) if bucket is not self.double_unlinks
                          else node)

    def on_assign(self, target: ast.expr, value: Optional[ast.expr],
                  env: Env, stmt: ast.stmt) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        states = env.get(name)
        if isinstance(states, frozenset) and _OPEN in states:
            is_self = isinstance(value, ast.Call) \
                and _is_shm_constructor(value)
            self._record(self.drops, stmt, name,
                         "drop" if not is_self else "redrop")
        if isinstance(value, ast.Call) and _is_shm_constructor(value):
            env[name] = frozenset({_OPEN})
            self.origins[name] = value
        else:
            env.pop(name, None)

    def on_expr(self, expr: ast.expr, env: Env, stmt: ast.stmt) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in env:
                name = func.value.id
                states = env[name]
                if not isinstance(states, frozenset):
                    continue
                if func.attr == "close":
                    env[name] = frozenset(
                        {_UNLINKED if s == _UNLINKED else _CLOSED
                         for s in states})
                elif func.attr == "unlink":
                    if _UNLINKED in states:
                        self._record(self.double_unlinks, node, name,
                                     "double")
                    env[name] = frozenset(
                        {_ESCAPED if s == _ESCAPED else _UNLINKED
                         for s in states})
                continue
            # A bare handle passed whole to any call transfers ownership.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in env \
                        and isinstance(env[arg.id], frozenset):
                    env[arg.id] = frozenset({_ESCAPED})
        # Returning/yielding the handle also transfers ownership.
        if isinstance(expr, ast.Name) and expr.id in env \
                and isinstance(env[expr.id], frozenset):
            return
        for node in ast.walk(expr):
            if isinstance(node, (ast.Tuple, ast.List, ast.Dict)):
                for leaf in ast.walk(node):
                    if isinstance(leaf, ast.Name) and leaf.id in env \
                            and isinstance(env[leaf.id], frozenset):
                        env[leaf.id] = frozenset({_ESCAPED})

    def on_exit(self, env: Env, stmt: Optional[ast.stmt],
                kind: str) -> None:
        for name, states in env.items():
            if isinstance(states, frozenset) and _OPEN in states:
                anchor: ast.AST = stmt if stmt is not None \
                    else self.origins.get(name, ast.Pass())
                self._record(self.leaks, anchor, name, f"leak-{name}")


def _handle_names(expr: ast.expr) -> Set[str]:
    """Names handed over *as handles*: bare, or inside plain containers.

    ``return segment`` and ``return (tag, segment)`` transfer the handle;
    ``return bytes(segment.buf[:n])`` returns a derived value and the
    close obligation stays here — so this deliberately does not recurse
    through calls, attributes or subscripts.
    """
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        names: Set[str] = set()
        for elt in expr.elts:
            names |= _handle_names(elt)
        return names
    if isinstance(expr, ast.Dict):
        names = set()
        for value in expr.values:
            if value is not None:
                names |= _handle_names(value)
        return names
    if isinstance(expr, ast.Starred):
        return _handle_names(expr.value)
    return set()


class _ExitOwnershipScan(ast.NodeVisitor):
    """Pre-pass: names whose handles are returned/stored escape entirely.

    ``return segment`` or ``self.segment = segment`` anywhere in the body
    means this function is a constructor/holder, not the owner of the
    close obligation — skip tracking that name for the whole function
    rather than reason about partial ownership.
    """

    def __init__(self) -> None:
        self.escaping: Set[str] = set()

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.escaping |= _handle_names(node.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self.escaping |= _handle_names(node.value)
        self.generic_visit(node)


@register
class ShmLifecycleRule(Rule):
    """SharedMemory handles: close on all paths, never unlink twice."""

    id = "SHM-LIFE"
    summary = ("SharedMemory handle that can exit without close() or "
               "reach unlink() twice")
    rationale = ("a segment that misses close() leaks the mapping and "
                 "trips the resource tracker at exit (bpo-39959); a "
                 "double unlink destroys a segment the other side of the "
                 "pipe still expects to read")

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scan = _ExitOwnershipScan()
            for stmt in node.body:
                scan.visit(stmt)
            flow = _ShmFlow()
            flow.run(node)
            for anchor, name in flow.leaks:
                if name in scan.escaping:
                    continue
                findings.append(self.finding(
                    src, anchor,
                    f"segment `{name}` may reach this exit without "
                    f"close(); close in a finally block"))
            for anchor in flow.double_unlinks:
                findings.append(self.finding(
                    src, anchor,
                    "segment can be unlink()ed twice on this path; "
                    "unlink exactly once per handle"))
            for anchor, name in flow.drops:
                if name in scan.escaping:
                    continue
                findings.append(self.finding(
                    src, anchor,
                    f"rebinding `{name}` drops the only handle to an "
                    f"open segment; close it first"))
        return findings
