"""DET-WALLCLOCK: wall-clock and ambient-entropy reads in simulation code.

The repository's reproducibility contract is byte-level: the golden-trace
regression, the batched kernel's equivalence matrix and the ``--check``
differential campaigns all compare canonical JSON payloads across runs and
process counts.  One ``time.time()`` folded into a result — or a
``datetime.now()`` timestamp in a report, or a module-level ``random.*``
draw — makes two correct runs differ and turns every byte-diff oracle
into noise.  Until now the only thing catching such a leak was the golden
trace test, *after* the fact and only on the instrumented paths.

Telemetry owns wall-clock measurement by design (its profile counters are
stripped before payloads are compared), so :mod:`repro.telemetry` is
exempt, as are the benchmark harnesses whose entire job is timing.
Everything else must either avoid the clock or carry a justified
``# repro: allow(DET-WALLCLOCK)`` explaining why the read cannot reach a
compared payload.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: ``time.<attr>`` reads of the ambient clock.
CLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock",
    "localtime", "gmtime", "ctime", "asctime", "strftime",
})

#: ``datetime.<attr>`` / ``date.<attr>`` constructors reading the clock.
DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: ``random.<attr>`` exemptions: seedable constructors and types (stdlib
#: ``random.Random``, numpy's ``np.random.default_rng``/``Generator``/
#: ``SeedSequence``/bit generators) are explicit streams — RNG-DET's
#: concern — not ambient entropy.
RANDOM_ALLOWED = frozenset({
    "Random", "SeedSequence", "Generator", "default_rng",
    "BitGenerator", "PCG64", "Philox", "MT19937", "SFC64",
})

_DATETIME_OWNERS = frozenset({"datetime", "date"})


def _owner_name(node: ast.Attribute) -> str:
    """Identifier the attribute hangs off (``time`` in ``time.time``)."""
    value = node.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        # ``datetime.datetime.now`` / ``dt.datetime.now``: the inner
        # attribute name decides.
        return value.attr
    return ""


@register
class WallClockRule(Rule):
    """Ban ambient clock/entropy reads outside telemetry and benchmarks."""

    id = "DET-WALLCLOCK"
    summary = ("time.time/perf_counter, datetime.now or module-level "
               "random.* outside the telemetry-exempt modules")
    rationale = ("one wall-clock or ambient-entropy read folded into a "
                 "result payload breaks every byte-identical oracle "
                 "(golden trace, batched --check, campaign resume diffs); "
                 "only telemetry may measure time, and it strips those "
                 "counters before payloads are compared")
    exempt_patterns: Tuple[str, ...] = (
        "*/repro/telemetry/*",
        "benchmarks/*", "*/benchmarks/*",
    )

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute):
                owner = _owner_name(node)
                if owner == "time" and node.attr in CLOCK_ATTRS:
                    findings.append(self.finding(
                        src, node,
                        f"time.{node.attr} reads the ambient clock; route "
                        f"timing through repro.telemetry (timed_call / "
                        f"PhaseTimer) or justify with an allow comment"))
                elif owner in _DATETIME_OWNERS \
                        and node.attr in DATETIME_ATTRS:
                    findings.append(self.finding(
                        src, node,
                        f"{owner}.{node.attr}() stamps wall-clock time "
                        f"into the run; derive timestamps outside the "
                        f"deterministic core or pass them in explicitly"))
                elif owner == "random" and node.attr not in RANDOM_ALLOWED:
                    findings.append(self.finding(
                        src, node,
                        f"random.{node.attr} draws from ambient global "
                        f"state; thread a Generator from "
                        f"repro.rng.derive_rng"))
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in CLOCK_ATTRS:
                            findings.append(self.finding(
                                src, node,
                                f"importing {alias.name} from time pulls "
                                f"the ambient clock into scope; route "
                                f"timing through repro.telemetry"))
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in _DATETIME_OWNERS:
                            findings.append(self.finding(
                                src, node,
                                "importing datetime invites wall-clock "
                                "stamps; derive timestamps outside the "
                                "deterministic core"))
        return findings
