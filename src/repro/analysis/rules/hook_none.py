"""HOOK-NONE: hook parameters default to None and are guarded before use.

The ``inject`` (fault-injection) and ``telem`` (telemetry) hooks share one
discipline that two guarantees rest on: a hook attribute or parameter is
``None`` by default — so an uninstrumented system is byte-identical to one
that never heard of hooks — and every *use* (calling through the hook,
entering one of its context managers) sits under an ``is not None`` guard.
FAULT-HOOK and TELEM-API confine who may *touch* the hooks; this rule
checks the two local obligations every toucher still carries:

* a function parameter named ``inject``/``telem`` must carry a literal
  ``None`` default (a required hook parameter forces every caller to be
  instrumented, inverting the opt-in design);
* a call through a hook expression (``self.telem.emit(...)``,
  ``telem.count(...)``, ``engine.inject.poll(...)``) must be dominated by
  a ``<hook> is not None`` test on the same dotted path, including guards
  via early return (``if self.telem is None: ... return``), ``and``
  conjuncts, and locals bound from an already-guarded hook
  (``telem = self.telem``).

The guard analysis is the flow-sensitive pass from
:mod:`repro.analysis.dataflow`; facts survive across unrelated calls —
reattaching a hook mid-function would be a FAULT-HOOK/TELEM-API violation
anyway.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple, Union

from ..core import Finding, Rule, SourceFile
from ..dataflow import Env, FunctionFlow, expr_key
from ..registry import register

#: Attribute/parameter names carrying optional protocol hooks.
HOOK_NAMES = frozenset({"inject", "telem"})

#: Guard states tracked per dotted hook path.
_NONNULL = "nonnull"
_NULL = "null"


def _hook_path(expr: ast.expr) -> Optional[str]:
    """Dotted key of *expr* when its final segment is a hook name."""
    key = expr_key(expr)
    if key is None:
        return None
    return key if key.split(".")[-1] in HOOK_NAMES else None


class _GuardFlow(FunctionFlow):
    """Track which hook paths are proven non-None; flag unguarded calls."""

    def __init__(self, hook_locals: Set[str]) -> None:
        super().__init__()
        #: Bare names known to hold a hook value (parameters named like
        #: hooks, locals assigned from a hook path).
        self.hook_locals = set(hook_locals)
        self.violations: List[ast.expr] = []
        self._flagged: Set[Tuple[int, int]] = set()

    def join_values(self, a: object, b: object) -> object:
        return a if a == b else None

    def on_none_test(self, key: str, is_none: bool, env: Env,
                     test: ast.expr) -> None:
        env[key] = _NULL if is_none else _NONNULL

    def on_assign(self, target: ast.expr, value: Optional[ast.expr],
                  env: Env, stmt: ast.stmt) -> None:
        key = expr_key(target)
        if key is None:
            return
        if value is None:
            env.pop(key, None)
            return
        source = expr_key(value)
        if source is not None and source in env:
            # ``telem = self.telem`` inherits the guard state, and the
            # local becomes a hook alias worth tracking.
            env[key] = env[source]
            if source in self.hook_locals \
                    or (_hook_path(value) is not None):
                self.hook_locals.add(key)
            return
        if _hook_path(value) is not None and isinstance(target, ast.Name):
            self.hook_locals.add(target.id)
        if isinstance(value, ast.Constant) and value.value is None:
            env[key] = _NULL
        else:
            env.pop(key, None)

    def on_expr(self, expr: ast.expr, env: Env, stmt: ast.stmt) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            path = _hook_path(receiver)
            if path is None:
                if isinstance(receiver, ast.Name) \
                        and receiver.id in self.hook_locals:
                    path = receiver.id
                else:
                    continue
            if env.get(path) != _NONNULL:
                anchor = (getattr(node, "lineno", 0),
                          getattr(node, "col_offset", 0))
                if anchor not in self._flagged:
                    self._flagged.add(anchor)
                    self.violations.append(node)


@register
class HookNoneRule(Rule):
    """Hooks: None defaults, guarded use."""

    id = "HOOK-NONE"
    summary = ("inject/telem hook without a None default or used without "
               "an `is not None` guard")
    rationale = ("the disabled-hook guarantee (an uninstrumented run is "
                 "byte-identical and pays one attribute test) requires "
                 "every hook to default to None and every use to be "
                 "dominated by an is-not-None guard; one unguarded call "
                 "crashes exactly the runs that are not instrumented")
    exempt_patterns: Tuple[str, ...] = (
        "*/repro/telemetry/*",
        "*/repro/faultinject/*",
    )

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(self._check_defaults(src, node))
            findings.extend(self._check_guards(src, node))
        return findings

    def _check_defaults(
            self, src: SourceFile,
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> List[Finding]:
        findings: List[Finding] = []
        args = node.args
        positional = args.posonlyargs + args.args
        defaults: List[Optional[ast.expr]] = [None] * (
            len(positional) - len(args.defaults)) + list(args.defaults)
        rows = list(zip(positional, defaults)) \
            + list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in rows:
            if arg.arg not in HOOK_NAMES:
                continue
            if not (isinstance(default, ast.Constant)
                    and default.value is None):
                findings.append(self.finding(
                    src, arg,
                    f"hook parameter `{arg.arg}` must default to None so "
                    f"uninstrumented callers stay uninstrumented"))
        return findings

    def _check_guards(
            self, src: SourceFile,
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> List[Finding]:
        args = node.args
        hook_params = {arg.arg
                       for arg in args.posonlyargs + args.args
                       + args.kwonlyargs
                       if arg.arg in HOOK_NAMES}
        flow = _GuardFlow(hook_params)
        # The engine skips nested def statements, so each function body is
        # analyzed exactly once (the outer walk visits nested defs itself).
        flow.run(node)
        return [self.finding(
            src, call,
            "hook used without an `is not None` guard on this path; "
            "uninstrumented runs hold None here")
            for call in flow.violations]
