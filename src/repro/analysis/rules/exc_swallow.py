"""EXC-SWALLOW: except clauses broad enough to eat ProtocolError.

:class:`~repro.errors.ProtocolError` means a framework invariant broke —
the one exception that must *never* be absorbed, because a swallowed
violation turns into silent wear-accounting divergence many epochs later.
A bare ``except:``, or a handler for ``Exception`` / ``BaseException`` /
``ReproError`` that does not re-raise, can absorb it; narrower handlers
(``WriteFault``, ``CapacityExhaustedError``, ...) cannot and stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: Exception names that cover ProtocolError.
BROAD_NAMES = frozenset({"Exception", "BaseException", "ReproError"})


def _caught_names(expr: ast.expr) -> Iterable[str]:
    """Exception class names caught by an ``except <expr>`` clause."""
    nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _reraises(body: List[ast.stmt]) -> bool:
    """Whether the handler body contains any ``raise``."""
    return any(isinstance(node, ast.Raise)
               for stmt in body for node in ast.walk(stmt))


@register
class ExceptionSwallowRule(Rule):
    """Ban bare / over-broad excepts that could absorb ProtocolError."""

    id = "EXC-SWALLOW"
    summary = ("bare or over-broad except (Exception/BaseException/"
               "ReproError) without a re-raise")
    rationale = ("a swallowed ProtocolError hides a protocol violation at "
                 "the moment it is cheapest to diagnose and lets wear "
                 "accounting diverge silently")

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    src, node,
                    "bare except can swallow ProtocolError; catch the "
                    "narrowest exception that can actually occur"))
                continue
            broad = [name for name in _caught_names(node.type)
                     if name in BROAD_NAMES]
            if broad and not _reraises(node.body):
                findings.append(self.finding(
                    src, node,
                    f"except {', '.join(broad)} without re-raise can "
                    f"swallow ProtocolError; narrow the handler or re-raise"))
        return findings
