"""RNG-DET: global random state instead of threaded Generator streams.

The parallel experiment harness guarantees bit-for-bit identical grids at
any ``--jobs`` value because every stochastic component draws from an
explicit :class:`numpy.random.Generator` derived via
:func:`repro.rng.derive_rng`.  One call into the *module-level* legacy API
(``np.random.rand``, ``np.random.shuffle``, ``np.random.seed``, stdlib
``random``) reads hidden process-global state and silently breaks that
guarantee — results then depend on worker scheduling.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: ``np.random.<name>`` attributes that are *not* global-state samplers:
#: constructors and seed plumbing the rng module itself builds on.
ALLOWED_NP_RANDOM = frozenset({
    "Generator", "BitGenerator", "SeedSequence",
    "default_rng", "PCG64", "PCG64DXSM", "Philox", "SFC64",
})

_NUMPY_ALIASES = frozenset({"np", "numpy"})


def _np_random_member(node: ast.Attribute) -> bool:
    """Whether *node* is an ``np.random.<x>`` / ``numpy.random.<x>`` access."""
    value = node.value
    return (isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in _NUMPY_ALIASES)


@register
class DeterministicRngRule(Rule):
    """Ban module-level RNG state outside :mod:`repro.rng`."""

    id = "RNG-DET"
    summary = ("module-level np.random.* / stdlib random instead of a "
               "threaded repro.rng.derive_rng Generator")
    rationale = ("global RNG state breaks the bit-for-bit parallel-grid "
                 "guarantee of repro.experiments.parallel: results would "
                 "depend on process scheduling, not the seed")
    exempt_patterns: Tuple[str, ...] = ("*/repro/rng.py",)

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) and _np_random_member(node):
                if node.attr not in ALLOWED_NP_RANDOM:
                    findings.append(self.finding(
                        src, node,
                        f"np.random.{node.attr} uses hidden global state; "
                        f"thread a Generator from repro.rng.derive_rng"))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(self.finding(
                            src, node,
                            "stdlib random is process-global; thread a "
                            "numpy Generator from repro.rng.derive_rng"))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(self.finding(
                        src, node,
                        "stdlib random is process-global; thread a "
                        "numpy Generator from repro.rng.derive_rng"))
        return findings
