"""TELEM-API: touching telemetry hooks or metrics outside repro.telemetry.

Instrumented objects (controllers, engines, the link table, the fault
reporter) carry a ``telem`` attribute that is ``None`` by default; the
disabled-telemetry guarantee — zero behavioral and performance impact,
byte-stable traces — rests on the same discipline as FAULT-HOOK: only
:mod:`repro.telemetry` may attach a session to a foreign object (use the
``attach_*`` functions), and only that package may construct the metric
primitives directly (everything else goes through a
:class:`~repro.telemetry.session.TelemetrySession` or a
:class:`~repro.telemetry.metrics.Registry` factory method, which is what
makes the single ``enabled`` flag authoritative).

The array layer (:mod:`repro.array`) is deliberately *not* exempt: each
shard cell opens its own :class:`TelemetrySession`, attaches it with
``attach_fast``, and the engine combines per-shard snapshots with the
pure :func:`~repro.telemetry.merge_snapshots` — merging data, never
reaching into another shard's hooks.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: Attribute naming the telemetry session hook on instrumented objects.
HOOK_ATTR = "telem"

#: Metric primitives whose direct construction bypasses the registry's
#: enabled flag (a bare Histogram() observes even when telemetry is off).
METRIC_NAMES = ("Counter", "Gauge", "Histogram", "Registry")


@register
class TelemApiRule(Rule):
    """Ban foreign `telem` access and direct metric construction."""

    id = "TELEM-API"
    summary = ("access to telemetry `telem` hooks or direct metric "
               "construction outside repro.telemetry")
    rationale = ("the disabled-telemetry guarantee (hooks are None, zero "
                 "cost, byte-stable traces) only holds if attaching "
                 "sessions and constructing metrics is confined to the "
                 "telemetry package; use the attach_* functions and the "
                 "Registry factories")
    exempt_patterns: Tuple[str, ...] = ("*/repro/telemetry/*",)

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr == HOOK_ATTR
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id in ("self", "cls"))):
                findings.append(self.finding(
                    src, node,
                    f"foreign access to telemetry hook `{node.attr}`; "
                    f"attach sessions through the repro.telemetry "
                    f"attach_* functions instead"))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in METRIC_NAMES):
                findings.append(self.finding(
                    src, node,
                    f"direct construction of telemetry metric "
                    f"`{node.func.id}`; go through a TelemetrySession or "
                    f"a Registry factory so the enabled flag applies"))
        return findings
