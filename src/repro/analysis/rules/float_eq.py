"""FLOAT-EQ: exact equality against float literals.

Lifetime fractions, CoV values and usable-space metrics are accumulated
floating point; comparing them with ``==`` / ``!=`` against a float literal
is at best fragile (one reordered reduction flips the branch) and at worst a
latent experiment-assertion bug.  Use ``math.isclose`` / ``np.isclose``, a
comparison (``<=``), or integer representations; genuinely exact sentinel
checks carry a justified ``# repro: allow(FLOAT-EQ)``.
"""

from __future__ import annotations

import ast
from typing import List

from ..core import Finding, Rule, SourceFile
from ..registry import register

_EQ_OPS = (ast.Eq, ast.NotEq)


@register
class FloatEqualityRule(Rule):
    """Ban ``==`` / ``!=`` where an operand is a float literal."""

    id = "FLOAT-EQ"
    summary = "float-literal equality comparison (==/!=)"
    rationale = ("metrics are accumulated floats; exact equality silently "
                 "flips with any change in reduction order")

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, _EQ_OPS):
                    continue
                pair = (operands[index], operands[index + 1])
                if any(isinstance(side, ast.Constant)
                       and type(side.value) is float for side in pair):
                    findings.append(self.finding(
                        src, node,
                        "float-literal equality; use math.isclose/"
                        "np.isclose, an inequality, or integers"))
                    break
        return findings
