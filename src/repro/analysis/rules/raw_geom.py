"""RAW-GEOM: hand-rolled page-geometry arithmetic outside its owners.

PR 1's victim-page bug was exactly this shape: ``pa // blocks_per_page``
computed a page id from a PA without the :class:`~repro.osmodel.allocator.
PagePool` ``base_pa`` offset, silently retiring the wrong page once the
software window moved.  Every ``//``, ``%``, ``*`` or ``divmod`` whose
operand is a ``blocks_per_page`` value (or a ``bpp`` alias) re-derives
address geometry that :class:`~repro.pcm.geometry.AddressGeometry`,
:class:`~repro.osmodel.allocator.PagePool` and :mod:`repro.units` already
centralize — so outside those owners it is banned.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Finding, Rule, SourceFile
from ..registry import register

#: Names whose involvement in arithmetic marks page-geometry math.
GEOMETRY_NAMES = frozenset({"blocks_per_page", "bpp"})

_BANNED_OPS = (ast.FloorDiv, ast.Mod, ast.Mult)
_OP_SYMBOL = {ast.FloorDiv: "//", ast.Mod: "%", ast.Mult: "*"}


def _is_geometry_ref(node: ast.AST) -> bool:
    """Whether *node* is a direct ``blocks_per_page``/``bpp`` reference."""
    if isinstance(node, ast.Name):
        return node.id in GEOMETRY_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in GEOMETRY_NAMES
    return False


@register
class RawGeometryRule(Rule):
    """Ban raw ``blocks_per_page`` arithmetic outside the geometry owners."""

    id = "RAW-GEOM"
    summary = ("page-geometry arithmetic (//, %, *, divmod with "
               "blocks_per_page) outside pcm.geometry / osmodel.allocator / "
               "units")
    rationale = ("PR 1 shipped `pa // blocks_per_page` in sim/fast.py that "
                 "ignored PagePool.base_pa and retired the wrong victim page")
    exempt_patterns: Tuple[str, ...] = (
        "*/repro/pcm/geometry.py",
        "*/repro/osmodel/allocator.py",
        "*/repro/units.py",
    )

    def check(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BANNED_OPS):
                if _is_geometry_ref(node.left) or _is_geometry_ref(node.right):
                    symbol = _OP_SYMBOL[type(node.op)]
                    findings.append(self.finding(
                        src, node,
                        f"raw `{symbol}` arithmetic with blocks_per_page; "
                        f"use an AddressGeometry/PagePool/units helper"))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "divmod"
                    and any(_is_geometry_ref(arg) for arg in node.args)):
                findings.append(self.finding(
                    src, node,
                    "raw divmod() with blocks_per_page; "
                    "use an AddressGeometry/PagePool/units helper"))
        return findings
