"""``# repro: allow(...)`` suppression comments.

Two forms, both requiring an explicit rule id:

* same-line — ``x = pa // bpp  # repro: allow(RAW-GEOM): capacity math`` —
  silences the named rule(s) for findings anchored on that physical line;
* file-wide — a standalone ``# repro: allow-file(RULE-ID): justification``
  comment anywhere in the module — silences the rule(s) for the whole file.

The trailing ``: justification`` is part of the contract: a suppression
without one is itself reported (``ALLOW-REASON``), so every escape hatch in
the tree documents *why* the banned pattern is safe where it stands.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\s*"
    r"\(\s*(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\s*\)"
    r"(?P<reason>\s*:\s*\S.*)?")


@dataclass
class SuppressionIndex:
    """Parsed suppression comments of one module."""

    #: physical line -> rule ids allowed on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids allowed for the whole file.
    file_wide: Set[str] = field(default_factory=set)
    #: ``(line, col)`` of every allow() comment missing a justification.
    missing_reason: List[Tuple[int, int]] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of *rule* at *line* is silenced."""
        return rule in self.file_wide or rule in self.by_line.get(line, set())


def scan_suppressions(text: str) -> SuppressionIndex:
    """Extract every suppression comment from module source *text*."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        rules = {name.strip().upper()
                 for name in match.group("rules").split(",")}
        line = token.start[0]
        if match.group("scope"):
            index.file_wide.update(rules)
        else:
            index.by_line.setdefault(line, set()).update(rules)
        if match.group("reason") is None:
            index.missing_reason.append((line, token.start[1]))
    return index
