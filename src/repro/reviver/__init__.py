"""WL-Reviver: the paper's primary contribution (Section III).

The framework hides failed PCM blocks from the wear-leveling scheme by
linking each failed block to a *virtual shadow block* — a PA inside an OS
page retired after an access exception.  The WL scheme's own (changing)
PA-to-DA mapping supplies the second hop to the actual *shadow block*, so
shadow data participates in wear leveling and links never need rewriting.

Modules:

* :mod:`~repro.reviver.registers` — the spare-PA pool (the paper's pair of
  current/last registers, generalized to out-of-order consumption);
* :mod:`~repro.reviver.pages` — layout of acquired pages into the
  virtual-shadow section and the inverse-pointer section (Figure 4);
* :mod:`~repro.reviver.links` — the failed-block -> VPA link table and its
  inverse-pointer mirror, with metadata-write accounting;
* :mod:`~repro.reviver.chains` — chain resolution and the reduction that
  keeps every chain at one step (the switches of Figures 2 and 3);
* :mod:`~repro.reviver.bitmap` — the replicated retired-page bitmap read at
  reboot;
* :mod:`~repro.reviver.invariants` — runtime checkers for Theorems 1-3;
* :mod:`~repro.reviver.reviver` — the :class:`WLReviver` orchestrator the
  memory controller drives.
"""

from .registers import SparePool
from .pages import PageLedger, AcquiredPage
from .links import LinkTable, MetadataWrite
from .chains import ChainResolver, Resolution
from .bitmap import RetiredPageBitmap
from .invariants import InvariantChecker
from .reviver import WLReviver, FaultContext

__all__ = [
    "SparePool", "PageLedger", "AcquiredPage", "LinkTable", "MetadataWrite",
    "ChainResolver", "Resolution", "RetiredPageBitmap", "InvariantChecker",
    "WLReviver", "FaultContext",
]
