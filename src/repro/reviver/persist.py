"""The durable (in-PCM) view of the reviver's link metadata.

The link table and spare registers are *volatile* controller state; what
survives a power loss is exactly what was physically written to the PCM
(Section III-B):

* the **pointer cells** — each failed block's surviving cells hold the PA
  of its virtual shadow;
* the **inverse-pointer cells** — each acquired page's pointer section
  holds, per shadow slot, the DA of the failed block it serves;
* the replicated retired-page bitmap
  (:class:`~repro.reviver.bitmap.RetiredPageBitmap`), which is durable by
  construction and modeled separately.

:class:`DurableMetadata` mirrors the first two.  The controller applies
each :class:`~repro.reviver.links.MetadataWrite` record here immediately
after performing the corresponding physical write, so at any crash point
the store holds precisely the prefix of metadata updates that became
durable — which is what :meth:`~repro.reviver.reviver.WLReviver.recover`
scans to rebuild the volatile state.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ProtocolError
from .links import MetadataWrite


class DurableMetadata:
    """Pointer and inverse-pointer cell contents, as last written to PCM."""

    def __init__(self) -> None:
        #: failed DA -> VPA its pointer cells name.
        self.pointer_cells: Dict[int, int] = {}
        #: shadow VPA -> failed DA its inverse-pointer entry names.
        self.inverse_cells: Dict[int, int] = {}

    def apply(self, record: MetadataWrite) -> None:
        """Record one completed physical metadata write."""
        if record.kind == "pointer":
            if record.vpa is None:
                raise ProtocolError("pointer record carries no VPA payload")
            self.pointer_cells[record.location] = record.vpa
        elif record.kind == "inverse":
            if record.vpa is None or record.da is None:
                raise ProtocolError("inverse record carries no payload")
            self.inverse_cells[record.vpa] = record.da
        else:
            raise ProtocolError(f"unknown metadata record kind {record.kind!r}")

    def __len__(self) -> int:
        return len(self.pointer_cells) + len(self.inverse_cells)
