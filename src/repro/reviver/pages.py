"""Layout of acquired OS pages (Figure 4).

When the OS retires a page in response to an access exception, WL-Reviver
claims its PAs and splits them into two sections:

* the **virtual shadow section** — the leading PAs, each able to serve as
  one failed block's virtual shadow;
* the **inverse-pointer section** — the trailing PAs, whose *mapped memory
  blocks* store the inverse pointers (virtual shadow PA -> failed block DA)
  needed to reduce two-step chains.

Paper example: a 4 KB page holds 64 PAs; with 32-bit pointers one 64 B block
stores 16 inverse pointers, so 4 trailing PAs cover the 60 leading ones.
The exact split is computed from the configured pointer width
(:meth:`repro.config.ReviverConfig.pointer_section_blocks`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import ReviverConfig
from ..errors import ProtocolError
from ..units import blocks_of_pages


@dataclass(frozen=True)
class AcquiredPage:
    """One retired page claimed by WL-Reviver."""

    page_id: int
    #: PAs usable as virtual shadow blocks.
    shadow_pas: tuple
    #: PAs whose mapped blocks store the inverse pointers.
    pointer_pas: tuple

    @property
    def shadow_capacity(self) -> int:
        """Virtual shadow slots contributed by this page."""
        return len(self.shadow_pas)


class PageLedger:
    """Tracks every page acquired by the framework and its section layout."""

    def __init__(self, config: ReviverConfig, blocks_per_page: int,
                 block_bytes: int) -> None:
        self.config = config
        self.blocks_per_page = blocks_per_page
        self.block_bytes = block_bytes
        self.pointer_blocks_per_page = config.pointer_section_blocks(
            blocks_per_page, block_bytes)
        self.pointers_per_block = (block_bytes * 8) // config.pointer_bits
        self.pages: List[AcquiredPage] = []
        #: virtual shadow PA -> PA of the block holding its inverse pointer.
        self._pointer_home: Dict[int, int] = {}
        #: virtual shadow PA -> owning acquired page id.
        self._owner: Dict[int, int] = {}

    # ------------------------------------------------------------- acquiring

    def claim(self, page_id: int, pas: List[int]) -> AcquiredPage:
        """Split a retired page's PAs into sections and record the layout."""
        if len(pas) != self.blocks_per_page:
            raise ProtocolError(
                f"page {page_id} delivered {len(pas)} PAs, "
                f"expected {self.blocks_per_page}")
        split = self.blocks_per_page - self.pointer_blocks_per_page
        shadow = tuple(pas[:split])
        pointer = tuple(pas[split:])
        page = AcquiredPage(page_id=page_id, shadow_pas=shadow,
                            pointer_pas=pointer)
        self.pages.append(page)
        for index, vpa in enumerate(shadow):
            home = pointer[index // self.pointers_per_block]
            self._pointer_home[vpa] = home
            self._owner[vpa] = page_id
        return page

    # ------------------------------------------------------------- inspection

    def pointer_home(self, vpa: int) -> int:
        """PA of the block storing *vpa*'s inverse pointer."""
        try:
            return self._pointer_home[vpa]
        except KeyError:
            raise ProtocolError(f"PA {vpa} is not a virtual shadow slot") from None

    def owner_page(self, vpa: int) -> Optional[int]:
        """Acquired page owning *vpa*, or ``None``."""
        return self._owner.get(vpa)

    def is_shadow_slot(self, pa: int) -> bool:
        """Whether *pa* belongs to any acquired page's shadow section."""
        return pa in self._pointer_home

    @property
    def pages_acquired(self) -> int:
        """Number of pages claimed so far."""
        return len(self.pages)

    @property
    def blocks_claimed(self) -> int:
        """Block count of every page claimed so far (capacity accounting)."""
        return blocks_of_pages(self.pages_acquired, self.blocks_per_page)

    @property
    def shadow_slots_per_page(self) -> int:
        """Virtual shadow slots contributed by each page."""
        return self.blocks_per_page - self.pointer_blocks_per_page
