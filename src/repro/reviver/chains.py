"""Chain resolution and reduction.

A failed block's *chain* is the path to its data: failed DA -> (stored
pointer) -> virtual shadow PA -> (current mapping) -> shadow DA.  One
DA-to-PA link followed by one PA-to-DA mapping is a *step*.  Chains of more
than one step arise transiently in exactly two situations (Section III-B):

1. a software write finds the shadow block itself worn out and a new
   virtual shadow is allocated behind it (Figure 2(c));
2. a wear-leveling migration moves data into a failed block, i.e. a
   mapping change makes some linked virtual shadow PA point at a failed
   block (Figure 3(a)).

Both are repaired the same way: *switch* the virtual shadows of the two
failed blocks on the chain.  The first block ends one step from the healthy
shadow; the second ends *mutually linked* with its own virtual shadow — a
**PA-DA loop** — which is harmless because the looping PA is invisible to
software and Theorem 3 keeps migrations away.  The switch needs the inverse
mapping function (to find who points at a DA) and the inverse pointers (to
find the failed block owning a virtual shadow PA); both are available.

:class:`ChainResolver` packages the walk (:meth:`resolve`) and the repair
(:meth:`reduce`) over a :class:`~repro.reviver.links.LinkTable` and the
wear-leveler's live mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import ProtocolError
from .links import LinkTable


@dataclass(frozen=True)
class Resolution:
    """Outcome of following a block's chain."""

    #: Healthy block finally reached, or ``None`` for a PA-DA loop.
    final_da: Optional[int]
    #: Steps followed (0 = the block itself is healthy).
    hops: int
    #: DAs visited, starting with the queried block.
    path: Tuple[int, ...]

    @property
    def is_loop(self) -> bool:
        """True when the chain ends on a PA-DA loop (no shadow block)."""
        return self.final_da is None


class ChainResolver:
    """Walks and repairs failure chains against the live mapping."""

    def __init__(self, links: LinkTable,
                 map_fn: Callable[[int], int],
                 is_failed: Callable[[int], bool]) -> None:
        self.links = links
        self.map_fn = map_fn
        self.is_failed = is_failed
        #: Chain switches performed (reporting; each is 2 pointer rewrites).
        self.switches = 0

    # ---------------------------------------------------------------- walking

    def resolve(self, da: int) -> Resolution:
        """Follow *da*'s chain to its shadow block without modifying it."""
        path = [da]
        current = da
        while self.is_failed(current):
            vpa = self.links.vpa_of(current)
            if vpa is None:
                raise ProtocolError(f"failed block {current} has no link")
            nxt = self.map_fn(vpa)
            if nxt in path:
                # The only legal cycle is the self-loop current -> vpa ->
                # current; anything longer is a protocol violation.
                if nxt == current:
                    return Resolution(None, len(path) - 1, tuple(path))
                raise ProtocolError(f"chain cycle through {path + [nxt]}")
            path.append(nxt)
            current = nxt
        return Resolution(current, len(path) - 1, tuple(path))

    # --------------------------------------------------------------- reducing

    def reduce(self, da: int) -> Resolution:
        """Flatten *da*'s chain to at most one step; return the result.

        Every iteration that finds the next hop failed performs one switch,
        which pins that hop onto a PA-DA loop; progress is therefore strictly
        monotone and the walk terminates.
        """
        if not self.is_failed(da):
            return Resolution(da, 0, (da,))
        while True:
            vpa = self.links.vpa_of(da)
            if vpa is None:
                raise ProtocolError(f"failed block {da} has no link")
            target = self.map_fn(vpa)
            if target == da:
                return Resolution(None, 1, (da, da))
            if not self.is_failed(target):
                return Resolution(target, 1, (da, target))
            if self.links.vpa_of(target) is None:
                # The target failed moments ago and its own failure handling
                # is still in flight; once it is linked, that handler
                # re-flattens this chain (upstream reduction in
                # WLReviver._link).
                return Resolution(target, 1, (da, target))
            # Two-step chain da -> vpa -> target -> ...: switch the two
            # failed blocks' virtual shadows (Figures 2(d) / 3(b)).
            self.links.switch(da, target)
            self.switches += 1
