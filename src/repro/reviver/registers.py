"""The spare virtual-shadow-block pool.

The paper implements the pool with two registers: one holding the PA
currently available to serve as a virtual shadow block, the other the last
PA available; PAs between them are the reserved virtual spare space
(Section III-A).  Sequential consumption covers almost every allocation, but
one corner case needs out-of-order removal: when a wear-leveling migration
lands on a failed block whose post-move PA happens to be an *unlinked* spare
(the data being "migrated" belongs to that spare PA and is garbage), the
framework links the pair into a PA-DA loop, consuming that specific spare.

:class:`SparePool` therefore keeps the register semantics (FIFO order over
acquired pages) while supporting O(1) removal of a specific PA.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List

from ..errors import CapacityExhaustedError


class SparePool:
    """FIFO pool of unlinked virtual-shadow PAs with keyed removal."""

    def __init__(self) -> None:
        # OrderedDict used as an ordered set: key = PA, value unused.
        self._spares: "OrderedDict[int, None]" = OrderedDict()
        self.total_acquired = 0
        self.total_consumed = 0

    # --------------------------------------------------------------- filling

    def add(self, pas: Iterable[int]) -> None:
        """Add freshly acquired spare PAs (a new page's shadow section)."""
        for pa in pas:
            self._spares[pa] = None
            self.total_acquired += 1

    # ------------------------------------------------------------- consuming

    def take(self) -> int:
        """Consume the next spare in register order."""
        if not self._spares:
            raise CapacityExhaustedError("no spare virtual shadow blocks")
        pa, _ = self._spares.popitem(last=False)
        self.total_consumed += 1
        return pa

    def take_specific(self, pa: int) -> int:
        """Consume a specific spare (PA-DA loop formation on migration)."""
        if pa not in self._spares:
            raise CapacityExhaustedError(f"PA {pa} is not an unlinked spare")
        del self._spares[pa]
        self.total_consumed += 1
        return pa

    # -------------------------------------------------------------- inspection

    def __contains__(self, pa: int) -> bool:
        return pa in self._spares

    def __len__(self) -> int:
        return len(self._spares)

    @property
    def available(self) -> int:
        """Spares currently unlinked."""
        return len(self._spares)

    def peek_all(self) -> List[int]:
        """All unlinked spares in register order (tests/invariants)."""
        return list(self._spares.keys())
