"""The replicated retired-page bitmap.

Across reboots the OS must know which pages WL-Reviver has taken (it cannot
rediscover them: the pages look like ordinary memory).  The framework keeps
one bit per OS page — set at most once in the chip's lifetime — and stores
multiple copies in the PCM for safety; the memory-diagnostics pass at boot
loads it and withholds the marked pages from the allocation pool
(Section III-A, last paragraph).

The simulator models the bitmap exactly (bit array, replica writes counted)
and provides serialization so tests can exercise the reboot path.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AddressError, ProtocolError


class RetiredPageBitmap:
    """One bit per OS page, with replica-write accounting."""

    def __init__(self, num_pages: int, replicas: int = 2) -> None:
        if num_pages <= 0:
            raise AddressError("num_pages must be positive")
        if replicas < 1:
            raise AddressError("replicas must be >= 1")
        self.num_pages = num_pages
        self.replicas = replicas
        self._bits = np.zeros(num_pages, dtype=bool)
        #: Physical PCM writes spent updating replicas.
        self.metadata_writes = 0

    # -------------------------------------------------------------- mutation

    def mark_retired(self, page_id: int) -> None:
        """Set the page's bit (once) and account the replica updates."""
        if not 0 <= page_id < self.num_pages:
            raise AddressError(f"page {page_id} out of range")
        if self._bits[page_id]:
            raise ProtocolError(f"page {page_id} already marked retired")
        self._bits[page_id] = True
        self.metadata_writes += self.replicas

    # ------------------------------------------------------------- inspection

    def is_retired(self, page_id: int) -> bool:
        """Whether the page's bit is set."""
        if not 0 <= page_id < self.num_pages:
            raise AddressError(f"page {page_id} out of range")
        return bool(self._bits[page_id])

    def retired_pages(self) -> List[int]:
        """All marked pages, ascending."""
        return np.nonzero(self._bits)[0].tolist()

    @property
    def retired_count(self) -> int:
        """Number of marked pages."""
        return int(self._bits.sum())

    # ---------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize to the packed on-PCM representation."""
        return np.packbits(self._bits).tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, num_pages: int,
                   replicas: int = 2) -> "RetiredPageBitmap":
        """Rebuild a bitmap from its packed representation (reboot path)."""
        bitmap = cls(num_pages, replicas=replicas)
        unpacked = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        if unpacked.size < num_pages:
            raise AddressError("serialized bitmap too short")
        bitmap._bits = unpacked[:num_pages].astype(bool)
        return bitmap

    def storage_bytes(self) -> int:
        """PCM bytes consumed by all replicas."""
        return self.replicas * ((self.num_pages + 7) // 8)
