"""The WL-Reviver orchestrator.

:class:`WLReviver` ties together the spare pool, page ledger, link table,
chain resolver, and retired-page bitmap, and implements the framework
protocol of Section III:

* **first failure / spare exhaustion on a software write** — report the
  access to the OS as failed; the retired page's PAs are claimed (shadow
  section into the spare pool, pointer section registered) and the failed
  block is linked;
* **subsequent failures** — hidden with spares, no OS interaction;
* **failure during migration with no spares** — *suspend*: the framework
  remembers that space is owed and the next software write is victimized
  (reported to the OS as failed even though it succeeded); the OS retires
  that page and retries the write elsewhere, migration then resumes;
* **linking** — a failed block is linked to a virtual shadow PA; the
  special case where the PA currently mapping onto the failed block is
  itself an unlinked spare immediately forms a PA-DA loop (the "data"
  migrated into the block belongs to a reserved PA and is garbage);
* **chain reduction** — after every link and every mapping change, chains
  are flattened back to one step (see :mod:`repro.reviver.chains`).

The class is engine-agnostic: it sees the wear-leveler only as a pair of
``map``/``inverse`` callables and never touches the chip; the memory
controller drains :class:`~repro.reviver.links.MetadataWrite` records and
performs the physical metadata writes itself.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

import numpy as np

from ..config import ReviverConfig
from ..errors import ProtocolError
from ..osmodel.faults import FaultReporter
from .bitmap import RetiredPageBitmap
from .chains import ChainResolver, Resolution
from .invariants import InvariantChecker
from .links import LinkTable
from .pages import AcquiredPage, PageLedger
from .registers import SparePool


class FaultContext(enum.Enum):
    """Where a write fault was detected."""

    #: A software-issued write (the OS can be interrupted immediately).
    SOFTWARE = "software"
    #: A wear-leveling migration write (OS must not be interrupted; suspend).
    MIGRATION = "migration"
    #: A framework metadata write (treated like migration).
    INTERNAL = "internal"


class WLReviver:
    """Framework state machine reviving a wear-leveling scheme."""

    def __init__(self, config: ReviverConfig, reporter: FaultReporter,
                 map_fn: Callable[[int], int],
                 inverse_fn: Callable[[int], Optional[int]],
                 is_failed: Callable[[int], bool],
                 blocks_per_page: int, block_bytes: int,
                 num_pages: int) -> None:
        self.config = config
        self.reporter = reporter
        self.map_fn = map_fn
        self.inverse_fn = inverse_fn
        self.is_failed = is_failed
        self.spares = SparePool()
        self.ledger = PageLedger(config, blocks_per_page, block_bytes)
        self.links = LinkTable(self.ledger)
        self.resolver = ChainResolver(self.links, map_fn, is_failed)
        self.bitmap = RetiredPageBitmap(num_pages,
                                        replicas=config.bitmap_replicas)
        #: True while a suspended migration waits for the next software
        #: write to be victimized for page acquisition.
        self.acquisition_pending = False
        #: Blocks that failed while no spare was available; linked as soon
        #: as the victimized acquisition delivers a page.
        self._unlinked_failures: List[int] = []
        #: Failures hidden without interrupting the OS (reporting).
        self.hidden_failures = 0
        #: Optional controller hook run after the OS retires a page but
        #: before its PAs become spares: the OS must copy the page's data
        #: to its new frame while the old blocks are still untouched.
        self.page_copier: Optional[Callable[[], None]] = None

    # ---------------------------------------------------------------- queries

    def resolve(self, da: int) -> Resolution:
        """Follow *da*'s chain (read path; does not modify state)."""
        return self.resolver.resolve(da)

    def is_reserved_pa(self, pa: int) -> bool:
        """Whether *pa* belongs to the framework's reserved virtual space."""
        return (pa in self.spares or self.links.is_linked_vpa(pa)
                or self.ledger.is_shadow_slot(pa))

    # -------------------------------------------------------------- acquiring

    def acquire_page(self, victim_pa: int, at_write: int,
                     victimized: bool) -> AcquiredPage:
        """Report *victim_pa* to the OS and claim the retired page.

        Ordering is load-bearing: the OS copies the retired page's data to
        its new frame (``page_copier``) *before* the PAs become spares, so
        no link or chain switch can repurpose a block that still holds the
        page's software data.
        """
        pas = self.reporter.report(victim_pa, at_write, victimized=victimized)
        event = self.reporter.last_event()
        assert event is not None
        if self.page_copier is not None:
            self.page_copier()
        self.bitmap.mark_retired(event.page_id)
        page = self.ledger.claim(event.page_id, pas)
        self.spares.add(page.shadow_pas)
        # Blocks that failed during the drought can be linked now.
        while self._unlinked_failures and self.spares.available:
            self._link(self._unlinked_failures.pop(0))
        if not self._unlinked_failures:
            # Any acquisition satisfies an outstanding suspension, whether
            # it came from a victimized write or a genuine failure report.
            self.acquisition_pending = False
        return page

    # ----------------------------------------------------------- fault events

    def handle_new_failure(self, da: int, context: FaultContext,
                           victim_pa: Optional[int] = None,
                           at_write: int = 0) -> bool:
        """Link newly failed block *da*; returns False when suspended.

        The chip has already marked *da* failed.  On success the block ends
        linked (possibly on a PA-DA loop) and all affected chains are back
        to one step.  ``False`` means no spare was available and the context
        forbids interrupting the OS: the caller must suspend the operation
        and victimize the next software write.
        """
        if self.links.vpa_of(da) is not None:
            raise ProtocolError(f"block {da} failed twice")
        if da in self._unlinked_failures:
            return False  # already queued for the in-flight acquisition
        if self.spares.available == 0:
            if context is FaultContext.SOFTWARE:
                if victim_pa is None:
                    raise ProtocolError("software fault requires the victim PA")
                self.acquire_page(victim_pa, at_write, victimized=False)
            else:
                self.acquisition_pending = True
                self._unlinked_failures.append(da)
                return False
        else:
            self.hidden_failures += 1
        self._link(da)
        return True

    def _link(self, da: int) -> None:
        """Link *da* to a spare and restore the one-step property."""
        mapped_by = self.inverse_fn(da)
        if mapped_by is not None and mapped_by in self.spares:
            # The PA owning the data "stored" in da is an unlinked spare:
            # its content is garbage, so the pair can be retired together
            # as a PA-DA loop without consuming a healthy shadow.
            vpa = self.spares.take_specific(mapped_by)
            self.links.link(da, vpa)
        else:
            vpa = self.spares.take()
            self.links.link(da, vpa)
            self.resolver.reduce(da)
        if mapped_by is not None and self.links.is_linked_vpa(mapped_by):
            upstream = self.links.failed_of(mapped_by)
            if upstream is not None and upstream != da:
                # A chain ran through da before it failed; flatten it.
                self.resolver.reduce(upstream)

    # --------------------------------------------------------- mapping events

    def on_mapping_changed(self, pas: List[int]) -> None:
        """Re-flatten chains after the wear-leveler remapped *pas*."""
        for pa in pas:
            if self.links.is_linked_vpa(pa):
                owner = self.links.failed_of(pa)
                if owner is not None:
                    self.resolver.reduce(owner)

    # ------------------------------------------------------------- reporting

    def make_checker(self, software_pas: Callable[[], List[int]],
                     failed_blocks: Callable[[], List[int]],
                     map_many_fn: Optional[
                         Callable[[np.ndarray], np.ndarray]] = None,
                     failed_mask_fn: Optional[
                         Callable[[], np.ndarray]] = None) -> InvariantChecker:
        """Build an invariant checker over this reviver's live state.

        Passing ``map_many_fn`` + ``failed_mask_fn`` selects the checker's
        vectorized sweeps (identical errors, numpy speed).
        """
        return InvariantChecker(self.links, self.spares, self.map_fn,
                                self.is_failed, software_pas, failed_blocks,
                                map_many_fn=map_many_fn,
                                failed_mask_fn=failed_mask_fn)

    def stats(self) -> dict:
        """Counters for experiment reports."""
        return {
            "pages_acquired": self.ledger.pages_acquired,
            "spares_available": self.spares.available,
            "linked_blocks": len(self.links),
            "chain_switches": self.resolver.switches,
            "hidden_failures": self.hidden_failures,
            "os_reports": self.reporter.report_count,
            "victimized_writes": self.reporter.victimized_count,
        }
