"""The WL-Reviver orchestrator.

:class:`WLReviver` ties together the spare pool, page ledger, link table,
chain resolver, and retired-page bitmap, and implements the framework
protocol of Section III:

* **first failure / spare exhaustion on a software write** — report the
  access to the OS as failed; the retired page's PAs are claimed (shadow
  section into the spare pool, pointer section registered) and the failed
  block is linked;
* **subsequent failures** — hidden with spares, no OS interaction;
* **failure during migration with no spares** — *suspend*: the framework
  remembers that space is owed and the next software write is victimized
  (reported to the OS as failed even though it succeeded); the OS retires
  that page and retries the write elsewhere, migration then resumes;
* **linking** — a failed block is linked to a virtual shadow PA; the
  special case where the PA currently mapping onto the failed block is
  itself an unlinked spare immediately forms a PA-DA loop (the "data"
  migrated into the block belongs to a reserved PA and is garbage);
* **chain reduction** — after every link and every mapping change, chains
  are flattened back to one step (see :mod:`repro.reviver.chains`).

The class is engine-agnostic: it sees the wear-leveler only as a pair of
``map``/``inverse`` callables and never touches the chip; the memory
controller drains :class:`~repro.reviver.links.MetadataWrite` records and
performs the physical metadata writes itself.
"""

from __future__ import annotations

import enum
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Sequence, Set)

import numpy as np

from ..config import ReviverConfig
from ..errors import ProtocolError
from ..osmodel.faults import FaultReporter
from .bitmap import RetiredPageBitmap
from .chains import ChainResolver, Resolution
from .invariants import InvariantChecker
from .links import LinkTable
from .pages import AcquiredPage, PageLedger
from .persist import DurableMetadata
from .registers import SparePool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.session import TelemetrySession


class FaultContext(enum.Enum):
    """Where a write fault was detected."""

    #: A software-issued write (the OS can be interrupted immediately).
    SOFTWARE = "software"
    #: A wear-leveling migration write (OS must not be interrupted; suspend).
    MIGRATION = "migration"
    #: A framework metadata write (treated like migration).
    INTERNAL = "internal"


class WLReviver:
    """Framework state machine reviving a wear-leveling scheme."""

    def __init__(self, config: ReviverConfig, reporter: FaultReporter,
                 map_fn: Callable[[int], int],
                 inverse_fn: Callable[[int], Optional[int]],
                 is_failed: Callable[[int], bool],
                 blocks_per_page: int, block_bytes: int,
                 num_pages: int) -> None:
        self.config = config
        self.reporter = reporter
        self.map_fn = map_fn
        self.inverse_fn = inverse_fn
        self.is_failed = is_failed
        self.spares = SparePool()
        self.ledger = PageLedger(config, blocks_per_page, block_bytes)
        self.links = LinkTable(self.ledger)
        self.resolver = ChainResolver(self.links, map_fn, is_failed)
        self.bitmap = RetiredPageBitmap(num_pages,
                                        replicas=config.bitmap_replicas)
        #: True while a suspended migration waits for the next software
        #: write to be victimized for page acquisition.
        self.acquisition_pending = False
        #: Blocks that failed while no spare was available; linked as soon
        #: as the victimized acquisition delivers a page.
        self._unlinked_failures: List[int] = []
        #: Failures hidden without interrupting the OS (reporting).
        self.hidden_failures = 0
        #: Chain switches attributed to the two Section III-B scenarios:
        #: a worn-out shadow behind a software write (Figure 2(d)) versus
        #: a wear-leveling migration remapping onto a failed block
        #: (Figure 3(b)).  Recovery re-reductions are counted separately.
        self.switch_scenarios: Dict[str, int] = {
            "shadow-failed": 0, "migration-remap": 0}
        #: Crash recoveries performed (:meth:`recover`).
        self.recoveries = 0
        #: Metadata records re-emitted by recovery to complete torn updates
        #: (bounded by the writes in flight at the crash; recovered links
        #: themselves never need rewriting — the paper's reboot claim).
        self.recovery_redo_writes = 0
        #: Optional controller hook run after the OS retires a page but
        #: before its PAs become spares: the OS must copy the page's data
        #: to its new frame while the old blocks are still untouched.
        self.page_copier: Optional[Callable[[], None]] = None
        #: Telemetry hook; attach via repro.telemetry only.
        self.telem: Optional["TelemetrySession"] = None

    # ---------------------------------------------------------------- queries

    def resolve(self, da: int) -> Resolution:
        """Follow *da*'s chain (read path; does not modify state)."""
        return self.resolver.resolve(da)

    def is_reserved_pa(self, pa: int) -> bool:
        """Whether *pa* belongs to the framework's reserved virtual space."""
        return (pa in self.spares or self.links.is_linked_vpa(pa)
                or self.ledger.is_shadow_slot(pa))

    # -------------------------------------------------------------- acquiring

    def acquire_page(self, victim_pa: int, at_write: int,
                     victimized: bool) -> AcquiredPage:
        """Report *victim_pa* to the OS and claim the retired page.

        Ordering is load-bearing: the OS copies the retired page's data to
        its new frame (``page_copier``) *before* the PAs become spares, so
        no link or chain switch can repurpose a block that still holds the
        page's software data.
        """
        was_pending = self.acquisition_pending
        pas = self.reporter.report(victim_pa, at_write, victimized=victimized)
        event = self.reporter.last_event()
        assert event is not None
        if self.page_copier is not None:
            self.page_copier()
        self.bitmap.mark_retired(event.page_id)
        page = self.ledger.claim(event.page_id, pas)
        self.spares.add(page.shadow_pas)
        # Blocks that failed during the drought can be linked now.
        while self._unlinked_failures and self.spares.available:
            self._link(self._unlinked_failures.pop(0))
        if not self._unlinked_failures:
            # Any acquisition satisfies an outstanding suspension, whether
            # it came from a victimized write or a genuine failure report.
            self.acquisition_pending = False
            if was_pending and self.telem is not None:
                self.telem.emit("migration-resume", page=event.page_id,
                                at_write=at_write)
        return page

    # ----------------------------------------------------------- fault events

    def handle_new_failure(self, da: int, context: FaultContext,
                           victim_pa: Optional[int] = None,
                           at_write: int = 0) -> bool:
        """Link newly failed block *da*; returns False when suspended.

        The chip has already marked *da* failed.  On success the block ends
        linked (possibly on a PA-DA loop) and all affected chains are back
        to one step.  ``False`` means no spare was available and the context
        forbids interrupting the OS: the caller must suspend the operation
        and victimize the next software write.
        """
        if self.links.vpa_of(da) is not None:
            raise ProtocolError(f"block {da} failed twice")
        if da in self._unlinked_failures:
            return False  # already queued for the in-flight acquisition
        if self.spares.available == 0:
            if context is FaultContext.SOFTWARE:
                if victim_pa is None:
                    raise ProtocolError("software fault requires the victim PA")
                self.acquire_page(victim_pa, at_write, victimized=False)
            else:
                if not self.acquisition_pending and self.telem is not None:
                    self.telem.emit("migration-suspend", da=da,
                                    context=context.value, at_write=at_write)
                self.acquisition_pending = True
                self._unlinked_failures.append(da)
                return False
        else:
            self.hidden_failures += 1
        self._link(da)
        return True

    def _link(self, da: int) -> None:
        """Link *da* to a spare and restore the one-step property."""
        switches_before = self.resolver.switches
        mapped_by = self.inverse_fn(da)
        if mapped_by is not None and mapped_by in self.spares:
            # The PA owning the data "stored" in da is an unlinked spare:
            # its content is garbage, so the pair can be retired together
            # as a PA-DA loop without consuming a healthy shadow.
            vpa = self.spares.take_specific(mapped_by)
            self.links.link(da, vpa)
        else:
            vpa = self.spares.take()
            self.links.link(da, vpa)
            self.resolver.reduce(da)
        if mapped_by is not None and self.links.is_linked_vpa(mapped_by):
            upstream = self.links.failed_of(mapped_by)
            if upstream is not None and upstream != da:
                # A chain ran through da before it failed; flatten it.
                self.resolver.reduce(upstream)
        self.switch_scenarios["shadow-failed"] += (
            self.resolver.switches - switches_before)

    # --------------------------------------------------------- mapping events

    def on_mapping_changed(self, pas: List[int]) -> None:
        """Re-flatten chains after the wear-leveler remapped *pas*."""
        switches_before = self.resolver.switches
        for pa in pas:
            if self.links.is_linked_vpa(pa):
                owner = self.links.failed_of(pa)
                if owner is not None:
                    self.resolver.reduce(owner)
        self.switch_scenarios["migration-remap"] += (
            self.resolver.switches - switches_before)

    # --------------------------------------------------------------- recovery

    def recover(self, durable: DurableMetadata, failed_das: Iterable[int],
                pas_of_page: Callable[[int], Sequence[int]]) -> None:
        """Rebuild the volatile link table and registers after a crash.

        Everything volatile is discarded and re-derived from what is
        durable in the PCM: the retired-page bitmap (which pages are
        ours), the inverse-pointer cells in each page's pointer section
        (the authoritative link direction the paper's reboot scan reads),
        the pointer cells in the failed blocks, and the chip's failure
        flags.  Reconciliation handles the one metadata operation that can
        be torn mid-flight:

        1. an inverse cell agreeing with its pointer cell is a clean link
           — restored without any write;
        2. an inverse cell whose pointer cell disagrees (a switch torn
           after rewriting the pointers) is restored from the inverse —
           the authority — and the stale pointer cell is redone;
        3. a pointer cell naming a shadow slot no inverse claims (a link
           torn before its inverse write) is completed by redoing that
           inverse write;
        4. unclaimed shadow slots refill the spare registers; failed
           blocks left unlinked re-enter :meth:`handle_new_failure` as
           in-flight failures; finally every chain is reduced back to one
           step, re-performing any switch the crash interrupted.

        Register order is re-derived in ascending page order — equivalent
        to the paper's two-register bounds, though not necessarily the
        pre-crash FIFO order.  Cumulative statistics (switches, hidden
        failures, reports) survive; they describe the chip's life, not the
        controller's uptime.
        """
        switches = self.resolver.switches
        self.spares = SparePool()
        self.ledger = PageLedger(self.config, self.ledger.blocks_per_page,
                                 self.ledger.block_bytes)
        self.links = LinkTable(self.ledger, telem=self.telem)
        self.resolver = ChainResolver(self.links, self.map_fn, self.is_failed)
        self.resolver.switches = switches
        self.acquisition_pending = False
        self._unlinked_failures = []
        shadow_slots: List[int] = []
        for page_id in self.bitmap.retired_pages():
            page = self.ledger.claim(page_id, list(pas_of_page(page_id)))
            shadow_slots.extend(page.shadow_pas)
        failed = set(failed_das)
        linked: Set[int] = set()
        used: Set[int] = set()
        redo = 0
        # Pass 1: agreeing pairs — the common case (no write in flight).
        for vpa in shadow_slots:
            da = durable.inverse_cells.get(vpa)
            if (da is not None and da in failed and da not in linked
                    and durable.pointer_cells.get(da) == vpa):
                self.links.restore(da, vpa)
                linked.add(da)
                used.add(vpa)
        # Pass 2: the inverse pointer is the authority; a disagreeing
        # pointer cell was torn mid-switch and is redone.
        for vpa in shadow_slots:
            if vpa in used:
                continue
            da = durable.inverse_cells.get(vpa)
            if da is None or da not in failed or da in linked:
                continue
            self.links.restore(da, vpa, redo_pointer=True)
            linked.add(da)
            used.add(vpa)
            redo += 1
        # Pass 3: a pointer cell naming an unclaimed shadow slot is a link
        # whose inverse write never landed; complete it.
        slot_set = set(shadow_slots)
        for da in sorted(failed - linked):
            vpa = durable.pointer_cells.get(da)
            if vpa is None or vpa in used or vpa not in slot_set:
                continue
            self.links.restore(da, vpa, redo_inverse=True)
            linked.add(da)
            used.add(vpa)
            redo += 1
        self.spares.add(pa for pa in shadow_slots if pa not in used)
        self.spares.total_acquired = len(shadow_slots)
        self.spares.total_consumed = len(used)
        # Failed blocks with no durable link were in flight at the crash;
        # they re-enter the normal failure path (and may re-suspend).
        for da in sorted(failed - linked):
            self.handle_new_failure(da, FaultContext.INTERNAL)
        # Re-flatten every chain; this re-performs interrupted switches.
        for da in self.links.linked_blocks():
            self.resolver.reduce(da)
        self.recoveries += 1
        self.recovery_redo_writes += redo

    # ------------------------------------------------------------- reporting

    def make_checker(self, software_pas: Callable[[], List[int]],
                     failed_blocks: Callable[[], List[int]],
                     map_many_fn: Optional[
                         Callable[[np.ndarray], np.ndarray]] = None,
                     failed_mask_fn: Optional[
                         Callable[[], np.ndarray]] = None) -> InvariantChecker:
        """Build an invariant checker over this reviver's live state.

        Passing ``map_many_fn`` + ``failed_mask_fn`` selects the checker's
        vectorized sweeps (identical errors, numpy speed).
        """
        return InvariantChecker(self.links, self.spares, self.map_fn,
                                self.is_failed, software_pas, failed_blocks,
                                map_many_fn=map_many_fn,
                                failed_mask_fn=failed_mask_fn)

    def stats(self) -> dict:
        """Counters for experiment reports."""
        return {
            "pages_acquired": self.ledger.pages_acquired,
            "spares_available": self.spares.available,
            "linked_blocks": len(self.links),
            "chain_switches": self.resolver.switches,
            "switch_scenarios": dict(self.switch_scenarios),
            "hidden_failures": self.hidden_failures,
            "os_reports": self.reporter.report_count,
            "victimized_writes": self.reporter.victimized_count,
            "recoveries": self.recoveries,
            "recovery_redo_writes": self.recovery_redo_writes,
        }
