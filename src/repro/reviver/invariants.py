"""Runtime checkers for the paper's Theorems 1-3.

* **Theorem 1** — every software-accessible failed block is backed by a
  healthy shadow block, one step away.
* **Theorem 2** — every unlinked PA in the reserved pages reaches a healthy
  block directly or through one chain step.
* **Theorem 3** — a wear-leveling scheme never migrates data into a block on
  a PA-DA loop (equivalently: a loop block is only mapped by its own
  unaccessible virtual shadow PA).

The checkers walk the full reviver state and raise
:class:`~repro.errors.ProtocolError` on any violation.  They are wired into
the controller behind ``ReviverConfig.check_invariants`` (tests and the
exact engine enable them; the fast engine runs its subset at sampling
points).

Every ``check_*`` method is callable standalone: a failed block with no
link raises a :class:`~repro.errors.ProtocolError` (never a bare
``TypeError``), whichever method trips over it first.

Two execution paths produce identical errors:

* the **scalar** path needs only per-address callables and works with any
  hand-built state (tests);
* the **vectorized** path — used when the constructor also receives
  ``map_many_fn`` and ``failed_mask_fn`` — evaluates each theorem as numpy
  array sweeps, mirroring the pointer-jumping treatment of the fast
  engine's redirect rebuild.  The checkers run at every sampling point of
  a lifetime simulation, over every software PA and failed block, so the
  per-element Python loop is a hot path worth removing.  When a sweep
  detects a violation, the first offending element (in the scalar path's
  iteration order) is re-examined scalar-style so messages match exactly.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ProtocolError
from .registers import SparePool

try:  # pragma: no cover - exercised implicitly on 3.8+
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]


class LinkView(Protocol):
    """Read interface over failed-DA <-> virtual-shadow-PA links.

    Satisfied by :class:`~repro.reviver.links.LinkTable` and by the fast
    engine's functional link dict adapter.
    """

    def vpa_of(self, da: int) -> Optional[int]:
        """Virtual shadow PA of failed block *da* (None = no link)."""

    def failed_of(self, vpa: int) -> Optional[int]:
        """Failed DA whose inverse pointer names *vpa* (None = unlinked)."""

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The pointer direction as parallel ``(das, vpas)`` int64 arrays."""

    def inverse_as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The inverse direction as parallel ``(vpas, das)`` int64 arrays."""


def _as_int_array(values: Iterable[int]) -> np.ndarray:
    """Int64 array from any iterable, safe for the empty case."""
    return np.asarray(list(values), dtype=np.int64)


class InvariantChecker:
    """Validates Theorems 1-3 and the one-step-chain property."""

    def __init__(self, links: LinkView, spares: SparePool,
                 map_fn: Callable[[int], int],
                 is_failed: Callable[[int], bool],
                 software_pas: Callable[[], Iterable[int]],
                 failed_blocks: Callable[[], Iterable[int]],
                 map_many_fn: Optional[
                     Callable[[np.ndarray], np.ndarray]] = None,
                 failed_mask_fn: Optional[
                     Callable[[], np.ndarray]] = None) -> None:
        self.links = links
        self.spares = spares
        self.map_fn = map_fn
        self.is_failed = is_failed
        self.software_pas = software_pas
        self.failed_blocks = failed_blocks
        self.map_many_fn = map_many_fn
        self.failed_mask_fn = failed_mask_fn

    # ------------------------------------------------------------ full check

    def check_all(self) -> None:
        """Run every invariant; raise on the first violation."""
        self.check_link_consistency()
        self.check_chain_lengths()
        self.check_theorem1()
        self.check_theorem2()
        self.check_theorem3()

    # --------------------------------------------------------------- helpers

    @property
    def vectorized(self) -> bool:
        """Whether the numpy sweep path is available."""
        return (self.map_many_fn is not None
                and self.failed_mask_fn is not None
                and hasattr(self.links, "as_arrays")
                and hasattr(self.links, "inverse_as_arrays"))

    def _require_link(self, da: int) -> int:
        """The virtual shadow PA of *da*; ProtocolError when unlinked."""
        vpa = self.links.vpa_of(da)
        if vpa is None:
            raise ProtocolError(f"failed block {da} has no virtual shadow")
        return vpa

    def _lookup_vpas(self, das: np.ndarray,
                     missing: Callable[[int], str]) -> np.ndarray:
        """Vectorized link lookup; raise *missing(da)* for unlinked blocks."""
        linked_das, linked_vpas = self.links.as_arrays()
        if linked_das.size == 0:
            raise ProtocolError(missing(int(das[0])))
        order = np.argsort(linked_das)
        sorted_das = linked_das[order]
        sorted_vpas = linked_vpas[order]
        pos = np.searchsorted(sorted_das, das)
        pos_clipped = np.minimum(pos, len(sorted_das) - 1)
        found = sorted_das[pos_clipped] == das
        if not np.all(found):
            raise ProtocolError(missing(int(das[np.argmin(found)])))
        return sorted_vpas[pos_clipped]

    # ------------------------------------------------------------ components

    def check_link_consistency(self) -> None:
        """Every failed block is linked and both link directions agree."""
        if self.vectorized:
            self._check_link_consistency_vec()
            return
        for da in self.failed_blocks():
            vpa = self._require_link(da)
            back = self.links.failed_of(vpa)
            if back != da:
                raise ProtocolError(
                    f"inverse pointer of PA {vpa} names {back}, expected {da}")

    def _check_link_consistency_vec(self) -> None:
        failed = _as_int_array(self.failed_blocks())
        if failed.size == 0:
            return
        vpas = self._lookup_vpas(
            failed, lambda da: f"failed block {da} has no virtual shadow")
        inv_vpas, inv_das = self.links.inverse_as_arrays()
        agree = np.zeros(len(failed), dtype=bool)
        if inv_vpas.size:
            order = np.argsort(inv_vpas)
            sorted_vpas = inv_vpas[order]
            sorted_das = inv_das[order]
            pos = np.minimum(np.searchsorted(sorted_vpas, vpas),
                             len(sorted_vpas) - 1)
            agree = (sorted_vpas[pos] == vpas) & (sorted_das[pos] == failed)
        if not np.all(agree):
            index = int(np.argmin(agree))
            da, vpa = int(failed[index]), int(vpas[index])
            back = self.links.failed_of(vpa)
            raise ProtocolError(
                f"inverse pointer of PA {vpa} names {back}, expected {da}")

    def check_chain_lengths(self) -> None:
        """No chain is longer than one step."""
        if self.vectorized:
            self._check_chain_lengths_vec()
            return
        for da in self.failed_blocks():
            vpa = self._require_link(da)
            target = self.map_fn(vpa)
            if target != da and self.is_failed(target):
                raise ProtocolError(
                    f"two-step chain: {da} -> PA {vpa} -> failed {target}")

    def _check_chain_lengths_vec(self) -> None:
        assert self.map_many_fn is not None and self.failed_mask_fn is not None
        failed = _as_int_array(self.failed_blocks())
        if failed.size == 0:
            return
        vpas = self._lookup_vpas(
            failed, lambda da: f"failed block {da} has no virtual shadow")
        targets = self.map_many_fn(vpas)
        mask = self.failed_mask_fn()
        bad = (targets != failed) & mask[targets]
        if np.any(bad):
            index = int(np.argmax(bad))
            raise ProtocolError(
                f"two-step chain: {int(failed[index])} -> "
                f"PA {int(vpas[index])} -> failed {int(targets[index])}")

    def check_theorem1(self) -> None:
        """Software-accessible failed blocks have healthy one-step shadows."""
        if self.vectorized:
            self._check_theorem1_vec()
            return
        for pa in self.software_pas():
            da = self.map_fn(pa)
            if not self.is_failed(da):
                continue
            vpa = self.links.vpa_of(da)
            if vpa is None:
                raise ProtocolError(f"accessible failed block {da} unlinked")
            shadow = self.map_fn(vpa)
            if shadow == da or self.is_failed(shadow):
                raise ProtocolError(
                    f"accessible failed block {da} lacks a healthy shadow "
                    f"(PA {pa} -> {da} -> PA {vpa} -> {shadow})")

    def _check_theorem1_vec(self) -> None:
        assert self.map_many_fn is not None and self.failed_mask_fn is not None
        pas = _as_int_array(self.software_pas())
        if pas.size == 0:
            return
        das = self.map_many_fn(pas)
        mask = self.failed_mask_fn()
        hit = mask[das]
        if not np.any(hit):
            return
        pas, das = pas[hit], das[hit]
        vpas = self._lookup_vpas(
            das, lambda da: f"accessible failed block {da} unlinked")
        shadows = self.map_many_fn(vpas)
        bad = (shadows == das) | mask[shadows]
        if np.any(bad):
            index = int(np.argmax(bad))
            raise ProtocolError(
                f"accessible failed block {int(das[index])} lacks a healthy "
                f"shadow (PA {int(pas[index])} -> {int(das[index])} -> "
                f"PA {int(vpas[index])} -> {int(shadows[index])})")

    def check_theorem2(self) -> None:
        """Unlinked spare PAs reach a healthy block in <= 1 chain step."""
        if self.vectorized:
            self._check_theorem2_vec()
            return
        for vpa in self.spares.peek_all():
            self._check_spare(vpa)

    def _check_spare(self, vpa: int) -> None:
        """Scalar Theorem 2 check of one unlinked spare PA."""
        da = self.map_fn(vpa)
        if not self.is_failed(da):
            return
        link = self.links.vpa_of(da)
        if link is None:
            raise ProtocolError(f"spare PA {vpa} maps to unlinked failed {da}")
        shadow = self.map_fn(link)
        if shadow == da:
            # The failed block is on a loop with its own VPA; the spare
            # would have no healthy backing.  Theorem 2 forbids this.
            raise ProtocolError(
                f"spare PA {vpa} maps to loop block {da}")
        if self.is_failed(shadow):
            raise ProtocolError(
                f"spare PA {vpa} indirectly reaches failed block {shadow}")

    def _check_theorem2_vec(self) -> None:
        assert self.map_many_fn is not None and self.failed_mask_fn is not None
        spares = _as_int_array(self.spares.peek_all())
        if spares.size == 0:
            return
        das = self.map_many_fn(spares)
        mask = self.failed_mask_fn()
        hit = mask[das]
        if not np.any(hit):
            return
        # Rare path: some spare maps onto a failed block.  Re-examine the
        # suspects scalar-style, in register order, for exact messages.
        for vpa in spares[hit]:
            self._check_spare(int(vpa))

    def check_theorem3(self) -> None:
        """Loop blocks are mapped only by their own virtual shadow PA.

        The mapping is a bijection, so it suffices to confirm that the PA
        mapping onto each loop block *is* the loop's VPA — which is neither
        software-accessible nor an allocatable spare.
        """
        if self.vectorized:
            self._check_theorem3_vec()
            return
        for da in self.failed_blocks():
            vpa = self._require_link(da)
            if self.map_fn(vpa) == da and vpa in self.spares:
                raise ProtocolError(
                    f"loop block {da} is reachable through spare PA {vpa}")

    def _check_theorem3_vec(self) -> None:
        assert self.map_many_fn is not None
        failed = _as_int_array(self.failed_blocks())
        if failed.size == 0:
            return
        vpas = self._lookup_vpas(
            failed, lambda da: f"failed block {da} has no virtual shadow")
        loops = self.map_many_fn(vpas) == failed
        if not np.any(loops):
            return
        spare_arr = _as_int_array(self.spares.peek_all())
        reachable = np.isin(vpas[loops], spare_arr)
        if np.any(reachable):
            index = int(np.argmax(reachable))
            da = int(failed[loops][index])
            vpa = int(vpas[loops][index])
            raise ProtocolError(
                f"loop block {da} is reachable through spare PA {vpa}")
