"""Runtime checkers for the paper's Theorems 1-3.

* **Theorem 1** — every software-accessible failed block is backed by a
  healthy shadow block, one step away.
* **Theorem 2** — every unlinked PA in the reserved pages reaches a healthy
  block directly or through one chain step.
* **Theorem 3** — a wear-leveling scheme never migrates data into a block on
  a PA-DA loop (equivalently: a loop block is only mapped by its own
  unaccessible virtual shadow PA).

The checkers walk the full reviver state and raise
:class:`~repro.errors.ProtocolError` on any violation.  They are wired into
the controller behind ``ReviverConfig.check_invariants`` (tests and the
exact engine enable them; the fast engine runs them at sampling points).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import ProtocolError
from .links import LinkTable
from .registers import SparePool


class InvariantChecker:
    """Validates Theorems 1-3 and the one-step-chain property."""

    def __init__(self, links: LinkTable, spares: SparePool,
                 map_fn: Callable[[int], int],
                 is_failed: Callable[[int], bool],
                 software_pas: Callable[[], Iterable[int]],
                 failed_blocks: Callable[[], Iterable[int]]) -> None:
        self.links = links
        self.spares = spares
        self.map_fn = map_fn
        self.is_failed = is_failed
        self.software_pas = software_pas
        self.failed_blocks = failed_blocks

    # ------------------------------------------------------------ full check

    def check_all(self) -> None:
        """Run every invariant; raise on the first violation."""
        self.check_link_consistency()
        self.check_chain_lengths()
        self.check_theorem1()
        self.check_theorem2()
        self.check_theorem3()

    # ------------------------------------------------------------ components

    def check_link_consistency(self) -> None:
        """Every failed block is linked and both link directions agree."""
        for da in self.failed_blocks():
            vpa = self.links.vpa_of(da)
            if vpa is None:
                raise ProtocolError(f"failed block {da} has no virtual shadow")
            back = self.links.failed_of(vpa)
            if back != da:
                raise ProtocolError(
                    f"inverse pointer of PA {vpa} names {back}, expected {da}")

    def check_chain_lengths(self) -> None:
        """No chain is longer than one step."""
        for da in self.failed_blocks():
            vpa = self.links.vpa_of(da)
            target = self.map_fn(vpa)
            if target != da and self.is_failed(target):
                raise ProtocolError(
                    f"two-step chain: {da} -> PA {vpa} -> failed {target}")

    def check_theorem1(self) -> None:
        """Software-accessible failed blocks have healthy one-step shadows."""
        for pa in self.software_pas():
            da = self.map_fn(pa)
            if not self.is_failed(da):
                continue
            vpa = self.links.vpa_of(da)
            if vpa is None:
                raise ProtocolError(f"accessible failed block {da} unlinked")
            shadow = self.map_fn(vpa)
            if shadow == da or self.is_failed(shadow):
                raise ProtocolError(
                    f"accessible failed block {da} lacks a healthy shadow "
                    f"(PA {pa} -> {da} -> PA {vpa} -> {shadow})")

    def check_theorem2(self) -> None:
        """Unlinked spare PAs reach a healthy block in <= 1 chain step."""
        for vpa in self.spares.peek_all():
            da = self.map_fn(vpa)
            if not self.is_failed(da):
                continue
            link = self.links.vpa_of(da)
            if link is None:
                raise ProtocolError(f"spare PA {vpa} maps to unlinked failed {da}")
            shadow = self.map_fn(link)
            if shadow == da:
                # The failed block is on a loop with its own VPA; the spare
                # would have no healthy backing.  Theorem 2 forbids this.
                raise ProtocolError(
                    f"spare PA {vpa} maps to loop block {da}")
            if self.is_failed(shadow):
                raise ProtocolError(
                    f"spare PA {vpa} indirectly reaches failed block {shadow}")

    def check_theorem3(self) -> None:
        """Loop blocks are mapped only by their own virtual shadow PA.

        The mapping is a bijection, so it suffices to confirm that the PA
        mapping onto each loop block *is* the loop's VPA — which is neither
        software-accessible nor an allocatable spare.
        """
        for da in self.failed_blocks():
            vpa = self.links.vpa_of(da)
            if self.map_fn(vpa) == da and vpa in self.spares:
                raise ProtocolError(
                    f"loop block {da} is reachable through spare PA {vpa}")
