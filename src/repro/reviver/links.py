"""The link table: failed blocks, virtual shadows, and inverse pointers.

Logically WL-Reviver stores two kinds of metadata in the PCM itself:

* each failed block stores (in its surviving cells, FREE-p style) the PA of
  its virtual shadow block, plus a status bit saying "this block holds a
  pointer, not data";
* for each virtual shadow PA, an inverse pointer back to the failed block is
  stored in a block of the owning page's pointer section (Figure 4).

The simulator keeps both directions in dictionaries for speed, but every
mutation also emits a :class:`MetadataWrite` record naming the PCM location
written, so the controller can account the (rare) metadata wear and access
cost exactly where the paper says the bits live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProtocolError
from .pages import PageLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.session import TelemetrySession


@dataclass(frozen=True)
class MetadataWrite:
    """One physical metadata update emitted by a link-table mutation."""

    #: ``"pointer"`` = VPA written into a failed block;
    #: ``"inverse"`` = failed DA written into a pointer-section block.
    kind: str
    #: For ``pointer``: the failed block's DA.  For ``inverse``: the PA of
    #: the pointer-section block that holds the entry (the controller
    #: resolves it to a DA through the current mapping).
    location: int
    #: Payload — the virtual shadow PA this record stores (both kinds).
    vpa: Optional[int] = None
    #: Payload — the failed DA an ``inverse`` record stores.
    da: Optional[int] = None


class LinkTable:
    """Bidirectional failed-DA <-> virtual-shadow-PA links."""

    def __init__(self, ledger: PageLedger,
                 telem: Optional["TelemetrySession"] = None) -> None:
        self.ledger = ledger
        self._pointer: Dict[int, int] = {}   # failed DA -> VPA
        self._inverse: Dict[int, int] = {}   # VPA -> failed DA
        #: Metadata writes not yet drained by the controller.
        self.pending_writes: List[MetadataWrite] = []
        #: Telemetry hook; attach via repro.telemetry only.
        self.telem = telem

    # ----------------------------------------------------------------- reads

    def vpa_of(self, da: int) -> Optional[int]:
        """Virtual shadow PA recorded in failed block *da* (None = no link)."""
        return self._pointer.get(da)

    def failed_of(self, vpa: int) -> Optional[int]:
        """Failed DA the inverse pointer of *vpa* names (None = unlinked)."""
        return self._inverse.get(vpa)

    def is_linked_vpa(self, pa: int) -> bool:
        """Whether *pa* is currently some failed block's virtual shadow."""
        return pa in self._inverse

    def linked_blocks(self) -> List[int]:
        """All failed DAs that own a link (ascending)."""
        return sorted(self._pointer)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pointer direction as parallel ``(das, vpas)`` int64 arrays."""
        das = np.fromiter(self._pointer.keys(), dtype=np.int64,
                          count=len(self._pointer))
        vpas = np.fromiter(self._pointer.values(), dtype=np.int64,
                           count=len(self._pointer))
        return das, vpas

    def inverse_as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse direction as parallel ``(vpas, das)`` int64 arrays."""
        vpas = np.fromiter(self._inverse.keys(), dtype=np.int64,
                           count=len(self._inverse))
        das = np.fromiter(self._inverse.values(), dtype=np.int64,
                          count=len(self._inverse))
        return vpas, das

    def __len__(self) -> int:
        return len(self._pointer)

    # ------------------------------------------------------------- mutations

    def link(self, da: int, vpa: int) -> None:
        """Create the link ``da -> vpa`` (both directions, both writes)."""
        if da in self._pointer:
            raise ProtocolError(f"block {da} is already linked")
        if vpa in self._inverse:
            raise ProtocolError(f"PA {vpa} is already a virtual shadow")
        self._pointer[da] = vpa
        self._inverse[vpa] = da
        self.pending_writes.append(MetadataWrite("pointer", da, vpa=vpa))
        self.pending_writes.append(
            MetadataWrite("inverse", self.ledger.pointer_home(vpa),
                          vpa=vpa, da=da))
        if self.telem is not None:
            self.telem.emit("link-install", da=da, vpa=vpa)
            self.telem.emit("inverse-rewrite", da=da, vpa=vpa,
                            home=self.ledger.pointer_home(vpa))

    def switch(self, da_a: int, da_b: int) -> None:
        """Exchange the virtual shadows of two failed blocks.

        This is the paper's chain-reduction primitive (Figures 2(d), 3(b)):
        both failed blocks rewrite their pointer cells and both inverse
        pointers are updated.
        """
        try:
            vpa_a = self._pointer[da_a]
            vpa_b = self._pointer[da_b]
        except KeyError as exc:
            raise ProtocolError("switch() requires two linked blocks") from exc
        self._pointer[da_a], self._pointer[da_b] = vpa_b, vpa_a
        self._inverse[vpa_a], self._inverse[vpa_b] = da_b, da_a
        self.pending_writes.append(MetadataWrite("pointer", da_a, vpa=vpa_b))
        self.pending_writes.append(MetadataWrite("pointer", da_b, vpa=vpa_a))
        self.pending_writes.append(
            MetadataWrite("inverse", self.ledger.pointer_home(vpa_a),
                          vpa=vpa_a, da=da_b))
        self.pending_writes.append(
            MetadataWrite("inverse", self.ledger.pointer_home(vpa_b),
                          vpa=vpa_b, da=da_a))
        if self.telem is not None:
            self.telem.emit("pointer-switch", da_a=da_a, da_b=da_b,
                            vpa_a=vpa_a, vpa_b=vpa_b)
            self.telem.emit("inverse-rewrite", da=da_b, vpa=vpa_a,
                            home=self.ledger.pointer_home(vpa_a))
            self.telem.emit("inverse-rewrite", da=da_a, vpa=vpa_b,
                            home=self.ledger.pointer_home(vpa_b))

    def restore(self, da: int, vpa: int, redo_pointer: bool = False,
                redo_inverse: bool = False) -> None:
        """Reinstall a link recovered from the in-PCM metadata scan.

        Recovery (Section III-B's reboot path) rebuilds the table from the
        bits already sitting in the PCM, so restoring a link emits *no*
        writes — except when a torn update left one side stale:
        ``redo_pointer`` / ``redo_inverse`` re-emit that single record so
        the controller can complete the interrupted operation.
        """
        if da in self._pointer:
            raise ProtocolError(f"block {da} is already linked")
        if vpa in self._inverse:
            raise ProtocolError(f"PA {vpa} is already a virtual shadow")
        self._pointer[da] = vpa
        self._inverse[vpa] = da
        if redo_pointer:
            self.pending_writes.append(MetadataWrite("pointer", da, vpa=vpa))
        if redo_inverse:
            self.pending_writes.append(
                MetadataWrite("inverse", self.ledger.pointer_home(vpa),
                              vpa=vpa, da=da))
        if self.telem is not None:
            self.telem.emit("link-restore", da=da, vpa=vpa,
                            redo_pointer=redo_pointer,
                            redo_inverse=redo_inverse)
            if redo_inverse:
                self.telem.emit("inverse-rewrite", da=da, vpa=vpa,
                                home=self.ledger.pointer_home(vpa))

    def drain_writes(self) -> List[MetadataWrite]:
        """Return and clear the pending metadata writes."""
        writes, self.pending_writes = self.pending_writes, []
        return writes
