"""Block-level state definitions and a debugging view.

The chip keeps block state in flat numpy arrays for speed;
:class:`BlockView` packages one block's state into an object for
introspection, logging, and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BlockState(enum.IntEnum):
    """Lifecycle of a PCM block as seen by the memory controller."""

    #: Block stores regular data and services accesses.
    HEALTHY = 0
    #: Block accumulated more cell faults than its ECC can correct; in
    #: WL-Reviver it stores a pointer to its virtual shadow block instead of
    #: data (the paper's per-block status bit is set).
    FAILED = 1


@dataclass(frozen=True)
class BlockView:
    """Read-only snapshot of a single block, for debugging and tests."""

    da: int
    state: BlockState
    wear: int
    #: Wear at which the block becomes uncorrectable under its ECC scheme,
    #: or ``None`` if the fault model does not expose it.
    threshold: Optional[int] = None
    #: Virtual shadow block PA recorded in the block (failed blocks only).
    pointer_pa: Optional[int] = None

    @property
    def is_failed(self) -> bool:
        """Convenience flag mirroring :class:`BlockState`."""
        return self.state is BlockState.FAILED

    @property
    def remaining(self) -> Optional[int]:
        """Writes left before the block fails, when the threshold is known."""
        if self.threshold is None:
            return None
        return max(0, self.threshold - self.wear)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.pointer_pa is not None:
            extra = f" -> vpa {self.pointer_pa}"
        return f"Block(da={self.da}, {self.state.name}, wear={self.wear}{extra})"
