"""PCM device substrate: geometry, endurance model, and the chip simulator.

This package models the phase-change-memory hardware the paper assumes:

* 64 B memory blocks (one last-level cacheline, one 512-bit ECP group);
* per-cell write endurance drawn from a normal distribution (mean 1e8,
  lifetime CoV 0.2 in the paper; scaled down by default — see
  :class:`repro.config.PCMConfig`);
* per-block wear counters and failure detection on writes.

The per-cell model is realized through *order statistics*: a block protected
by an ECC scheme that corrects ``c`` cell faults becomes uncorrectable when
its ``(c+1)``-th cell dies, so we sample the first ``k`` order statistics of
each block's 512 cell lifetimes directly instead of tracking 512 cells per
block (see :mod:`repro.pcm.endurance`).
"""

from .geometry import AddressGeometry
from .endurance import EnduranceModel, sample_failure_times
from .block import BlockState
from .chip import PCMChip

__all__ = [
    "AddressGeometry",
    "EnduranceModel",
    "sample_failure_times",
    "BlockState",
    "PCMChip",
]
