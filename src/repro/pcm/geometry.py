"""Address geometry: blocks, pages, and the PA/DA address spaces.

Terminology (follows the paper, Section I-B):

* **DA** (device address): identifies a physical memory block on the chip.
  A block is persistently identified by its DA.
* **PA** (physical address, in the OS sense): the address software uses.
  The wear-leveling scheme maintains the PA-to-DA mapping.
* **Page**: the OS allocation unit; a contiguous run of PAs
  (64 with paper defaults).

:class:`AddressGeometry` centralizes every conversion between these spaces
so no module hand-rolls the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import AddressError
from ..units import blocks_per_page


@dataclass(frozen=True)
class AddressGeometry:
    """Immutable description of the chip's address layout."""

    num_blocks: int
    block_bytes: int = 64
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise AddressError("num_blocks must be positive")
        if self.num_blocks % self.blocks_per_page:
            raise AddressError("num_blocks must be a whole number of pages")

    @property
    def blocks_per_page(self) -> int:
        """Number of block addresses per OS page."""
        return blocks_per_page(self.page_bytes, self.block_bytes)

    @property
    def num_pages(self) -> int:
        """Number of OS pages covering the block address space."""
        return self.num_blocks // self.blocks_per_page

    # ---------------------------------------------------------------- checks

    def check_block(self, address: int) -> int:
        """Validate a block address (PA or DA) and return it."""
        if not 0 <= address < self.num_blocks:
            raise AddressError(
                f"block address {address} out of range [0, {self.num_blocks})")
        return address

    def check_page(self, page: int) -> int:
        """Validate a page number and return it."""
        if not 0 <= page < self.num_pages:
            raise AddressError(f"page {page} out of range [0, {self.num_pages})")
        return page

    # --------------------------------------------------------- PA <-> page

    def page_of(self, pa: int) -> int:
        """OS page containing physical address *pa*."""
        return self.check_block(pa) // self.blocks_per_page

    def offset_in_page(self, pa: int) -> int:
        """Index of *pa* within its page (0..blocks_per_page-1)."""
        return self.check_block(pa) % self.blocks_per_page

    def page_base(self, page: int) -> int:
        """First PA of *page*."""
        return self.check_page(page) * self.blocks_per_page

    def page_range(self, page: int) -> Tuple[int, int]:
        """Half-open PA range ``(start, end)`` of *page*."""
        base = self.page_base(page)
        return base, base + self.blocks_per_page

    def pas_of_page(self, page: int) -> Iterator[int]:
        """Iterate the PAs belonging to *page* in ascending order."""
        start, end = self.page_range(page)
        return iter(range(start, end))

    def split(self, pa: int) -> Tuple[int, int]:
        """Return ``(page, offset)`` for *pa*."""
        self.check_block(pa)
        return divmod(pa, self.blocks_per_page)

    def join(self, page: int, offset: int) -> int:
        """Inverse of :meth:`split`."""
        self.check_page(page)
        if not 0 <= offset < self.blocks_per_page:
            raise AddressError(f"offset {offset} out of range")
        return page * self.blocks_per_page + offset

    # --------------------------------------------------------- vector forms

    def pages_of(self, pas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`page_of` (no bounds check)."""
        return pas // self.blocks_per_page

    def offsets_of(self, pas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`offset_in_page` (no bounds check)."""
        return pas % self.blocks_per_page
