"""Per-block endurance model through cell-lifetime order statistics.

The paper's setup (Section IV-A): each PCM cell sustains a number of writes
drawn from a normal distribution (mean 1e8, lifetime CoV 0.2 to model process
variation).  A 64 B block is one 512-bit ECP group; an ECC scheme correcting
``c`` cell faults keeps the block usable until its ``(c+1)``-th cell dies.

Tracking 512 cells x millions of blocks individually is wasteful: the only
quantities the simulation ever consumes are, per block, the write counts at
which the 1st, 2nd, ..., k-th cell die — i.e. the first *k order statistics*
of 512 i.i.d. normal lifetimes (k is small: 7 for ECP6, a couple dozen for
PAYG with a deep pool).  We sample these directly:

1. generate the first k order statistics ``U_(1) <= ... <= U_(k)`` of ``n``
   i.i.d. Uniform(0,1) variables with the classic sequential scheme

   ``U_(1) = 1 - V_1^(1/n)``,
   ``U_(i) = 1 - (1 - U_(i-1)) * V_i^(1/(n-i+1))``,

   where the ``V_i`` are independent Uniform(0,1) draws (this is the standard
   record-value construction; each step is vectorized over all blocks);
2. map through the normal quantile function:
   ``T_(i) = mean + sd * Phi^-1(U_(i))``.

The result is an exact sample of the joint distribution of the first k cell
failure times of every block, at cost O(num_blocks * k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng


def sample_failure_times(num_blocks: int,
                         cells_per_block: int,
                         mean: float,
                         cov: float,
                         k: int,
                         rng: SeedLike = None) -> np.ndarray:
    """Sample the first *k* cell failure times for every block.

    Parameters
    ----------
    num_blocks:
        Number of blocks to sample.
    cells_per_block:
        ``n``, the number of cells per block (512 for a 64 B block).
    mean, cov:
        Mean and coefficient of variation of the per-cell lifetime normal.
    k:
        How many order statistics (cell deaths) to materialize per block.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(num_blocks, k)``; entry ``[b, i]`` is the
        block-write count at which block *b*'s ``(i+1)``-th cell dies.  Rows
        are non-decreasing.  Values are clipped to at least 1.
    """
    if k <= 0:
        raise ConfigurationError("k must be positive")
    if k > cells_per_block:
        raise ConfigurationError(
            f"cannot take {k} order statistics of {cells_per_block} cells")
    generator = make_rng(rng)
    n = cells_per_block
    uniforms = np.empty((num_blocks, k), dtype=np.float64)
    # Sequential minima construction, vectorized across blocks.
    previous = np.zeros(num_blocks, dtype=np.float64)
    for i in range(k):
        v = generator.random(num_blocks)
        previous = 1.0 - (1.0 - previous) * v ** (1.0 / (n - i))
        uniforms[:, i] = previous
    # Guard against a pathological 1.0 from floating-point round-off.
    np.clip(uniforms, 1e-15, 1.0 - 1e-15, out=uniforms)
    sd = mean * cov
    lifetimes = mean + sd * stats.norm.ppf(uniforms)
    lifetimes = np.maximum(np.rint(lifetimes), 1.0)
    return lifetimes.astype(np.int64)


@dataclass
class EnduranceModel:
    """Lazy owner of a chip's failure-time matrix.

    ECC schemes index into :attr:`failure_times` to derive per-block
    uncorrectable thresholds; PAYG walks along a row as it allocates
    overflow entries.
    """

    num_blocks: int
    cells_per_block: int = 512
    mean: float = 4e3
    cov: float = 0.2
    max_order: int = 24
    seed: int = 1

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError("mean endurance must be positive")
        if not 0.0 <= self.cov < 1.0:
            raise ConfigurationError("cov must be in [0, 1)")
        self._failure_times: np.ndarray = sample_failure_times(
            self.num_blocks, self.cells_per_block, self.mean, self.cov,
            self.max_order, rng=self.seed)

    @property
    def failure_times(self) -> np.ndarray:
        """``(num_blocks, max_order)`` matrix of cell death times."""
        return self._failure_times

    def nth_failure(self, order: int) -> np.ndarray:
        """Write counts at which each block's ``order``-th cell dies (1-based)."""
        if not 1 <= order <= self.max_order:
            raise ConfigurationError(
                f"order {order} outside materialized range [1, {self.max_order}]")
        return self._failure_times[:, order - 1]

    def uncorrectable_threshold(self, capacity: int) -> np.ndarray:
        """Per-block wear at which an ECC correcting *capacity* faults gives up.

        With capacity ``c`` the block is uncorrectable once cell ``c+1`` dies.
        """
        return self.nth_failure(capacity + 1)
