"""The PCM chip simulator.

:class:`PCMChip` owns per-block wear counters and failure flags.  Failure
semantics follow the paper's write-verify model: wear-out is detected when a
*write* is serviced (reads of previously written data succeed; the paper
argues write errors are the recoverable kind and WL-Reviver victimizes writes
accordingly).

The chip delegates the "when does a block become uncorrectable" decision to
an error-correction scheme (:mod:`repro.ecc`): the scheme exposes a per-block
threshold (derived from the endurance order statistics) and may *extend* a
threshold on demand (PAYG allocating overflow entries from its global pool).

Content tracking: for correctness tests and the exact engine the chip can
record an integer *tag* per block standing in for the 64 B payload.  Tags let
tests assert the fundamental invariant of wear leveling — a PA always reads
back the last tag written to it, wherever the data migrated — without
simulating actual bytes.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from ..errors import AddressError, WriteFault
from .block import BlockState, BlockView
from .geometry import AddressGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..ecc.base import ErrorCorrection
    from ..faultinject.hooks import ChipHooks

#: Tag value meaning "no valid data stored".
EMPTY_TAG = -1


class PCMChip:
    """Simulated PCM device: wear, failure state, and optional contents."""

    def __init__(self, geometry: AddressGeometry, ecc: "ErrorCorrection",
                 track_contents: bool = False) -> None:
        self.geometry = geometry
        self.ecc = ecc
        n = geometry.num_blocks
        self.wear = np.zeros(n, dtype=np.int64)
        self.failed = np.zeros(n, dtype=bool)
        self.contents: Optional[np.ndarray] = None
        if track_contents:
            self.contents = np.full(n, EMPTY_TAG, dtype=np.int64)
        #: Total physical writes applied to the device (including migrations).
        self.total_device_writes = 0
        #: Fault-injection hooks; ``None`` (the default) means no injection.
        #: Only :mod:`repro.faultinject` may set this.
        self.inject: Optional["ChipHooks"] = None

    # ------------------------------------------------------------ inspection

    @property
    def num_blocks(self) -> int:
        """Total device blocks."""
        return self.geometry.num_blocks

    @property
    def failed_count(self) -> int:
        """Number of blocks currently failed."""
        return int(self.failed.sum())

    def failed_fraction(self) -> float:
        """Fraction of device blocks that have failed."""
        return self.failed_count / self.num_blocks

    def is_failed(self, da: int) -> bool:
        """Whether block *da* is failed."""
        return bool(self.failed[self.geometry.check_block(da)])

    def wear_of(self, da: int) -> int:
        """Wear counter of block *da*."""
        return int(self.wear[self.geometry.check_block(da)])

    def view(self, da: int) -> BlockView:
        """Debug snapshot of block *da*."""
        self.geometry.check_block(da)
        state = BlockState.FAILED if self.failed[da] else BlockState.HEALTHY
        return BlockView(da=da, state=state, wear=int(self.wear[da]),
                         threshold=int(self.ecc.threshold(da)))

    # ---------------------------------------------------------- single access

    def write(self, da: int, tag: Optional[int] = None) -> None:
        """Apply one write to block *da*.

        Raises :class:`WriteFault` when the write wears the block past what
        its ECC scheme can correct; the block is marked failed and the data
        is not stored.  Writing to an already-failed block is a protocol
        error for data (the controller must redirect), so it also faults —
        metadata writes to failed blocks go through
        :meth:`write_metadata` instead.
        """
        self.geometry.check_block(da)
        if self.failed[da]:
            raise WriteFault(da, f"write to failed block {da}")
        self.wear[da] += 1
        self.total_device_writes += 1
        while self.wear[da] >= self.ecc.threshold(da):
            if not self.ecc.try_extend(da):
                self.failed[da] = True
                if self.contents is not None:
                    self.contents[da] = EMPTY_TAG
                raise WriteFault(da)
        if tag is not None and self.contents is not None:
            self.contents[da] = tag

    def read(self, da: int) -> int:
        """Read the content tag of block *da* (``EMPTY_TAG`` if untracked).

        Raises :class:`~repro.errors.UncorrectableError` when an injected
        transient read error is armed for *da* (retryable: the data is
        intact, the controller re-reads).
        """
        self.geometry.check_block(da)
        if self.inject is not None:
            self.inject.on_read(da)
        if self.contents is None:
            return EMPTY_TAG
        return int(self.contents[da])

    def write_metadata(self, da: int) -> None:
        """Record a metadata write into a *failed* block.

        Failed blocks still hold the pointer to their virtual shadow block
        (stored in the block's surviving cells with a strong code, as in
        FREE-p/Zombie).  Those writes touch worn-out hardware that is already
        accounted dead, so they update no wear statistics; the call exists so
        access accounting can still count the PCM access.
        """
        self.geometry.check_block(da)
        self.total_device_writes += 1

    # ----------------------------------------------------------- batched API

    def write_many(self, das: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Apply ``counts[i]`` writes to block ``das[i]`` (vectorized).

        Wear from the whole batch is applied first and threshold crossings
        are resolved afterwards, so a block that fails mid-batch absorbs the
        remainder of its batch traffic — the documented approximation of the
        fast engine (batch sizes are small relative to endurance).

        Returns the array of device addresses that *newly* failed during
        this batch, in ascending order.
        """
        das = np.asarray(das, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if das.shape != counts.shape:
            raise AddressError("das and counts must have identical shapes")
        if das.size == 0:
            return np.empty(0, dtype=np.int64)
        np.add.at(self.wear, das, counts)
        self.total_device_writes += int(counts.sum())
        return self._resolve_threshold_crossings(np.unique(das))

    def _resolve_threshold_crossings(self, candidates: np.ndarray) -> np.ndarray:
        """Extend-or-fail every candidate block whose wear crossed its threshold."""
        thresholds = self.ecc.thresholds
        hot = candidates[(~self.failed[candidates])
                         & (self.wear[candidates] >= thresholds[candidates])]
        newly_failed = []
        for da in hot.tolist():
            while self.wear[da] >= self.ecc.threshold(da):
                if not self.ecc.try_extend(da):
                    self.failed[da] = True
                    if self.contents is not None:
                        self.contents[da] = EMPTY_TAG
                    newly_failed.append(da)
                    break
        return np.asarray(sorted(newly_failed), dtype=np.int64)

    # -------------------------------------------------------------- statistics

    def wear_cov(self, include_failed: bool = True) -> float:
        """Coefficient of variation of per-block wear (leveling quality)."""
        wear = self.wear if include_failed else self.wear[~self.failed]
        mean = float(wear.mean()) if wear.size else 0.0
        if mean == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard, mean of all-zero wear is exactly 0.0
            return 0.0
        return float(wear.std()) / mean
