"""Adapted FREE-p: a pre-reserved remap region hiding failed blocks.

FREE-p (Yoon et al., HPCA 2011) hides a failed block by embedding, in the
failed block's surviving cells, a pointer to a healthy *free slot*.  As
published, it acquires slot space incrementally with OS support and records
slot DAs directly in failed blocks — which a wear-leveling scheme breaks the
moment it migrates slot data (Section I-D, third issue).

The WL-Reviver paper therefore evaluates an *adapted* FREE-p (Section IV-C):
a fixed percentage of the PCM is pre-reserved as the remap region.  Those
slots sit outside the wear-leveling working space (the WL scheme never maps
PAs onto them), so direct DA pointers stay valid.  The cost is the reduced
working space and the hard cliff when slots run out: the next failure is
exposed to the WL scheme, which ceases to function.

This class is pure bookkeeping — slot allocation and link resolution — and
is driven by the simulation engines.  Slot DAs are the top ``reserve``
fraction of the device space; the WL scheme is configured over the remaining
bottom part.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import CapacityExhaustedError, ConfigurationError


class FreePRegion:
    """Slot allocator and failed-block link table for adapted FREE-p."""

    def __init__(self, num_blocks: int, reserve_fraction: float) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ConfigurationError("reserve_fraction must be in [0, 1)")
        self.num_blocks = num_blocks
        self.reserve_fraction = reserve_fraction
        self.reserved_blocks = int(num_blocks * reserve_fraction)
        #: First DA of the remap region; DAs below it form the WL space.
        self.region_base = num_blocks - self.reserved_blocks
        self._next_slot = self.region_base
        #: failed DA -> slot DA currently hiding it.
        self.links: Dict[int, int] = {}
        #: slot DA -> failed DA it serves (reverse map, for slot failures).
        self._reverse: Dict[int, int] = {}

    # -------------------------------------------------------------- capacity

    @property
    def working_blocks(self) -> int:
        """Blocks left to the wear-leveling scheme."""
        return self.region_base

    @property
    def slots_total(self) -> int:
        """Total slots in the remap region."""
        return self.reserved_blocks

    @property
    def slots_remaining(self) -> int:
        """Unlinked slots still available."""
        return self.num_blocks - self._next_slot

    @property
    def exhausted(self) -> bool:
        """True once no free slot remains."""
        return self.slots_remaining == 0

    def is_slot(self, da: int) -> bool:
        """Whether *da* lies inside the remap region."""
        return da >= self.region_base

    # ----------------------------------------------------------------- links

    def link(self, failed_da: int) -> int:
        """Hide *failed_da* behind the next free slot; return the slot DA.

        If *failed_da* is itself a slot that failed while serving another
        block, the served block is re-pointed at the new slot (FREE-p
        rewrites the pointer chain so lookups stay one hop).
        """
        if self.exhausted:
            raise CapacityExhaustedError("FREE-p remap region exhausted")
        slot = self._next_slot
        self._next_slot += 1
        origin = failed_da
        if failed_da in self._reverse:
            # A slot died: relink the original failed block it was serving.
            origin = self._reverse.pop(failed_da)
        self.links[origin] = slot
        self._reverse[slot] = origin
        return slot

    def resolve(self, da: int) -> int:
        """Follow the link of *da* if it has one (always at most one hop)."""
        return self.links.get(da, da)

    def is_linked(self, da: int) -> bool:
        """Whether *da* is a failed block hidden behind a slot."""
        return da in self.links

    def serving(self, slot: int) -> Optional[int]:
        """The failed DA a *slot* serves, or ``None`` if it is free/unused."""
        return self._reverse.get(slot)
