"""No error correction: a block dies with its first cell.

Used by ablation experiments to isolate how much lifetime the ECC layer
itself contributes versus wear leveling and WL-Reviver.
"""

from __future__ import annotations

import numpy as np

from ..pcm.endurance import EnduranceModel
from .base import ErrorCorrection


class NoECC(ErrorCorrection):
    """Threshold equals the first cell-death time; nothing is correctable."""

    def __init__(self, endurance: EnduranceModel) -> None:
        super().__init__(endurance)
        self._thresholds = endurance.nth_failure(1).copy()

    @property
    def thresholds(self) -> np.ndarray:
        return self._thresholds

    def try_extend(self, da: int) -> bool:
        return False

    @property
    def metadata_bits_per_group(self) -> float:
        return 0.0

    @property
    def name(self) -> str:
        return "NoECC"
