"""PAYG — Pay-As-You-Go hard-error correction (Qureshi, MICRO 2011).

Each 512-bit group carries a cheap local ECP1 entry; when a group exhausts
its local correction, further correction entries are allocated on demand
from a *global* pool shared by all groups.  The pool is sized by an average
metadata budget: the WL-Reviver paper adopts PAYG's default of 19.5 bits per
group on average — less than a third of ECP6's 61 bits — with ECP1 (11 bits)
as the local scheme.

Model: block *da*'s threshold starts at its 2nd cell-death time (ECP1).  A
``try_extend`` consumes one pool entry and bumps the threshold to the next
order statistic.  When the pool is empty, or the endurance model has no more
materialized order statistics for the block, the block is uncorrectable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..pcm.endurance import EnduranceModel
from .base import ErrorCorrection
from .ecp import ENTRY_BITS, GROUP_STATUS_BITS

#: Local scheme: ECP1 = one entry + status bit.
LOCAL_BITS = ENTRY_BITS + GROUP_STATUS_BITS
#: A pooled entry needs a tag locating its group in the set it serves; we
#: follow PAYG's GEC entry sizing of roughly 21 bits (10-bit entry + tag).
POOL_ENTRY_BITS = 21


class PAYG(ErrorCorrection):
    """ECP1 locally plus a finite global pool of overflow entries."""

    def __init__(self, endurance: EnduranceModel,
                 avg_bits_per_group: float = 19.5,
                 local_capacity: int = 1) -> None:
        super().__init__(endurance)
        if avg_bits_per_group < LOCAL_BITS:
            raise ConfigurationError(
                f"PAYG budget {avg_bits_per_group} below local cost {LOCAL_BITS}")
        if local_capacity + 1 > endurance.max_order:
            raise ConfigurationError("local capacity exceeds endurance orders")
        self.local_capacity = local_capacity
        self.avg_bits_per_group = avg_bits_per_group
        pool_bits = (avg_bits_per_group - LOCAL_BITS) * endurance.num_blocks
        #: Remaining overflow entries in the global pool.
        self.pool_entries = int(pool_bits // POOL_ENTRY_BITS)
        self.initial_pool_entries = self.pool_entries
        #: Per-block current correction capacity (starts at the local one).
        self._capacity = np.full(endurance.num_blocks, local_capacity,
                                 dtype=np.int32)
        self._thresholds = endurance.uncorrectable_threshold(
            local_capacity).copy()

    @property
    def thresholds(self) -> np.ndarray:
        return self._thresholds

    def capacity_of(self, da: int) -> int:
        """Current correction capacity (local + allocated) of block *da*."""
        return int(self._capacity[da])

    @property
    def pool_used_fraction(self) -> float:
        """Fraction of the global pool already spent."""
        if self.initial_pool_entries == 0:
            return 1.0
        used = self.initial_pool_entries - self.pool_entries
        return used / self.initial_pool_entries

    def try_extend(self, da: int) -> bool:
        """Allocate one overflow entry for *da* from the global pool."""
        if self.pool_entries <= 0:
            return False
        new_capacity = int(self._capacity[da]) + 1
        # Uncorrectable threshold for capacity c is the (c+1)-th cell death;
        # we must have it materialized in the endurance matrix.
        if new_capacity + 1 > self.endurance.max_order:
            return False
        self.pool_entries -= 1
        self._capacity[da] = new_capacity
        self._thresholds[da] = self.endurance.failure_times[da, new_capacity]
        return True

    @property
    def metadata_bits_per_group(self) -> float:
        return self.avg_bits_per_group

    @property
    def name(self) -> str:
        return "PAYG"
