"""Storing pointers inside failed blocks (FREE-p's trick, Section III-B).

WL-Reviver records each failed block's virtual-shadow PA *in the failed
block itself*.  That sounds paradoxical — the block is dead — but a block
is declared failed when it has more stuck-at cells than its ECC corrects
(7+ of 512 for ECP6), leaving hundreds of working cells.  FREE-p shows a
32-bit pointer survives in such a block under **7-modular redundancy**:
each pointer bit is replicated in 7 consecutive cells and decoded by
majority vote, which tolerates up to 3 stuck-at cells *per 7-cell group*.
The WL-Reviver paper adopts the same approach.

This module implements the code bit-exactly over a simulated 512-bit block
with stuck-at faults (a stuck cell reads a fixed value regardless of what
is written), so the framework's "the pointer is recoverable" assumption is
demonstrated rather than asserted.  :class:`StuckAtBlock` doubles as a
small fault-injection substrate for tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng

#: Replication factor of the modular-redundancy code (FREE-p's choice).
REPLICAS = 7
#: Pointer width the paper assumes (Section III-B's example).
POINTER_BITS = 32
#: Cells needed to store one pointer under 7-MR.
CODEWORD_CELLS = REPLICAS * POINTER_BITS


class StuckAtBlock:
    """A block of cells, some permanently stuck at a fixed value.

    PCM's hard faults are stuck-at: the cell keeps returning one value no
    matter what is written (the paper contrasts this with DRAM's transient
    errors).  Writes to healthy cells take effect; writes to stuck cells
    are silently lost, exactly the hardware behaviour the codes fight.
    """

    def __init__(self, cells: int = 512,
                 stuck: Optional[Dict[int, int]] = None) -> None:
        if cells <= 0:
            raise ConfigurationError("cells must be positive")
        self.cells = cells
        self.values = np.zeros(cells, dtype=np.uint8)
        self.stuck: Dict[int, int] = {}
        if stuck:
            for position, value in stuck.items():
                self.stick(position, value)

    def stick(self, position: int, value: int) -> None:
        """Permanently wedge a cell at *value*."""
        if not 0 <= position < self.cells:
            raise ConfigurationError(f"cell {position} out of range")
        self.stuck[position] = value & 1
        self.values[position] = value & 1

    @classmethod
    def with_random_faults(cls, cells: int = 512, faults: int = 8,
                           seed: SeedLike = None) -> "StuckAtBlock":
        """A block with *faults* stuck cells at seeded random positions."""
        rng = derive_rng(seed, "stuck-at")
        block = cls(cells)
        positions = rng.choice(cells, size=min(faults, cells), replace=False)
        for position in positions:
            block.stick(int(position), int(rng.integers(0, 2)))
        return block

    def write_bits(self, start: int, bits: np.ndarray) -> None:
        """Write a bit vector at *start*; stuck cells ignore the write."""
        end = start + len(bits)
        if not 0 <= start <= end <= self.cells:
            raise ConfigurationError("write outside the block")
        for offset, bit in enumerate(bits):
            position = start + offset
            if position in self.stuck:
                continue
            self.values[position] = bit & 1

    def read_bits(self, start: int, count: int) -> np.ndarray:
        """Read *count* cells from *start* (stuck cells return their value)."""
        if not 0 <= start <= start + count <= self.cells:
            raise ConfigurationError("read outside the block")
        return self.values[start:start + count].copy()

    @property
    def fault_count(self) -> int:
        """Number of stuck cells."""
        return len(self.stuck)


def encode_pointer(block: StuckAtBlock, pointer: int,
                   pointer_bits: int = POINTER_BITS) -> None:
    """Store *pointer* in *block* under 7-modular redundancy.

    Bit *i* of the pointer occupies cells ``[7i, 7i+7)``.  The write is
    performed through the block's stuck-at semantics, so encoding into a
    damaged block behaves exactly like the hardware would.
    """
    if not 0 <= pointer < (1 << pointer_bits):
        raise ConfigurationError(f"pointer {pointer} exceeds "
                                 f"{pointer_bits} bits")
    if block.cells < REPLICAS * pointer_bits:
        raise ConfigurationError("block too small for the codeword")
    for bit_index in range(pointer_bits):
        bit = (pointer >> bit_index) & 1
        replica = np.full(REPLICAS, bit, dtype=np.uint8)
        block.write_bits(bit_index * REPLICAS, replica)


def decode_pointer(block: StuckAtBlock,
                   pointer_bits: int = POINTER_BITS) -> int:
    """Recover the pointer by per-group majority vote."""
    if block.cells < REPLICAS * pointer_bits:
        raise ConfigurationError("block too small for the codeword")
    pointer = 0
    for bit_index in range(pointer_bits):
        group = block.read_bits(bit_index * REPLICAS, REPLICAS)
        if int(group.sum()) * 2 > REPLICAS:
            pointer |= 1 << bit_index
    return pointer


def max_tolerated_faults_per_group() -> int:
    """Stuck cells one 7-cell group survives: floor((7-1)/2) = 3."""
    return (REPLICAS - 1) // 2


def pointer_survives(block: StuckAtBlock, pointer: int,
                     pointer_bits: int = POINTER_BITS) -> bool:
    """Encode-then-decode round trip against the block's fault pattern."""
    encode_pointer(block, pointer, pointer_bits)
    return decode_pointer(block, pointer_bits) == pointer
