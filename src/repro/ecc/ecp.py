"""ECP — Error-Correcting Pointers (Schechter et al., ISCA 2010).

ECPn permanently encodes the positions of up to *n* dead cells of a 512-bit
group and supplies replacement cells.  The group stays correctable until its
``(n+1)``-th cell dies, so the per-block uncorrectable threshold is simply
the ``(n+1)``-th order statistic of the block's cell lifetimes.

Metadata cost, following the original paper: a full entry is a 9-bit pointer
plus the replacement cell plus the entry's own guard bit; ECP6 in a 512-bit
group costs 61 bits (6 entries x 10 bits + 1 group status bit), which is the
figure the WL-Reviver paper quotes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..pcm.endurance import EnduranceModel
from .base import ErrorCorrection

#: Pointer width for a 512-bit group (log2(512) = 9).
POINTER_BITS = 9
#: A full ECP entry: 9-bit pointer + 1 replacement cell.
ENTRY_BITS = POINTER_BITS + 1
#: One "group failed" status bit.
GROUP_STATUS_BITS = 1


class ECP(ErrorCorrection):
    """Fixed-capacity ECP with *capacity* correction entries per group."""

    def __init__(self, endurance: EnduranceModel, capacity: int = 6) -> None:
        super().__init__(endurance)
        if capacity < 0:
            raise ConfigurationError("ECP capacity must be non-negative")
        if capacity + 1 > endurance.max_order:
            raise ConfigurationError(
                f"ECP{capacity} needs order statistic {capacity + 1}; "
                f"endurance model materialized only {endurance.max_order}")
        self.capacity = capacity
        self._thresholds = endurance.uncorrectable_threshold(capacity).copy()

    @property
    def thresholds(self) -> np.ndarray:
        return self._thresholds

    def try_extend(self, da: int) -> bool:
        """ECP is static: once entries are exhausted the block is dead."""
        return False

    @property
    def metadata_bits_per_group(self) -> float:
        return self.capacity * ENTRY_BITS + GROUP_STATUS_BITS

    @property
    def name(self) -> str:
        return f"ECP{self.capacity}"
