"""Interface all error-correction schemes implement.

An :class:`ErrorCorrection` object answers one question for the chip: at what
wear does block *da* become uncorrectable?  Static schemes (ECP) answer with
a fixed per-block threshold; adaptive schemes (PAYG) may *extend* a block's
threshold when it is crossed, by spending entries from a shared pool.
"""

from __future__ import annotations

import abc

import numpy as np

from ..pcm.endurance import EnduranceModel


class ErrorCorrection(abc.ABC):
    """Per-block uncorrectable-wear policy over an endurance model."""

    def __init__(self, endurance: EnduranceModel) -> None:
        self.endurance = endurance

    # ------------------------------------------------------------- interface

    @property
    @abc.abstractmethod
    def thresholds(self) -> np.ndarray:
        """Current per-block uncorrectable thresholds (live array view)."""

    def threshold(self, da: int) -> int:
        """Current uncorrectable threshold of block *da*."""
        return int(self.thresholds[da])

    @abc.abstractmethod
    def try_extend(self, da: int) -> bool:
        """Attempt to raise block *da*'s threshold past its current wear.

        Returns ``True`` when the scheme found additional correction
        resources for the block (the pending write can then be re-checked),
        ``False`` when the block is uncorrectable and must be declared
        failed.
        """

    @property
    @abc.abstractmethod
    def metadata_bits_per_group(self) -> float:
        """Average metadata overhead in bits per 512-bit group (reporting)."""

    # -------------------------------------------------------------- reporting

    @property
    def name(self) -> str:
        """Short display name used in experiment tables."""
        return type(self).__name__

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (f"{self.name}: {self.metadata_bits_per_group:.1f} "
                f"metadata bits/group over {self.endurance.num_blocks} blocks")
