"""Error-correction substrates.

These schemes decide *when a block becomes uncorrectable* given the per-cell
failure times sampled by :mod:`repro.pcm.endurance`:

* :class:`~repro.ecc.ecp.ECP` — Error-Correcting Pointers (Schechter et al.,
  ISCA'10): a fixed number of correction entries per 512-bit group.  The
  paper's baseline is ECP6 (61 metadata bits per group).
* :class:`~repro.ecc.payg.PAYG` — Pay-As-You-Go (Qureshi, MICRO'11): ECP1
  locally plus a global pool of overflow entries allocated on demand
  (an average budget of 19.5 metadata bits per group in the paper's setup).
* :class:`~repro.ecc.none.NoECC` — no correction; first cell death kills the
  block (used in ablations).
* :class:`~repro.ecc.freep.FreePRegion` — the *adapted FREE-p* of Section
  IV-C: a pre-reserved remap region supplying free slots that hide failed
  blocks until the region is exhausted.  It is a recovery layer rather than
  a bit-level code, but lives here because the paper evaluates it in the
  same role (postponing the first failure a wear-leveling scheme sees).
"""

from .base import ErrorCorrection
from .ecp import ECP
from .payg import PAYG
from .none import NoECC
from .freep import FreePRegion

__all__ = ["ErrorCorrection", "ECP", "PAYG", "NoECC", "FreePRegion"]
