"""Trace interfaces.

A :class:`WriteTrace` produces virtual-block write addresses two ways:

* one at a time (:meth:`next_write`) for the exact engine;
* as per-block counts over a batch (:meth:`batch_counts`) for the fast
  engine, which applies a whole batch of writes vectorized.

:class:`DistributionTrace` is the stationary case — a fixed probability
vector over the virtual block space — which covers both the synthetic
benchmark models and the attack streams the paper considers (wear-leveling
analysis traditionally assumes stationary write distributions; the schemes
themselves are history-less).
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng


class WriteTrace(abc.ABC):
    """A stream of virtual-block write addresses."""

    def __init__(self, virtual_blocks: int, name: str = "trace") -> None:
        if virtual_blocks <= 0:
            raise ConfigurationError("virtual_blocks must be positive")
        self.virtual_blocks = virtual_blocks
        self.name = name

    @abc.abstractmethod
    def next_write(self) -> int:
        """Next virtual block address to write."""

    @abc.abstractmethod
    def batch_counts(self, batch: int) -> np.ndarray:
        """Per-virtual-block write counts for the next *batch* writes."""

    def reset(self) -> None:
        """Restart the stream (optional for stationary traces)."""


class DistributionTrace(WriteTrace):
    """Stationary trace: i.i.d. draws from a fixed block distribution."""

    def __init__(self, probabilities: np.ndarray, name: str = "distribution",
                 seed: SeedLike = None) -> None:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        super().__init__(len(probabilities), name=name)
        total = probabilities.sum()
        if total <= 0 or (probabilities < 0).any():
            raise ConfigurationError("probabilities must be non-negative, sum > 0")
        self.probabilities = probabilities / total
        self._seed = seed
        self._rng = derive_rng(seed, f"trace-{name}")
        # Buffered single draws so next_write() amortizes generator calls.
        self._buffer: Optional[np.ndarray] = None
        self._buffer_pos = 0

    def next_write(self) -> int:
        if self._buffer is None or self._buffer_pos >= len(self._buffer):
            self._buffer = self._rng.choice(
                self.virtual_blocks, size=4096, p=self.probabilities)
            self._buffer_pos = 0
        value = int(self._buffer[self._buffer_pos])
        self._buffer_pos += 1
        return value

    def batch_counts(self, batch: int) -> np.ndarray:
        return self._rng.multinomial(batch, self.probabilities)

    def reset(self) -> None:
        self._rng = derive_rng(self._seed, f"trace-{self.name}")
        self._buffer = None
        self._buffer_pos = 0

    def request_stream(self, write_ratio: float = 0.5,
                       name: Optional[str] = None,
                       seed: SeedLike = None) -> "RequestStream":
        """A read/write request stream drawing addresses from this trace."""
        return RequestStream(self.probabilities, write_ratio=write_ratio,
                             name=self.name if name is None else name,
                             seed=self._seed if seed is None else seed)

    def restricted_to(self, virtual_blocks: int) -> "DistributionTrace":
        """Fold the distribution onto a smaller virtual space.

        Used when an engine's software space is smaller than the space the
        distribution was built for: the tail mass wraps around, preserving
        hot-set structure.
        """
        if virtual_blocks >= self.virtual_blocks:
            return self
        folded = np.zeros(virtual_blocks, dtype=np.float64)
        for start in range(0, self.virtual_blocks, virtual_blocks):
            chunk = self.probabilities[start:start + virtual_blocks]
            folded[:len(chunk)] += chunk
        return DistributionTrace(folded, name=f"{self.name}-folded",
                                 seed=self._seed)


class RequestStream:
    """Deterministic stream of ``(address, is_write)`` service requests.

    Write traces model the address stream a wear-leveler sees; the online
    serving layer additionally needs the read/write *mix*, because only
    writes wear the device while both kinds occupy queue slots and service
    time.  A :class:`RequestStream` draws both from one generator derived
    from ``(seed, name)``, so two streams built with the same pair replay
    the exact same requests — the property the serving layer's per-client
    load generators lean on for byte-identical runs at any worker count.
    """

    _BUFFER = 4096

    def __init__(self, probabilities: np.ndarray, write_ratio: float = 0.5,
                 name: str = "requests", seed: SeedLike = None) -> None:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if len(probabilities) == 0:
            raise ConfigurationError("need at least one address")
        total = probabilities.sum()
        if total <= 0 or (probabilities < 0).any():
            raise ConfigurationError(
                "probabilities must be non-negative, sum > 0")
        if not 0.0 <= write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        self.probabilities = probabilities / total
        self.virtual_blocks = len(probabilities)
        self.write_ratio = write_ratio
        self.name = name
        self._seed = seed
        self._rng = derive_rng(seed, f"requests-{name}")
        self._addresses: Optional[np.ndarray] = None
        self._writes: Optional[np.ndarray] = None
        self._pos = 0

    def next_request(self) -> Tuple[int, bool]:
        """Next request as ``(virtual address, is_write)``."""
        if self._addresses is None or self._writes is None \
                or self._pos >= len(self._addresses):
            self._addresses = self._rng.choice(
                self.virtual_blocks, size=self._BUFFER, p=self.probabilities)
            self._writes = self._rng.random(self._BUFFER) < self.write_ratio
            self._pos = 0
        address = int(self._addresses[self._pos])
        is_write = bool(self._writes[self._pos])
        self._pos += 1
        return address, is_write

    def reset(self) -> None:
        """Restart the stream from its first request."""
        self._rng = derive_rng(self._seed, f"requests-{self.name}")
        self._addresses = None
        self._writes = None
        self._pos = 0
