"""Malicious write streams.

Start-Gap and Security Refresh were designed to survive adversarial
workloads; the paper cites the *birthday paradox attack* (Seznec, CAL 2010)
as the kind of stress WL-Reviver must keep surviving after failures.  These
generators exercise that claim in the examples and ablation tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng
from .base import DistributionTrace


def hammer_attack(virtual_blocks: int, targets: int = 1,
                  seed: SeedLike = None) -> DistributionTrace:
    """All writes hammer a tiny fixed set of addresses (worst-case CoV)."""
    if not 1 <= targets <= virtual_blocks:
        raise ConfigurationError("targets out of range")
    rng = derive_rng(seed, "hammer")
    probabilities = np.zeros(virtual_blocks, dtype=np.float64)
    idx = rng.choice(virtual_blocks, size=targets, replace=False)
    probabilities[idx] = 1.0 / targets
    return DistributionTrace(probabilities, name=f"hammer{targets}", seed=seed)


def birthday_paradox_attack(virtual_blocks: int, set_size: int = 64,
                            hot_share: float = 0.95,
                            seed: SeedLike = None) -> DistributionTrace:
    """Seznec's birthday-paradox pattern: cycle over a small random set.

    The attacker repeatedly writes a modest random set of addresses, betting
    that randomized remapping will eventually "collide" the set onto the
    same physical region faster than leveling spreads it.  A small
    background of uniform traffic models the camouflage accesses.
    """
    if not 1 <= set_size <= virtual_blocks:
        raise ConfigurationError("set_size out of range")
    rng = derive_rng(seed, "birthday")
    probabilities = np.full(virtual_blocks,
                            (1.0 - hot_share) / virtual_blocks)
    idx = rng.choice(virtual_blocks, size=set_size, replace=False)
    probabilities[idx] += hot_share / set_size
    return DistributionTrace(probabilities, name=f"birthday{set_size}",
                             seed=seed)


def sequential_sweep(virtual_blocks: int, stride: int = 1,
                     seed: SeedLike = None) -> "SequentialTrace":
    """Deterministic strided sweep (uniform in the limit; locality in time)."""
    return SequentialTrace(virtual_blocks, stride=stride)


class SequentialTrace(DistributionTrace):
    """Round-robin strided writes; deterministic ordering, uniform counts."""

    def __init__(self, virtual_blocks: int, stride: int = 1) -> None:
        if stride <= 0:
            raise ConfigurationError("stride must be positive")
        super().__init__(np.full(virtual_blocks, 1.0 / virtual_blocks),
                         name=f"seq{stride}")
        self.stride = stride
        self._cursor = 0

    def next_write(self) -> int:
        value = self._cursor
        self._cursor = (self._cursor + self.stride) % self.virtual_blocks
        return value

    def batch_counts(self, batch: int) -> np.ndarray:
        counts = np.zeros(self.virtual_blocks, dtype=np.int64)
        full, rem = divmod(batch, self.virtual_blocks)
        counts += full
        for _ in range(rem):
            counts[self.next_write()] += 1
        return counts

    def reset(self) -> None:
        self._cursor = 0
