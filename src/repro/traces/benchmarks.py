"""The eight benchmark workloads of Table I.

Each entry reproduces one row of the paper's Table I: the program, its
suite, and — the one property the evaluation depends on — its write CoV.
:func:`benchmark_trace` instantiates the calibrated synthetic stream for a
given virtual-block space (see :mod:`repro.traces.synthetic`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from ..rng import SeedLike
from .base import DistributionTrace
from .synthetic import hotspot_distribution, lognormal_distribution


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table I."""

    name: str
    description: str
    suite: str
    write_cov: float


#: Table I of the paper, verbatim.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in [
        BenchmarkSpec("blackscholes", "Option pricing", "PARSEC", 8.88),
        BenchmarkSpec("streamcluster",
                      "Online clustering of an input stream", "PARSEC", 11.30),
        BenchmarkSpec("swaptions",
                      "Pricing of a portfolio of swaptions", "PARSEC", 13.17),
        BenchmarkSpec("mg", "Multi-Grid on communication", "NPB", 40.87),
        BenchmarkSpec("fft", "fast fourier transform", "SPLASH-2", 13.87),
        BenchmarkSpec("ocean", "large-scale ocean movements", "SPLASH-2", 4.15),
        BenchmarkSpec("radix", "integer radix sort", "SPLASH-2", 5.54),
        BenchmarkSpec("water-spatial",
                      "molecular dynamics N-body problem", "SPLASH-2", 5.44),
    ]
}


def benchmark_names() -> List[str]:
    """Benchmark names in Table I order."""
    return list(BENCHMARKS)


def benchmark_trace(name: str, virtual_blocks: int,
                    seed: SeedLike = None,
                    family: str = "hotspot") -> DistributionTrace:
    """Synthetic trace calibrated to the named benchmark's write CoV.

    ``family`` selects the distribution shape: ``"hotspot"`` (default; a
    spatially clustered hot set with an exactly solvable CoV, whose
    hottest-block share stays realistic at scaled chip sizes) or
    ``"lognormal"`` (smooth heavy tail, used by ablations).
    """
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None
    # A CoV of c is only realizable over V blocks when c < sqrt(V - 1);
    # tiny test configurations clamp the most skewed benchmarks (mg) to
    # the achievable range, preserving the benchmark ordering.
    max_cov = 0.8 * (virtual_blocks - 1) ** 0.5
    cov = min(spec.write_cov, max_cov)
    if family == "hotspot":
        return hotspot_distribution(virtual_blocks, cov, name=name, seed=seed)
    if family == "lognormal":
        return lognormal_distribution(virtual_blocks, cov, name=name,
                                      seed=seed)
    raise ConfigurationError(f"unknown trace family {family!r}")
