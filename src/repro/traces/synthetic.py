"""Synthetic write-distribution builders.

The workhorse is the *hotspot mixture*: a fraction ``h`` of the blocks (a
spatially contiguous run, mimicking the working-set locality of real
programs) receives a fraction ``q`` of all writes; the rest is uniform.
For this family the asymptotic write CoV has the closed form

    ``cov = (q - h) / sqrt(h * (1 - h))``,

so a target CoV can be hit exactly by solving for ``h`` at a chosen hot
share ``q`` (:func:`solve_hot_fraction` inverts the formula with a
numerically safe bisection).  A Zipf mixture is also provided for
sensitivity studies; its CoV is matched numerically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng
from .base import DistributionTrace, RequestStream


def mixture_cov(hot_fraction: float, hot_share: float) -> float:
    """Asymptotic write CoV of the hotspot mixture."""
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigurationError("hot_fraction must be in (0, 1)")
    if not 0.0 <= hot_share <= 1.0:
        raise ConfigurationError("hot_share must be in [0, 1]")
    return abs(hot_share - hot_fraction) / np.sqrt(
        hot_fraction * (1.0 - hot_fraction))


def solve_hot_fraction(target_cov: float, hot_share: float = 0.9) -> float:
    """Hot-set size ``h`` achieving *target_cov* at traffic share ``q``.

    Solves ``cov(h) = target_cov`` for ``h`` in ``(0, q)``; ``cov`` is
    monotonically decreasing in ``h`` on that interval, so bisection is
    safe.  Raises when the target is unreachable (needs ``q`` closer to 1).
    """
    if target_cov <= 0:
        raise ConfigurationError("target_cov must be positive")
    if not 0.0 < hot_share < 1.0:
        raise ConfigurationError("hot_share must be in (0, 1)")

    def gap(h: float) -> float:
        return mixture_cov(h, hot_share) - target_cov

    lo, hi = 1e-9, hot_share - 1e-9
    if gap(lo) < 0:
        raise ConfigurationError(
            f"CoV {target_cov} unreachable with hot_share={hot_share}")
    if gap(hi) > 0:
        raise ConfigurationError(
            f"CoV {target_cov} below the mixture's minimum at q={hot_share}")
    return float(optimize.brentq(gap, lo, hi, xtol=1e-12))


def hotspot_distribution(virtual_blocks: int, target_cov: float,
                         hot_share: float = 0.9,
                         clustered: bool = True,
                         name: str = "hotspot",
                         seed: SeedLike = None) -> DistributionTrace:
    """Build a hotspot-mixture trace hitting *target_cov* exactly.

    ``clustered=True`` places the hot set as one contiguous run at a seeded
    random offset (spatial locality, as in real program traces — this is
    what LLS's restricted randomization struggles with); ``False`` scatters
    it uniformly.
    """
    h = solve_hot_fraction(target_cov, hot_share)
    hot_blocks = max(1, round(h * virtual_blocks))
    # Recompute the exact share for the integer hot-set size so the achieved
    # CoV stays on target despite rounding.
    h_exact = hot_blocks / virtual_blocks
    if h_exact >= 1.0:
        raise ConfigurationError("hot set cannot cover the whole space")
    q = min(1.0, h_exact + target_cov * np.sqrt(h_exact * (1.0 - h_exact)))
    rng = derive_rng(seed, f"hotspot-{name}")
    probabilities = np.full(virtual_blocks,
                            (1.0 - q) / (virtual_blocks - hot_blocks))
    if clustered:
        start = int(rng.integers(0, virtual_blocks))
        idx = (start + np.arange(hot_blocks)) % virtual_blocks
    else:
        idx = rng.choice(virtual_blocks, size=hot_blocks, replace=False)
    probabilities[idx] = q / hot_blocks
    return DistributionTrace(probabilities, name=name, seed=seed)


def lognormal_distribution(virtual_blocks: int, target_cov: float,
                           clustered: bool = True,
                           name: str = "lognormal",
                           seed: SeedLike = None) -> DistributionTrace:
    """Lognormal per-block write rates with the exact target CoV.

    Real program write histograms have smooth, heavy right tails rather
    than two-point hot/cold structure; a lognormal rate field reproduces
    both the paper's low-CoV benchmarks (bulk-driven failures) and the
    high-CoV ones (tail-driven serial killing) from one family.  For a
    lognormal with ``sigma^2 = ln(1 + cov^2)`` the rate CoV is exactly
    *target_cov* in expectation; the sampled field is then rescaled so the
    realized CoV matches the target to first order.

    ``clustered=True`` sorts the rates into one contiguous descending run
    at a seeded random offset, giving the spatial concentration of a real
    working set (what LLS's restricted randomization struggles with).
    """
    if target_cov <= 0:
        raise ConfigurationError("target_cov must be positive")
    max_cov = float(np.sqrt(virtual_blocks - 1))
    if target_cov >= max_cov:
        raise ConfigurationError(
            f"CoV {target_cov} impossible over {virtual_blocks} blocks "
            f"(max {max_cov:.1f}); use a larger virtual space")
    sigma = float(np.sqrt(np.log1p(target_cov ** 2)))
    rng = derive_rng(seed, f"lognormal-{name}")
    base = rng.lognormal(mean=0.0, sigma=sigma, size=virtual_blocks)
    # The realized CoV of a finite heavy-tailed sample falls well short of
    # the population value; calibrate by raising the field to a power
    # (realized CoV is monotone in the exponent) until it matches exactly.
    log_base = np.log(base)

    def realized(alpha: float) -> float:
        rates = np.exp(alpha * (log_base - log_base.max()))
        return float(rates.std() / rates.mean())

    lo, hi = 1e-3, 1.0
    while realized(hi) < target_cov and hi < 64:
        hi *= 2.0
    if realized(hi) < target_cov:
        raise ConfigurationError(
            f"cannot calibrate CoV {target_cov} over {virtual_blocks} blocks")
    alpha = float(optimize.brentq(
        lambda a: realized(a) - target_cov, lo, hi, xtol=1e-9))
    rates = np.exp(alpha * (log_base - log_base.max()))
    if clustered:
        start = int(rng.integers(0, virtual_blocks))
        ordered = np.sort(rates)[::-1]
        field = np.empty(virtual_blocks, dtype=np.float64)
        field[(start + np.arange(virtual_blocks)) % virtual_blocks] = ordered
        rates = field
    return DistributionTrace(rates, name=name, seed=seed)


def zipf_distribution(virtual_blocks: int, exponent: float = 1.0,
                      target_cov: Optional[float] = None,
                      name: str = "zipf",
                      seed: SeedLike = None) -> DistributionTrace:
    """Zipf-ranked distribution over a seeded random block permutation.

    With *target_cov* given, the exponent is tuned numerically (the CoV of a
    Zipf law grows monotonically with its exponent) and the passed
    *exponent* is used as the initial bracket guess.
    """
    if virtual_blocks < 2:
        raise ConfigurationError("need at least 2 blocks")

    def build(s: float) -> np.ndarray:
        ranks = np.arange(1, virtual_blocks + 1, dtype=np.float64)
        weights = ranks ** (-s)
        return weights / weights.sum()

    if target_cov is not None:
        def gap(s: float) -> float:
            p = build(s)
            return float(p.std() / p.mean()) - target_cov

        lo, hi = 1e-6, 8.0
        if gap(lo) > 0 or gap(hi) < 0:
            raise ConfigurationError(
                f"CoV {target_cov} unreachable by Zipf over {virtual_blocks}")
        exponent = float(optimize.brentq(gap, lo, hi, xtol=1e-10))
    probabilities = build(exponent)
    rng = derive_rng(seed, f"zipf-{name}")
    order = rng.permutation(virtual_blocks)
    return DistributionTrace(probabilities[order], name=name, seed=seed)


def zipf_request_stream(virtual_blocks: int, exponent: float = 1.0,
                        write_ratio: float = 0.5,
                        target_cov: Optional[float] = None,
                        name: str = "zipf",
                        seed: SeedLike = None,
                        stream_name: Optional[str] = None) -> RequestStream:
    """Zipf-popularity request stream with a read/write mix.

    The address law is exactly :func:`zipf_distribution` (same arguments,
    same seeded permutation); on top of it the stream tags each request as
    a read or a write with probability *write_ratio*.  This is the default
    workload of the online serving layer: web- and KV-store traffic is
    classically Zipf-popular, and the skew concentrates both queueing and
    wear on the shards owning the head of the ranking.

    *stream_name* names the per-consumer draw stream independently of the
    distribution identity, so several consumers (the serving layer's
    clients) can share one address law while drawing disjoint streams.
    """
    trace = zipf_distribution(virtual_blocks, exponent=exponent,
                              target_cov=target_cov, name=name, seed=seed)
    return trace.request_stream(write_ratio=write_ratio, name=stream_name)
