"""Trace substrate: synthetic write workloads.

The paper drives its simulator with Pin-collected memory traces of eight
PARSEC/NPB/SPLASH-2 programs, characterizing each solely by its *write CoV*
— the coefficient of variation of per-block write counts (Table I).  Those
traces are not redistributable, so this package synthesizes address streams
calibrated to the same CoVs (see DESIGN.md, substitutions): a spatially
clustered hot set receiving a solved-for share of the traffic over a uniform
background reproduces any target CoV and preserves the spatial concentration
that matters for page retirement and for LLS's restricted randomization.

Also provided: Zipf-mixture generators, malicious attack streams (the
birthday-paradox attack of Seznec that wear-leveling papers must survive),
a simple trace file format, and CoV estimators.
"""

from .base import WriteTrace, DistributionTrace, RequestStream
from .synthetic import (
    hotspot_distribution,
    lognormal_distribution,
    solve_hot_fraction,
    zipf_distribution,
    zipf_request_stream,
)
from .benchmarks import BENCHMARKS, BenchmarkSpec, benchmark_trace, benchmark_names
from .attacks import birthday_paradox_attack, hammer_attack, sequential_sweep
from .fileio import FileTrace, write_trace_file, read_trace_file
from .stats import write_cov, counts_cov, distribution_cov

__all__ = [
    "WriteTrace", "DistributionTrace", "RequestStream",
    "hotspot_distribution", "lognormal_distribution", "zipf_distribution",
    "zipf_request_stream", "solve_hot_fraction",
    "BENCHMARKS", "BenchmarkSpec", "benchmark_trace", "benchmark_names",
    "birthday_paradox_attack", "hammer_attack", "sequential_sweep",
    "FileTrace", "write_trace_file", "read_trace_file",
    "write_cov", "counts_cov", "distribution_cov",
]
