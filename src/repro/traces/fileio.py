"""Trace file I/O.

A minimal self-describing binary format so traces can be captured once and
replayed across experiments (and shared, the way the paper's Pin traces
were used):

* 16-byte header: magic ``b"RPTR"``, version ``u32``, virtual_blocks
  ``u64``;
* payload: little-endian ``u64`` virtual block addresses.

:class:`FileTrace` replays a stored stream; when the stream runs out it
wraps around (the paper runs each program "multiple times to produce the
required wear-out effect").
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ConfigurationError
from .base import WriteTrace

MAGIC = b"RPTR"
VERSION = 1
_HEADER = struct.Struct("<4sIQ")


def write_trace_file(path: Union[str, Path], addresses: np.ndarray,
                     virtual_blocks: int) -> None:
    """Store an address stream in the trace format."""
    addresses = np.asarray(addresses, dtype=np.uint64)
    if addresses.size and int(addresses.max()) >= virtual_blocks:
        raise ConfigurationError("address exceeds the declared virtual space")
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION, virtual_blocks))
        handle.write(addresses.astype("<u8").tobytes())


def read_trace_file(path: Union[str, Path]) -> "FileTrace":
    """Load a stored trace for replay."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ConfigurationError(f"{path}: truncated trace header")
        magic, version, virtual_blocks = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ConfigurationError(f"{path}: not a trace file")
        if version != VERSION:
            raise ConfigurationError(f"{path}: unsupported version {version}")
        payload = np.frombuffer(handle.read(), dtype="<u8")
    return FileTrace(payload.astype(np.int64), int(virtual_blocks),
                     name=Path(path).stem)


class FileTrace(WriteTrace):
    """Replays a recorded address stream, wrapping around at the end."""

    def __init__(self, addresses: np.ndarray, virtual_blocks: int,
                 name: str = "file") -> None:
        super().__init__(virtual_blocks, name=name)
        if len(addresses) == 0:
            raise ConfigurationError("empty trace")
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self._cursor = 0

    def next_write(self) -> int:
        value = int(self.addresses[self._cursor])
        self._cursor = (self._cursor + 1) % len(self.addresses)
        return value

    def batch_counts(self, batch: int) -> np.ndarray:
        counts = np.zeros(self.virtual_blocks, dtype=np.int64)
        remaining = batch
        while remaining > 0:
            take = min(remaining, len(self.addresses) - self._cursor)
            chunk = self.addresses[self._cursor:self._cursor + take]
            counts += np.bincount(chunk, minlength=self.virtual_blocks)
            self._cursor = (self._cursor + take) % len(self.addresses)
            remaining -= take
        return counts

    def reset(self) -> None:
        self._cursor = 0

    def restricted_to(self, virtual_blocks: int) -> "FileTrace":
        """Fold the stream onto a smaller virtual space.

        The stream analogue of
        :meth:`~repro.traces.base.DistributionTrace.restricted_to`:
        addresses wrap modulo the smaller space, preserving the stream's
        temporal structure while every request stays in range.
        """
        if virtual_blocks >= self.virtual_blocks:
            return self
        return FileTrace(self.addresses % virtual_blocks, virtual_blocks,
                         name=f"{self.name}-folded")
