"""Write-distribution statistics.

The paper characterizes every workload with one number — the CoV
(coefficient of variation, std/mean) of per-block write counts — and uses
it to explain all lifetime differences.  These helpers compute it from raw
address streams, count vectors, or probability vectors.
"""

from __future__ import annotations

import numpy as np


def counts_cov(counts: np.ndarray) -> float:
    """CoV of a per-block write-count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    mean = counts.mean() if counts.size else 0.0
    if mean == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard, mean of all-zero counts is exactly 0.0
        return 0.0
    return float(counts.std() / mean)


def write_cov(addresses: np.ndarray, virtual_blocks: int) -> float:
    """CoV measured from a raw virtual-address write stream."""
    counts = np.bincount(np.asarray(addresses, dtype=np.int64),
                         minlength=virtual_blocks)
    return counts_cov(counts)


def distribution_cov(probabilities: np.ndarray) -> float:
    """Asymptotic CoV of an i.i.d. stream drawn from *probabilities*.

    As the number of writes grows, the count vector converges to
    ``W * p``, so the count CoV converges to ``std(p) / mean(p)``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    mean = probabilities.mean()
    if mean == 0.0:  # repro: allow(FLOAT-EQ): exact-zero guard, mean of all-zero counts is exactly 0.0
        return 0.0
    return float(probabilities.std() / mean)


def expected_sampled_cov(probabilities: np.ndarray, writes: int) -> float:
    """Expected measured CoV after *writes* multinomial draws.

    Finite sampling inflates the CoV: for a multinomial count vector,
    ``E[var(counts)] ~ (W/V) * (1 - 1/V) + W^2 var(p)``; normalizing by the
    mean ``W/V`` gives the formula below.  Useful for choosing trace lengths
    whose measured CoV sits close to the asymptotic target (Table I bench).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    v = len(probabilities)
    if v == 0 or writes <= 0:
        return 0.0
    asymptotic = distribution_cov(probabilities)
    sampling_term = v / writes
    return float(np.sqrt(asymptotic ** 2 + sampling_term))
