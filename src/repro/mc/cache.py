"""The remap cache (Table II).

Accessing a failed block costs extra PCM accesses: the pointer read
(WL-Reviver) or the pointer and bitmap reads (LLS).  Both systems can cache
remap information in SRAM — the paper configures a 32 KB cache for each,
which at a handful of bytes per entry holds a few thousand entries and makes
the average access time nearly 1.0.

This is a classic set-associative LRU cache keyed by failed device address.
The cached value is the failed block's virtual shadow PA (WL-Reviver) or its
backup DA (LLS); for WL-Reviver the shadow DA is then computed from the live
mapping at zero PCM cost, so entries stay valid across migrations and only a
chain *switch* (pointer rewrite) invalidates them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..config import CacheConfig


class RemapCache:
    """Set-associative LRU cache of failure-remap entries."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self.num_sets = self.config.capacity_entries // self.config.associativity
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _set_of(self, key: int) -> "OrderedDict[int, int]":
        return self._sets[key % self.num_sets]

    # ----------------------------------------------------------------- access

    def get(self, key: int) -> Optional[int]:
        """Look up *key*; refresh LRU order on hit."""
        entry_set = self._set_of(key)
        if key in entry_set:
            entry_set.move_to_end(key)
            self.hits += 1
            return entry_set[key]
        self.misses += 1
        return None

    def put(self, key: int, value: int) -> None:
        """Insert/refresh an entry, evicting LRU within the set if full."""
        entry_set = self._set_of(key)
        if key in entry_set:
            entry_set.move_to_end(key)
            entry_set[key] = value
            return
        if len(entry_set) >= self.config.associativity:
            entry_set.popitem(last=False)
        entry_set[key] = value

    def invalidate(self, key: int) -> None:
        """Drop *key* if present (pointer rewritten by a chain switch)."""
        entry_set = self._set_of(key)
        if key in entry_set:
            del entry_set[key]
            self.invalidations += 1

    def clear(self) -> None:
        """Drop everything."""
        for entry_set in self._sets:
            entry_set.clear()

    # -------------------------------------------------------------- reporting

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
