"""Memory controllers for the paper's system configurations.

:class:`BaseController` owns the plumbing every configuration shares:

* OS translation (virtual block -> PA) and page-retirement bookkeeping,
  including the optional OS-side page-data copy on retirement (used by the
  exact engine's data-consistency checks);
* the store buffer for migration writes *parked* while space acquisition is
  pending (see :mod:`repro.wl.base` for the commit-first migration
  protocol);
* the wear-leveler tick loop and PCM-access accounting.

Concrete controllers differ only in how they resolve failures:

* :class:`ReviverController` — runs the full WL-Reviver protocol;
* :class:`BaselineController` — no recovery: the wear-leveler freezes at the
  first failure; every software access error retires a page;
* :class:`FreePController` — the adapted FREE-p of Section IV-C: failed
  blocks hide behind pre-reserved slots until the region is exhausted, then
  behaves like the baseline.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import List, Optional, Set, Tuple, TYPE_CHECKING

from ..config import ReviverConfig
from ..errors import (ConfigurationError, ProtocolError, ReadRetriesExhausted,
                      SimulatedCrash, UncorrectableError, WriteFault)
from ..ecc.freep import FreePRegion
from ..osmodel.allocator import PagePool
from ..osmodel.faults import FaultReporter
from ..pcm.chip import PCMChip
from ..reviver.persist import DurableMetadata
from ..reviver.reviver import FaultContext, WLReviver
from ..wl.base import WearLeveler
from .access import AccessResult, AccessStats
from .cache import RemapCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..faultinject.hooks import ControllerHooks
    from ..telemetry.session import TelemetrySession

#: Default bounded retries for transient (correctable-on-retry) read
#: errors; override per controller with ``read_retry_limit``.
READ_RETRY_LIMIT = 8


class BaseController(abc.ABC):
    """Shared translation, accounting, and migration-port plumbing."""

    def __init__(self, chip: PCMChip, wl: WearLeveler, ospool: PagePool,
                 cache: Optional[RemapCache] = None,
                 copy_on_retire: bool = False,
                 read_retry_limit: int = READ_RETRY_LIMIT) -> None:
        if wl.device_blocks > chip.num_blocks:
            raise ProtocolError("wear-leveler space exceeds the chip")
        if read_retry_limit < 1:
            raise ConfigurationError("read_retry_limit must be >= 1")
        self.chip = chip
        self.wl = wl
        self.ospool = ospool
        self.cache = cache
        self.copy_on_retire = copy_on_retire
        #: Bounded retry budget for transient read errors.
        self.read_retry_limit = read_retry_limit
        self.reporter = FaultReporter(ospool)
        self.stats = AccessStats()
        #: Software writes serviced (drives victimization bookkeeping).
        self.writes = 0
        #: Store buffer: post-commit owner PA -> parked migration tag.
        self._parked: "OrderedDict[int, int]" = OrderedDict()
        #: Virtual blocks whose data the simulation knowingly lost
        #: (retired-page data without copy, frozen-migration drops).
        self.lost_vblocks: Set[int] = set()
        #: Physical migration writes performed.
        self.migration_writes = 0
        #: Fault-injection crash hooks; ``None`` (the default) disables
        #: every crash point.  Only :mod:`repro.faultinject` may set this.
        self.inject: Optional["ControllerHooks"] = None
        #: Simulated power losses survived via :meth:`crash_and_recover`.
        self.crashes_recovered = 0
        #: Transient read errors absorbed by bounded retry.
        self.transient_read_errors = 0
        #: Telemetry hook; ``None`` (the default) disables every event.
        #: Only :mod:`repro.telemetry` may attach a session.
        self.telem: Optional["TelemetrySession"] = None

    # ------------------------------------------------------- subclass hooks

    @abc.abstractmethod
    def _resolve_counted(self, da: int) -> Tuple[Optional[int], int, bool]:
        """Resolve *da* for a software access.

        Returns ``(final_da, pcm_accesses, redirected)``; ``final_da`` is
        ``None`` when the block is failed and has no redirection (baseline
        configs), in which case the caller reports an access error.
        """

    @abc.abstractmethod
    def _handle_software_fault(self, failed_da: Optional[int], pa: int,
                               new_failure: bool) -> None:
        """React to a failed software write so the retry can progress."""

    @abc.abstractmethod
    def _migration_resolve(self, pa: int) -> Optional[int]:
        """Destination block for a migration write owned by *pa*.

        ``None`` means the data is garbage (reserved PA on a loop) and the
        write is dropped.
        """

    @abc.abstractmethod
    def _handle_migration_fault(self, failed_da: int, pa: int) -> str:
        """React to a failed migration write: ``retry``/``park``/``drop``."""

    def _acquisition_pending(self) -> bool:
        """Whether the controller owes a victimized page acquisition."""
        return False

    def _maybe_victimize(self, vblock: int) -> bool:
        """Acquire space by victimizing this write, when owed."""
        return False

    def _after_fault_handled(self) -> None:
        """Hook run after software-fault handling (metadata drains)."""

    # ------------------------------------------------------------ device I/O

    def _read_block(self, da: int) -> int:
        """Read block *da*, retrying bounded on transient read errors.

        Transient :class:`~repro.errors.UncorrectableError`\\ s (soft read
        disturbs, injected or otherwise) are retryable: the cells hold the
        data, re-sensing succeeds.  Each retry costs one extra PCM access.
        A block that fails the whole :attr:`read_retry_limit` budget raises
        the structured :class:`~repro.errors.ReadRetriesExhausted`.
        """
        for _ in range(self.read_retry_limit):
            try:
                return self.chip.read(da)
            except UncorrectableError:
                self.transient_read_errors += 1
                self.stats.pcm_accesses += 1
                if self.telem is not None:
                    self.telem.emit("read-retry", da=da, at_write=self.writes)
        raise ReadRetriesExhausted(da, self.read_retry_limit)

    # -------------------------------------------------------- crash recovery

    def crash_and_recover(self, crash: Optional[SimulatedCrash] = None) -> None:
        """Model a power loss: drop all volatile state, then rebuild.

        The base controller has nothing durable to rebuild *from* — the
        store buffer and remap cache are simply gone.  Parked migration
        data that never reached the PCM is recorded lost, exactly like a
        real machine losing its write queue.  Subclasses with durable
        state rebuild it in :meth:`_rebuild_after_crash`, which runs
        between the two telemetry events so an instrumented run brackets
        the whole reboot with one ``crash``/``recover`` pair.
        """
        if self.telem is not None:
            self.telem.emit("crash", site=None if crash is None else crash.site,
                            at_write=self.writes)
        if crash is not None and crash.pa is not None:
            self._record_lost_pa(crash.pa)
        for pa in list(self._parked):
            self._record_lost_pa(pa)
        self._parked.clear()
        if self.cache is not None:
            self.cache.clear()
        self._rebuild_after_crash()
        self.crashes_recovered += 1
        if self.telem is not None:
            self.telem.emit("recover", at_write=self.writes,
                            crashes=self.crashes_recovered)

    def _rebuild_after_crash(self) -> None:
        """Hook: rebuild durable state after the volatile drop (no-op)."""

    # --------------------------------------------------------- software path

    def service_write(self, vblock: int, tag: Optional[int] = None) -> AccessResult:
        """Service one software write; run the due wear-leveling moves."""
        self.writes += 1
        victimized = self._maybe_victimize(vblock)
        if self._parked and not self._acquisition_pending():
            self._drain_parked()
        accesses = 0
        faults = 0
        redirected_any = False
        while True:
            pa = self.ospool.translate(vblock)
            da = self.wl.map(pa)
            final, cost, redirected = self._resolve_counted(da)
            accesses += cost
            redirected_any = redirected_any or redirected
            if final is None or self.chip.is_failed(final):
                # Known-failed destination with no redirection: an access
                # error the OS sees immediately.
                faults += 1
                self._handle_software_fault(final, pa, new_failure=False)
                self._after_fault_handled()
                continue
            try:
                self.chip.write(final, tag=tag)
                break
            except WriteFault:
                faults += 1
                self._handle_software_fault(final, pa, new_failure=True)
                self._after_fault_handled()
        if pa in self._parked:
            # The write supersedes a parked migration datum for this PA.
            del self._parked[pa]
        self.ospool.record_write(pa)
        result = AccessResult(vblock=vblock, pa=pa, da=final,
                              pcm_accesses=accesses, redirected=redirected_any,
                              faults_handled=faults, victimized=victimized)
        self.stats.record(result, is_write=True)
        self._run_wear_leveling(pa=pa)
        return result

    def service_read(self, vblock: int) -> AccessResult:
        """Service one software read (never faults, never ticks the WL)."""
        pa = self.ospool.translate(vblock)
        if pa in self._parked:
            # Store-buffer hit: the datum is in flight, no PCM access needed.
            result = AccessResult(vblock=vblock, pa=pa, da=-1, pcm_accesses=0,
                                  tag=self._parked[pa])
            self.stats.record(result, is_write=False)
            return result
        da = self.wl.map(pa)
        final, cost, redirected = self._resolve_counted(da)
        if final is None:
            # Baseline configs: reading a dead block returns garbage.
            result = AccessResult(vblock=vblock, pa=pa, da=da,
                                  pcm_accesses=cost, tag=None,
                                  redirected=redirected)
        else:
            result = AccessResult(vblock=vblock, pa=pa, da=final,
                                  pcm_accesses=cost, tag=self._read_block(final),
                                  redirected=redirected)
        self.stats.record(result, is_write=False)
        return result

    # -------------------------------------------------------- migration port

    def can_start_migration(self) -> bool:
        """Port hook: migrations pause while an acquisition is owed."""
        return not self._acquisition_pending()

    def read_migration(self, da: int) -> int:
        """Port hook: read *da*'s current content through redirections."""
        pa = self.wl.inverse(da)
        if pa is not None and pa in self._parked:
            return self._parked[pa]
        target = self._read_resolve(da)
        return self._read_block(target)

    def _read_resolve(self, da: int) -> int:
        """Redirection for migration reads; defaults to no redirection."""
        return da

    def write_migration_pa(self, pa: int, tag: int) -> None:
        """Port hook: store *tag* as PA *pa*'s data under the new mapping."""
        if self.inject is not None:
            self.inject.crash_point("mid-migration", pa=pa)
        while True:
            target = self._migration_resolve(pa)
            if target is None:
                self._migration_unroutable(pa)
                return
            try:
                self.chip.write(target, tag=tag)
                self.migration_writes += 1
                return
            except WriteFault:
                action = self._handle_migration_fault(target, pa)
                if action == "park":
                    self._parked[pa] = tag
                    return
                if action == "drop":
                    self._record_lost_pa(pa)
                    return
                # "retry": resolve again against the updated chains.

    def _drain_parked(self) -> None:
        """Replay parked migration writes once space is available."""
        for pa in list(self._parked):
            if self._acquisition_pending():
                return
            tag = self._parked.pop(pa)
            self.write_migration_pa(pa, tag)

    def _run_wear_leveling(self, pa: Optional[int] = None) -> None:
        changed = self.wl.tick(self, pa=pa)
        if changed:
            self._on_mapping_changed(changed)

    def _on_mapping_changed(self, pas: List[int]) -> None:
        """Hook: re-validate failure chains after a mapping update."""

    # ----------------------------------------------------------- retirement

    def _retire_page_for(self, pa: int, victimized: bool) -> List[int]:
        """Report *pa* to the OS; retire its page and handle data movement."""
        pas = self.reporter.report(pa, self.writes, victimized=victimized)
        self._handle_page_moves()
        return pas

    def _handle_page_moves(self) -> None:
        """Copy or write off the data of the just-retired page."""
        moves = self.ospool.last_moves
        self.ospool.last_moves = []
        if not moves:
            return
        for vpage, old_phys, new_phys, shared in moves:
            old_base = self.ospool.page_base(old_phys)
            new_base = self.ospool.page_base(new_phys)
            for offset, vblock in enumerate(
                    self.ospool.virtual_blocks_of_page(vpage)):
                if self.copy_on_retire:
                    tag = self.read_migration(self.wl.map(old_base + offset))
                    self.write_migration_pa(new_base + offset, tag)
                else:
                    self.lost_vblocks.add(vblock)
            if shared:
                # Frame consolidation: every virtual page aliased onto the
                # target frame (including the mover) now interleaves its
                # writes with the others — none of their data is reliable.
                for alias in self.ospool.pages[new_phys].virtual_pages:
                    self.lost_vblocks.update(
                        self.ospool.virtual_blocks_of_page(alias))

    def _migration_unroutable(self, pa: int) -> None:
        """A migration write had no destination: by default the data is
        lost (baseline semantics).  WL-Reviver overrides this to a no-op:
        an unroutable PA there is a reserved PA on a PA-DA loop whose data
        is garbage by construction."""
        self._record_lost_pa(pa)

    def _record_lost_pa(self, pa: int) -> None:
        """Account data loss for every virtual block aliased to *pa*."""
        if not self.ospool.pa_in_software_space(pa):
            return
        page = self.ospool.page_of_pa(pa)
        offset = self.ospool.offset_in_page(pa)
        for vpage in self.ospool.pages[page].virtual_pages:
            self.lost_vblocks.add(self.ospool.virtual_block_of(vpage, offset))

    # -------------------------------------------------------------- metrics

    def software_usable_fraction(self) -> float:
        """Usable software space as a fraction of the whole chip."""
        return self.ospool.usable_blocks / self.chip.num_blocks

    @property
    def name(self) -> str:
        """Display name for experiment tables."""
        return type(self).__name__


class ReviverController(BaseController):
    """Wear-leveling + WL-Reviver (the paper's proposed system)."""

    def __init__(self, chip: PCMChip, wl: WearLeveler, ospool: PagePool,
                 reviver_config: Optional[ReviverConfig] = None,
                 cache: Optional[RemapCache] = None,
                 copy_on_retire: bool = False,
                 read_retry_limit: int = READ_RETRY_LIMIT) -> None:
        super().__init__(chip, wl, ospool, cache=cache,
                         copy_on_retire=copy_on_retire,
                         read_retry_limit=read_retry_limit)
        self.reviver_config = reviver_config or ReviverConfig()
        self.reviver = WLReviver(
            self.reviver_config, self.reporter,
            map_fn=wl.map, inverse_fn=wl.inverse,
            is_failed=chip.is_failed,
            blocks_per_page=ospool.blocks_per_page,
            block_bytes=chip.geometry.block_bytes,
            num_pages=ospool.num_pages)
        # The OS copies a retired page's data out before the reviver may
        # repurpose the page's PAs (ordering is data-critical).
        self.reviver.page_copier = self._handle_page_moves
        #: Mirror of the pointer/inverse cells as physically written; this
        #: is what survives a crash and what recovery scans.
        self.durable = DurableMetadata()

    # ------------------------------------------------------------ resolution

    def _resolve_counted(self, da: int) -> Tuple[Optional[int], int, bool]:
        if not self.chip.is_failed(da):
            return da, 1, False
        if self.cache is not None:
            vpa = self.cache.get(da)
            if vpa is not None:
                # Remap-cache hit: go straight to the shadow, 1 access.
                return self.wl.map(vpa), 1, True
        resolution = self.reviver.resolve(da)
        if resolution.is_loop:
            raise ProtocolError(f"software access reached loop block {da}")
        if self.cache is not None:
            vpa = self.reviver.links.vpa_of(da)
            if vpa is not None:
                self.cache.put(da, vpa)
        # 1 access to read the pointer + 1 access per chain step.
        return resolution.final_da, 1 + resolution.hops, True

    def read_migration(self, da: int) -> int:
        pa = self.wl.inverse(da)
        if pa is not None and pa in self._parked:
            return self._parked[pa]
        hops = 0
        while self.chip.is_failed(da):
            vpa = self.reviver.links.vpa_of(da)
            if vpa is None:
                return self._read_block(da)  # fresh failure: data destroyed
            if vpa in self._parked:
                # The shadow datum is still in flight in the store buffer.
                return self._parked[vpa]
            nxt = self.wl.map(vpa)
            if nxt == da:
                return self._read_block(da)  # loop: garbage by construction
            da = nxt
            hops += 1
            if hops > 64:
                raise ProtocolError("chain walk did not terminate")
        return self._read_block(da)

    def _migration_resolve(self, pa: int) -> Optional[int]:
        """Lenient chain walk for internal (migration/copy) writes.

        Tolerates the transient states internal traffic can observe: a
        block that failed moments ago and is not linked yet is *returned*
        (the write will fault and re-enter the failure machinery), while a
        PA-DA loop yields ``None`` (the data is garbage by construction —
        drop the write).
        """
        da = self.wl.map(pa)
        hops = 0
        while self.chip.is_failed(da):
            vpa = self.reviver.links.vpa_of(da)
            if vpa is None:
                return da  # fresh unlinked failure: let the write fault
            nxt = self.wl.map(vpa)
            if nxt == da:
                return None  # PA-DA loop: garbage data, drop
            da = nxt
            hops += 1
            if hops > 64:
                raise ProtocolError("chain walk did not terminate")
        return da

    def _migration_unroutable(self, pa: int) -> None:
        """Loop blocks hold garbage for a reserved PA: nothing is lost."""

    # ---------------------------------------------------------------- faults

    def _handle_software_fault(self, failed_da: Optional[int], pa: int,
                               new_failure: bool) -> None:
        if failed_da is None or not new_failure:
            raise ProtocolError(
                f"reviver resolution produced a dead target {failed_da}")
        handled = self.reviver.handle_new_failure(
            failed_da, FaultContext.SOFTWARE, victim_pa=pa,
            at_write=self.writes)
        assert handled, "software faults always complete acquisition"

    def _handle_migration_fault(self, failed_da: int, pa: int) -> str:
        handled = self.reviver.handle_new_failure(
            failed_da, FaultContext.MIGRATION, at_write=self.writes)
        return "retry" if handled else "park"

    def _after_fault_handled(self) -> None:
        self._drain_metadata()

    # ------------------------------------------------------------- reviver IO

    def _acquisition_pending(self) -> bool:
        return self.reviver.acquisition_pending

    def _maybe_victimize(self, vblock: int) -> bool:
        if not self.reviver.acquisition_pending:
            return False
        pa = self.ospool.translate(vblock)
        self.reviver.acquire_page(pa, self.writes, victimized=True)
        self._drain_metadata()
        return True

    def _on_mapping_changed(self, pas: List[int]) -> None:
        self.reviver.on_mapping_changed(pas)
        self._drain_metadata()

    def _drain_metadata(self) -> None:
        """Apply the physical metadata writes the link table emitted.

        Each record becomes durable the moment its physical write lands
        (:attr:`durable` is updated record-by-record), so an injected crash
        between any two records leaves exactly the written prefix in the
        PCM — which is the torn state :meth:`crash_and_recover` must mend.
        """
        for record in self.reviver.links.drain_writes():
            if record.kind == "pointer":
                # Pointer cells live in the failed block itself.
                self.chip.write_metadata(record.location)
                if self.cache is not None:
                    self.cache.invalidate(record.location)
                self.durable.apply(record)
                self.stats.metadata_writes += 1
                if self.inject is not None:
                    self.inject.crash_point("after-link-write",
                                            pa=record.vpa)
            else:
                if self.inject is not None:
                    self.inject.crash_point("before-inverse-write",
                                            pa=record.vpa)
                # Inverse pointers live in the block mapped by a
                # pointer-section PA; route through the normal machinery.
                self._write_pointer_block(record.location)
                self.durable.apply(record)
                self.stats.metadata_writes += 1

    def _write_pointer_block(self, pointer_pa: int) -> None:
        """Wear the block backing an inverse-pointer PA."""
        while True:
            target = self._migration_resolve(pointer_pa)
            if target is None:
                return
            try:
                self.chip.write(target, tag=None)
                return
            except WriteFault:
                action = self._handle_migration_fault(target, pointer_pa)
                if action != "retry":
                    # Pointer data is rebuildable by scanning (Section
                    # III-B); drop rather than park metadata.
                    return

    # -------------------------------------------------------- crash recovery

    def _rebuild_after_crash(self) -> None:
        """Section III-B reboot: rebuild links by scanning the PCM.

        The link table and spare registers are volatile and gone; the
        durable truth is the retired-page bitmap plus the pointer and
        inverse-pointer cells sitting in the PCM (:attr:`durable`).  The
        reviver rescans them, completes any torn metadata update, and the
        Theorem 1-3 invariants are re-checked unconditionally before the
        controller resumes service.
        """
        # Recovery itself must not trip armed crash points or read errors:
        # the machine is rebooting, the injection campaign resumes after.
        hooks, self.inject = self.inject, None
        chip_hooks, self.chip.inject = self.chip.inject, None  # repro: allow(FAULT-HOOK): the rebooting controller detaches its own chip's hooks for the recovery window
        try:
            self.reviver.recover(
                self.durable,
                failed_das=[int(d) for d in self.chip.failed.nonzero()[0]],
                pas_of_page=self.ospool.pas_of_page)
            # Complete any interrupted metadata update (redo writes emitted
            # by the scan) and any switches the rebuilt chains still owe.
            self._drain_metadata()
        finally:
            self.inject = hooks
            self.chip.inject = chip_hooks  # repro: allow(FAULT-HOOK): reattaching the hooks detached above; the campaign resumes after reboot
        self.check_invariants()

    # -------------------------------------------------------------- checking

    def check_invariants(self) -> None:
        """Run the Theorem 1-3 checkers (skipped while parked writes wait)."""
        if self.reviver.acquisition_pending:
            return
        checker = self.reviver.make_checker(
            software_pas=self._software_pas,
            failed_blocks=lambda: [int(d) for d in
                                   self.chip.failed.nonzero()[0]],
            map_many_fn=self.wl.map_many,
            failed_mask_fn=lambda: self.chip.failed)
        checker.check_all()

    def _software_pas(self) -> List[int]:
        return [int(pa) for pa in self.ospool.usable_pas()]

    def _run_wear_leveling(self, pa: Optional[int] = None) -> None:
        super()._run_wear_leveling(pa=pa)
        if self.reviver_config.check_invariants:
            self.check_invariants()


class BaselineController(BaseController):
    """Wear-leveling alone: the scheme freezes at the first failure."""

    def _resolve_counted(self, da: int) -> Tuple[Optional[int], int, bool]:
        if self.chip.is_failed(da):
            return None, 1, False
        return da, 1, False

    def _handle_software_fault(self, failed_da: Optional[int], pa: int,
                               new_failure: bool) -> None:
        if not self.wl.frozen:
            self.wl.freeze()
        self._retire_page_for(pa, victimized=False)

    def _migration_resolve(self, pa: int) -> Optional[int]:
        da = self.wl.map(pa)
        if self.chip.is_failed(da):
            # Migration into a known-dead block: data lost (Section III-A's
            # motivation for suspension; the baseline has no recourse).
            return None
        return da

    def _handle_migration_fault(self, failed_da: int, pa: int) -> str:
        if not self.wl.frozen:
            self.wl.freeze()
        return "drop"


class FreePController(BaseController):
    """Wear-leveling + adapted FREE-p with a pre-reserved remap region.

    The wear-leveler must be constructed over ``region.working_blocks``
    device blocks; slot DAs above that never participate in leveling, which
    is exactly why the original FREE-p's direct DA pointers stay valid here.
    """

    def __init__(self, chip: PCMChip, wl: WearLeveler, ospool: PagePool,
                 region: FreePRegion,
                 cache: Optional[RemapCache] = None,
                 copy_on_retire: bool = False,
                 read_retry_limit: int = READ_RETRY_LIMIT) -> None:
        super().__init__(chip, wl, ospool, cache=cache,
                         copy_on_retire=copy_on_retire,
                         read_retry_limit=read_retry_limit)
        if wl.device_blocks != region.working_blocks:
            raise ProtocolError(
                "wear-leveler must cover exactly the non-reserved space")
        self.region = region

    def _resolve_counted(self, da: int) -> Tuple[Optional[int], int, bool]:
        if not self.chip.is_failed(da):
            return da, 1, False
        if self.cache is not None:
            slot = self.cache.get(da)
            if slot is not None:
                return slot, 1, True
        slot = self.region.resolve(da)
        if slot == da:
            return None, 1, False  # exposed failure: no slot behind it
        if self.cache is not None:
            self.cache.put(da, slot)
        return slot, 2, True  # pointer read + slot access

    def _read_resolve(self, da: int) -> int:
        return self.region.resolve(da)

    def _migration_resolve(self, pa: int) -> Optional[int]:
        da = self.wl.map(pa)
        if not self.chip.is_failed(da):
            return da
        slot = self.region.resolve(da)
        return None if slot == da else slot

    def _link_slot(self, failed_da: int) -> None:
        """Hide *failed_da* behind a fresh slot; fix stale cache entries."""
        origin = self.region.serving(failed_da)
        self.region.link(failed_da)
        if self.cache is not None:
            self.cache.invalidate(failed_da)
            if origin is not None:
                # failed_da was itself a slot: the origin's remap moved.
                self.cache.invalidate(origin)

    def _handle_software_fault(self, failed_da: Optional[int], pa: int,
                               new_failure: bool) -> None:
        if new_failure and failed_da is not None and not self.region.exhausted:
            self._link_slot(failed_da)
            return
        if not self.wl.frozen:
            self.wl.freeze()
        self._retire_page_for(pa, victimized=False)

    def _handle_migration_fault(self, failed_da: int, pa: int) -> str:
        if not self.region.exhausted:
            self._link_slot(failed_da)
            return "retry"
        if not self.wl.frozen:
            self.wl.freeze()
        return "drop"
