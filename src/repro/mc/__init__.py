"""Memory-controller layer.

The controller is where the paper's actors meet: it translates software
requests (virtual block -> PA via the OS pool -> DA via the wear-leveler),
routes accesses through failure redirections, accounts PCM accesses per
request (the unit of Table II), drives the wear-leveler's migration schedule
through a :class:`~repro.wl.base.MigrationPort`, and runs the recovery
protocol on write faults.

Three controllers implement the paper's configurations:

* :class:`~repro.mc.controller.ReviverController` — WL scheme + WL-Reviver;
* :class:`~repro.mc.controller.BaselineController` — WL scheme alone, which
  *freezes* at the first block failure (the "-SG" curves);
* :class:`~repro.mc.controller.FreePController` — WL scheme + adapted
  FREE-p pre-reserved remap region (Figure 7).
"""

from .access import AccessResult, AccessStats
from .cache import RemapCache
from .controller import (
    BaseController,
    BaselineController,
    FreePController,
    ReviverController,
)

__all__ = [
    "AccessResult", "AccessStats", "RemapCache",
    "BaseController", "BaselineController", "FreePController",
    "ReviverController",
]
