"""Access results and running statistics.

Table II measures *average PCM access time in number of PCM accesses per
software-issued request*: a healthy access costs 1, an access that must read
a failed block's pointer costs 2 (WL-Reviver) or 3 (LLS, which also reads a
bitmap), and a remap-cache hit collapses any of these back to 1.  These
types carry that accounting through the controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one software-issued request."""

    #: Virtual block address the software used.
    vblock: int
    #: PA the OS translation produced (post-retirement, if a victimization
    #: or failure redirected the request).
    pa: int
    #: Device block that finally serviced the data.
    da: int
    #: PCM accesses spent on this request (>= 1).
    pcm_accesses: int
    #: Content tag read (reads only).
    tag: Optional[int] = None
    #: Whether a failure chain redirected the request.
    redirected: bool = False
    #: Write faults newly handled while servicing this request.
    faults_handled: int = 0
    #: Whether this request was victimized for page acquisition.
    victimized: bool = False


@dataclass
class AccessStats:
    """Accumulators over a stream of requests."""

    requests: int = 0
    writes: int = 0
    reads: int = 0
    pcm_accesses: int = 0
    redirected: int = 0
    faults: int = 0
    victimized: int = 0
    #: Extra PCM writes spent on metadata (pointers, bitmap replicas).
    metadata_writes: int = 0

    def record(self, result: AccessResult, is_write: bool) -> None:
        """Fold one request into the accumulators."""
        self.requests += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.pcm_accesses += result.pcm_accesses
        if result.redirected:
            self.redirected += 1
        self.faults += result.faults_handled
        if result.victimized:
            self.victimized += 1

    @property
    def avg_access_time(self) -> float:
        """Mean PCM accesses per software request (Table II's metric)."""
        if self.requests == 0:
            return 0.0
        return self.pcm_accesses / self.requests

    @property
    def redirect_rate(self) -> float:
        """Fraction of requests that hit a failure chain."""
        if self.requests == 0:
            return 0.0
        return self.redirected / self.requests

    def merged(self, other: "AccessStats") -> "AccessStats":
        """Return a new accumulator combining *self* and *other*."""
        merged = AccessStats()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged
