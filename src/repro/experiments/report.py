"""Plain-text rendering of experiment results.

The harness prints the same rows and series the paper's tables and figures
report; no plotting dependencies are assumed (the series can be piped into
any plotting tool).  Includes a small ASCII sparkline renderer so curve
shapes are visible directly in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float = 0.0,
              hi: float = 1.0) -> str:
    """Map a value series onto a one-line ASCII intensity ramp."""
    if hi <= lo:
        hi = lo + 1.0
    chars = []
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        t = (value - lo) / (hi - lo)
        t = min(1.0, max(0.0, t))
        chars.append(_SPARK_LEVELS[round(t * top)])
    return "".join(chars)


def format_series(label: str, writes: Sequence[int],
                  values: Sequence[float], width: int = 60,
                  lo: float = 0.0, hi: float = 1.0) -> str:
    """Render one curve: label, sparkline, and endpoint values."""
    if not writes:
        return f"{label:24s} (empty)"
    step = max(1, len(values) // width)
    sampled = list(values[::step])[:width]
    tail = f"start={values[0]:.2f} end={values[-1]:.2f} writes={writes[-1]:,}"
    return f"{label:24s} |{sparkline(sampled, lo, hi):<{width}}| {tail}"


def format_number(value: float) -> str:
    """Thousands-separated integer formatting for write counts."""
    return f"{int(value):,}"


def format_percent(value: float) -> str:
    """Fractions as percentages with one decimal."""
    return f"{100.0 * value:.1f}%"
