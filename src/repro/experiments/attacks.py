"""Attack resilience — the paper's malicious-wear claim, quantified.

Not a numbered figure, but a claim the paper leans on twice: Start-Gap and
Security Refresh "consider malicious attacks that keep writing at the same
set of addresses" (Section II), and under "highly biased write
distribution ... and malicious attacks, including birthday paradox attack,
the benefit of WL-Reviver is still substantial" (Section IV-B).  This
experiment measures chip lifetime under three adversarial streams for the
frozen baseline and the revived system, with the same harness conventions
as the numbered experiments (``run``/``render``/``as_dict``; CLI name
``attacks``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import StartGapConfig
from ..sim import FastConfig, FastEngine
from ..traces import birthday_paradox_attack, hammer_attack
from ..traces.base import DistributionTrace
from ..traces.synthetic import hotspot_distribution
from ..wl import StartGap
from .common import ScaledParameters, build_chip, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_number, format_table

#: CLI names of the adversarial streams, in report order.
ATTACKS = ("birthday-paradox-64", "hammer-8", "hot-region-cov10")


def _attack_trace(name: str, params: ScaledParameters,
                  seed: int) -> DistributionTrace:
    blocks = params.num_blocks
    if name == "birthday-paradox-64":
        return birthday_paradox_attack(blocks, set_size=64, seed=seed)
    if name == "hammer-8":
        return hammer_attack(blocks, targets=8, seed=seed)
    if name == "hot-region-cov10":
        return hotspot_distribution(blocks, target_cov=10.0, seed=seed)
    raise KeyError(f"unknown attack {name!r}")


def _lifetime(params: ScaledParameters, trace: DistributionTrace,
              recovery: str, seed: int) -> int:
    chip = build_chip(params)
    leveler = StartGap(chip.num_blocks,
                       config=StartGapConfig(psi=params.psi))
    engine = FastEngine(chip, leveler, trace,
                        FastConfig(recovery=recovery,
                                   batch_writes=params.batch_writes,
                                   seed=seed))
    return engine.run().lifetime_writes


@dataclass(frozen=True)
class AttackRow:
    """Lifetimes of one adversarial stream under both systems."""

    attack: str
    frozen_lifetime: int
    revived_lifetime: int

    @property
    def gain(self) -> float:
        """Relative lifetime gain of revival."""
        return self.revived_lifetime / max(self.frozen_lifetime, 1) - 1.0


@dataclass(frozen=True)
class AttackResult:
    """All adversarial streams."""

    rows: List[AttackRow]
    scale: str


def _cell(scale: str, attack: str, recovery: str, trace_seed: int,
          seed: int) -> dict:
    """One grid cell: a single engine run under one attack stream."""
    params = scaled_parameters(scale)
    trace = _attack_trace(attack, params, trace_seed)
    return {"lifetime": _lifetime(params, trace, recovery, seed)}


def grid(scale: str, seed: int) -> List[Cell]:
    """The (attack x system) grid."""
    cells = []
    for attack in ATTACKS:
        for recovery in ("none", "reviver"):
            key = f"attacks/{scale}/{attack}/{recovery}"
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, attack=attack,
                                          recovery=recovery,
                                          trace_seed=seed + 2,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small", benchmarks: Optional[List[str]] = None,
        seed: int = 1, jobs: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> AttackResult:
    """Measure both systems' lifetimes under each attack stream.

    ``benchmarks`` is accepted for CLI uniformity and ignored: attack
    streams replace the workload.
    """
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner)
    values = runner.run(grid(scale, seed))
    rows = [AttackRow(
        attack=attack,
        frozen_lifetime=values[f"attacks/{scale}/{attack}/none"]["lifetime"],
        revived_lifetime=values[f"attacks/{scale}/{attack}/reviver"]
        ["lifetime"])
        for attack in ATTACKS]
    return AttackResult(rows=rows, scale=scale)


def render(result: AttackResult) -> str:
    """Lifetime table under adversarial writes."""
    headers = ["Attack", "ECP6-SG (frozen)", "ECP6-SG-WLR", "Gain"]
    rows = [[r.attack, format_number(r.frozen_lifetime),
             format_number(r.revived_lifetime), f"+{100 * r.gain:.0f}%"]
            for r in result.rows]
    title = (f"Attack resilience: writes to 30% capacity lost under "
             f"malicious streams (scale={result.scale})")
    return format_table(headers, rows, title=title)


def as_dict(result: AttackResult) -> Dict[str, Dict[str, float]]:
    """Machine-readable form for tests and notebooks."""
    return {r.attack: {"frozen": r.frozen_lifetime,
                       "revived": r.revived_lifetime, "gain": r.gain}
            for r in result.rows}
