"""Figure 6 — survival-rate curves for *ocean* and *mg*.

The paper plots the percentage of memory capacity still usable (down to
70 %) against writes, for six systems per benchmark:

``ECP6``, ``PAYG`` (no wear leveling), ``ECP6-SG``, ``PAYG-SG``, and the
revived ``ECP6-SG-WLR``, ``PAYG-SG-WLR``.

Expected shape: the no-WL systems drop almost immediately; Start-Gap helps
*ocean* far more than *mg*; PAYG postpones the first failure; WL-Reviver
extends every curve, much more for *mg*, and the ECP6 systems gain more
from revival than the PAYG ones (whose pool is nearly drained when failures
start).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.batched import register_batchable
from ..sim.fast import FastEngine
from ..sim.metrics import LifetimeSeries, LifetimeSummary
from .common import SYSTEM_CONFIGS, build_engine, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_series


@dataclass(frozen=True)
class Fig6Curve:
    """One system's survival curve."""

    system: str
    benchmark: str
    series: LifetimeSeries


@dataclass(frozen=True)
class Fig6Result:
    """All curves for the requested benchmarks."""

    curves: List[Fig6Curve]
    scale: str
    floor: float = 0.7


def _build_cell(scale: str, benchmark: str, system: str,
                seed: int) -> FastEngine:
    """Assemble one cell's engine (shared by both execution paths)."""
    params = scaled_parameters(scale)
    return build_engine(params, benchmark, seed=seed,
                        label=f"{benchmark}/{system}",
                        **SYSTEM_CONFIGS[system])


def _finish_cell(engine: FastEngine, summary: LifetimeSummary,
                 context: object) -> dict:
    """Summarize one completed cell (shared by both execution paths)."""
    return {"series": engine.series.to_payload()}


def _cell(scale: str, benchmark: str, system: str, seed: int) -> dict:
    """One grid cell: a single engine run (executes in a worker)."""
    engine = _build_cell(scale, benchmark, system, seed)
    return _finish_cell(engine, engine.run(), None)


register_batchable(f"{__name__}:_cell", _build_cell, _finish_cell)


def grid(scale: str, benchmarks: List[str], systems: List[str],
         seed: int) -> List[Cell]:
    """The figure's (benchmark x system) grid."""
    cells = []
    for bench in benchmarks:
        for system in systems:
            key = f"fig6/{scale}/{bench}/{system}"
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, benchmark=bench,
                                          system=system,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        systems: Optional[List[str]] = None,
        seed: int = 1, jobs: int = 1, batch: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Fig6Result:
    """Produce the survival series for every (benchmark, system) pair."""
    benches = benchmarks if benchmarks is not None else ["ocean", "mg"]
    names = systems if systems is not None else list(SYSTEM_CONFIGS)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner, batch=batch)
    values = runner.run(grid(scale, benches, names, seed))
    curves = [Fig6Curve(system=system, benchmark=bench,
                        series=LifetimeSeries.from_payload(
                            values[f"fig6/{scale}/{bench}/{system}"]
                            ["series"], label=f"{bench}/{system}"))
              for bench in benches for system in names]
    return Fig6Result(curves=curves, scale=scale)


def render(result: Fig6Result) -> str:
    """Sparkline per curve plus the lifetime-to-70% milestones."""
    lines = [f"Figure 6: usable-capacity curves (floor {result.floor:.0%}, "
             f"scale={result.scale})"]
    for bench in sorted({c.benchmark for c in result.curves}):
        lines.append(f"\n[{bench}]")
        for curve in result.curves:
            if curve.benchmark != bench:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            lines.append(format_series(curve.system, writes, usable,
                                       lo=result.floor, hi=1.0))
            milestone = curve.series.writes_to_usable(result.floor)
            lines.append(f"{'':24s} writes to {result.floor:.0%} usable: "
                         f"{milestone:,}" if milestone is not None else
                         f"{'':24s} never dropped to {result.floor:.0%}")
    return "\n".join(lines)


def as_dict(result: Fig6Result) -> Dict[str, Dict[str, Optional[int]]]:
    """Lifetime-to-70% milestones keyed by benchmark and system."""
    table: Dict[str, Dict[str, Optional[int]]] = {}
    for curve in result.curves:
        table.setdefault(curve.benchmark, {})[curve.system] = \
            curve.series.writes_to_usable(result.floor)
    return table
