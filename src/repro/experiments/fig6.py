"""Figure 6 — survival-rate curves for *ocean* and *mg*.

The paper plots the percentage of memory capacity still usable (down to
70 %) against writes, for six systems per benchmark:

``ECP6``, ``PAYG`` (no wear leveling), ``ECP6-SG``, ``PAYG-SG``, and the
revived ``ECP6-SG-WLR``, ``PAYG-SG-WLR``.

Expected shape: the no-WL systems drop almost immediately; Start-Gap helps
*ocean* far more than *mg*; PAYG postpones the first failure; WL-Reviver
extends every curve, much more for *mg*, and the ECP6 systems gain more
from revival than the PAYG ones (whose pool is nearly drained when failures
start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.metrics import LifetimeSeries
from .common import SYSTEM_CONFIGS, build_engine, scaled_parameters
from .report import format_series


@dataclass(frozen=True)
class Fig6Curve:
    """One system's survival curve."""

    system: str
    benchmark: str
    series: LifetimeSeries


@dataclass(frozen=True)
class Fig6Result:
    """All curves for the requested benchmarks."""

    curves: List[Fig6Curve]
    scale: str
    floor: float = 0.7


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        systems: Optional[List[str]] = None,
        seed: int = 1) -> Fig6Result:
    """Produce the survival series for every (benchmark, system) pair."""
    params = scaled_parameters(scale)
    benches = benchmarks if benchmarks is not None else ["ocean", "mg"]
    names = systems if systems is not None else list(SYSTEM_CONFIGS)
    curves = []
    for bench in benches:
        for system in names:
            engine = build_engine(params, bench, seed=seed,
                                  label=f"{bench}/{system}",
                                  **SYSTEM_CONFIGS[system])
            engine.run()
            curves.append(Fig6Curve(system=system, benchmark=bench,
                                    series=engine.series))
    return Fig6Result(curves=curves, scale=scale)


def render(result: Fig6Result) -> str:
    """Sparkline per curve plus the lifetime-to-70% milestones."""
    lines = [f"Figure 6: usable-capacity curves (floor {result.floor:.0%}, "
             f"scale={result.scale})"]
    for bench in sorted({c.benchmark for c in result.curves}):
        lines.append(f"\n[{bench}]")
        for curve in result.curves:
            if curve.benchmark != bench:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            lines.append(format_series(curve.system, writes, usable,
                                       lo=result.floor, hi=1.0))
            milestone = curve.series.writes_to_usable(result.floor)
            lines.append(f"{'':24s} writes to {result.floor:.0%} usable: "
                         f"{milestone:,}" if milestone is not None else
                         f"{'':24s} never dropped to {result.floor:.0%}")
    return "\n".join(lines)


def as_dict(result: Fig6Result) -> Dict[str, Dict[str, Optional[int]]]:
    """Lifetime-to-70% milestones keyed by benchmark and system."""
    table: Dict[str, Dict[str, Optional[int]]] = {}
    for curve in result.curves:
        table.setdefault(curve.benchmark, {})[curve.system] = \
            curve.series.writes_to_usable(result.floor)
    return table
