"""Array scaling — lifetime and usable space vs shard count.

Beyond the paper's single-chip figures: shard the same total PCM capacity
across N independent devices behind the interleaved decoder
(:mod:`repro.array`) and run each array to its end of life in degraded
mode.  Expected shapes:

* under *uniform* and *hotspot* workloads, block interleaving spreads the
  hot set across every shard, so total lifetime is roughly flat in the
  shard count while the tail degrades more gracefully (shards die one at
  a time instead of the whole chip at once);
* under the *attack* workload — a layout-aware adversary aiming 90 % of
  the traffic at the addresses one shard owns — the victim shard dies an
  array-equivalent of N times early, and the degraded array's survival
  advantage over fail-stop is at its largest.

Per cell one :class:`~repro.array.ArrayEngine` campaign runs serially
(``jobs=1``); the experiment grid itself parallelizes across cells, so
there is never a pool inside a pool.

NOTE: :mod:`repro.array` is imported lazily inside the cell functions —
the array engine reuses the parallel harness, so a module-level import
here would cycle through :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigurationError
from ..sim.metrics import LifetimeSeries
from ..traces import DistributionTrace
from .common import scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_series

#: Shard counts swept (1 = the single-chip baseline).
SHARD_COUNTS = (1, 2, 4, 8)

#: Global workloads; "attack" concentrates 90% of traffic on shard 0,
#: "zipf" is the serving-traffic popularity law (skew not layout-aligned).
WORKLOADS = ("uniform", "hotspot", "attack", "zipf")

#: OS page size in blocks — small enough that the tiny scale still
#: divides into 8 shards of whole pages.
PAGE_BLOCKS = 16


@dataclass(frozen=True)
class ArrayCurve:
    """One (workload, shard count) array campaign."""

    workload: str
    shards: int
    total_writes: int
    dead_shards: int
    rounds: int
    stop: str
    series: LifetimeSeries


@dataclass(frozen=True)
class FigArrayResult:
    """All campaigns of the scaling sweep."""

    curves: List[ArrayCurve]
    scale: str
    policy: str
    floor: float = 0.0


def _workload_trace(workload: str, shards: int, software_blocks: int,
                    interleave: str, seed: int) -> DistributionTrace:
    """Build the global distribution for one cell (lazy array import)."""
    from ..array import (InterleavedDecoder, hotspot_workload,
                         shard_attack_workload, uniform_workload,
                         zipf_workload)
    decoder = InterleavedDecoder(shards, software_blocks,
                                 interleave=interleave,
                                 page_blocks=PAGE_BLOCKS)
    if workload == "uniform":
        return uniform_workload(decoder, seed=seed)
    if workload == "hotspot":
        return hotspot_workload(decoder, cov=3.0, seed=seed)
    if workload == "attack":
        return shard_attack_workload(decoder, shard=0, hot_share=0.9,
                                     seed=seed)
    if workload == "zipf":
        return zipf_workload(decoder, exponent=1.0, seed=seed)
    raise ConfigurationError(
        f"unknown workload {workload!r}; choose from {WORKLOADS}")


def _cell(scale: str, workload: str, shards: int, policy: str,
          seed: int) -> dict:
    """One grid cell: a whole array campaign (executes in a worker)."""
    from ..array import ArrayConfig, ArrayEngine
    params = scaled_parameters(scale)
    config = ArrayConfig(
        num_shards=shards,
        shard_blocks=params.num_blocks // shards,
        policy=policy, page_blocks=PAGE_BLOCKS,
        mean_endurance=params.mean_endurance,
        psi=params.psi,
        batch_writes=max(1, params.batch_writes // shards),
        seed=seed)
    trace = _workload_trace(workload, shards, config.software_blocks,
                            config.interleave, seed)
    engine = ArrayEngine(config, trace,
                         label=f"{workload}/{shards}x", jobs=1)
    result = engine.run()
    report = result.report
    stop = report.stop.render() if report.stop is not None else "running"
    return {"total_writes": report.total_writes,
            "dead_shards": len(report.dead_shards),
            "rounds": result.rounds,
            "stop": stop,
            "series": result.series.to_payload()}


def _key(scale: str, workload: str, shards: int, policy: str) -> str:
    return f"fig_array/{scale}/{policy}/{workload}/{shards}x"


def grid(scale: str, workloads: List[str], shard_counts: List[int],
         policy: str, seed: int) -> List[Cell]:
    """The (workload x shard count) grid."""
    cells = []
    for workload in workloads:
        for shards in shard_counts:
            key = _key(scale, workload, shards, policy)
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, workload=workload,
                                          shards=shards, policy=policy,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        shard_counts: Optional[List[int]] = None,
        policy: str = "degraded",
        seed: int = 1, jobs: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> FigArrayResult:
    """Sweep shard counts and workloads at constant total capacity.

    ``benchmarks`` (the harness's generic filter flag) selects workload
    names here — there are no trace benchmarks at the array level.
    """
    workloads = [w for w in WORKLOADS
                 if benchmarks is None or w in benchmarks]
    if not workloads:
        raise ConfigurationError(
            f"no array workloads selected; choose from {WORKLOADS}")
    counts = list(shard_counts) if shard_counts is not None \
        else list(SHARD_COUNTS)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner)
    values = runner.run(grid(scale, workloads, counts, policy, seed))
    curves = []
    for workload in workloads:
        for shards in counts:
            value = values[_key(scale, workload, shards, policy)]
            curves.append(ArrayCurve(
                workload=workload, shards=shards,
                total_writes=int(value["total_writes"]),
                dead_shards=int(value["dead_shards"]),
                rounds=int(value["rounds"]),
                stop=str(value["stop"]),
                series=LifetimeSeries.from_payload(
                    value["series"], label=f"{workload}/{shards}x")))
    return FigArrayResult(curves=curves, scale=scale, policy=policy)


def render(result: FigArrayResult) -> str:
    """Usable-space sparkline and milestones per (workload, shards)."""
    lines = [f"Array scaling: lifetime and usable space vs shard count "
             f"(scale={result.scale}, policy={result.policy})"]
    for workload in sorted({c.workload for c in result.curves}):
        lines.append(f"\n[{workload}]")
        for curve in result.curves:
            if curve.workload != workload:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            label = f"{curve.shards}x shards"
            lines.append(format_series(label, writes, usable,
                                       lo=result.floor, hi=1.0))
            milestone = curve.series.writes_to_usable(0.5)
            lines.append(
                f"{'':24s} lifetime {curve.total_writes:,} writes, "
                f"{curve.dead_shards} shard deaths, "
                "writes to 50% usable: "
                + (f"{milestone:,}" if milestone is not None
                   else "not reached"))
    return "\n".join(lines)


def as_dict(result: FigArrayResult) -> Dict[str, Dict[str, dict]]:
    """Lifetime/milestone table keyed by workload and shard count."""
    table: Dict[str, Dict[str, dict]] = {}
    for curve in result.curves:
        table.setdefault(curve.workload, {})[f"{curve.shards}x"] = {
            "total_writes": curve.total_writes,
            "dead_shards": curve.dead_shards,
            "rounds": curve.rounds,
            "stop": curve.stop,
            "writes_to_50pct_usable":
                curve.series.writes_to_usable(0.5),
        }
    return table
