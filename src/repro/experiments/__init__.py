"""Experiment harness: one runner per table and figure of the paper.

Each module exposes a ``run(scale=...)`` function returning a structured
result plus a ``render(result)`` producing the same rows/series the paper
reports, and registers itself with the CLI
(``python -m repro.experiments <experiment>`` or the ``repro-experiments``
entry point).

Scales: every experiment accepts ``scale`` in ``{"tiny", "small", "full"}``
controlling the chip size and endurance (see
:func:`repro.experiments.common.scaled_parameters`).  ``tiny`` is what the
pytest-benchmark suite runs; ``small`` gives publication-shaped curves in
minutes; ``full`` is the largest configuration that is still tractable in
pure Python.
"""

from . import (attacks, common, parallel, report, table1, fig5, fig6, fig7,
               fig8, fig_array, fig_elastic, fig_wa, table2)

EXPERIMENTS = {
    "table1": table1,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "table2": table2,
    # Beyond the numbered figures: the paper's malicious-wear claim.
    "attacks": attacks,
    # Beyond the paper: shard-array scaling on top of the single-chip stack.
    "fig_array": fig_array,
    # Beyond the paper: reviver gain under FTL write amplification.
    "fig_wa": fig_wa,
    # Beyond the paper: elastic balancing and live scale-out (repro.balance).
    "fig_elastic": fig_elastic,
}

__all__ = ["EXPERIMENTS", "attacks", "common", "parallel", "report",
           "table1", "fig5", "fig6", "fig7", "fig8", "fig_array",
           "fig_elastic", "fig_wa", "table2"]
