"""Process-pool execution of experiment grids.

Every figure/table runner evaluates a (benchmark x system-config x seed)
grid of independent chip lifetimes.  This module fans such grids out
across worker processes:

* each grid cell is a :class:`Cell` — a unique key, a picklable dotted
  reference to a module-level cell function, and plain-data kwargs;
* per-cell seeds are derived deterministically from the experiment seed
  and the cell key via :func:`repro.rng.derive_rng` (:func:`cell_seed`),
  so results do not depend on worker scheduling and the serial and
  parallel paths are bit-for-bit identical;
* cell outputs are JSON-serializable records; with ``resume`` pointing at
  a JSON file, completed cells are persisted after every finish and
  skipped on reruns (an interrupted sweep continues where it stopped);
* :meth:`GridRunner.report` summarizes per-cell wall/CPU time, queue
  wait, and worker utilization.

Timing is measured *inside* the cell by one shared helper
(:func:`repro.telemetry.timing.timed_call`), so the serial and pool paths
report identical semantics; the pool path additionally derives each
cell's queue wait as time-to-completion minus in-cell wall time.

``jobs <= 1`` executes in-process with no pool (and no fork overhead) —
the default, and the reference the parallel path must reproduce exactly.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Sequence, Tuple, Union)

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng, spawn_seed
from ..telemetry.timing import timed_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.session import TelemetrySession

#: Signature of the progress callback: (finished cell, done count, total).
ProgressFn = Callable[["CellOutcome", int, int], None]


def cell_seed(seed: SeedLike, key: str) -> int:
    """Deterministic per-cell seed derived from the experiment seed.

    Stable across processes, runs, and submission order: only the
    experiment seed and the cell key matter.
    """
    return spawn_seed(derive_rng(seed, f"cell:{key}"))


def jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json`` accepts them."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


@dataclass(frozen=True)
class Cell:
    """One independent unit of an experiment grid."""

    #: Unique id, e.g. ``"fig5/tiny/ocean/ECP6-SG"`` — the resume key and
    #: the seed-derivation label.
    key: str
    #: Dotted reference ``"package.module:function"`` to a module-level
    #: function (workers re-import it, so it must not be a closure).
    fn: str
    #: Plain-data keyword arguments (must pickle and round-trip JSON).
    kwargs: Dict[str, Any]


@dataclass(frozen=True)
class CellOutcome:
    """A finished (or resumed) cell."""

    key: str
    value: Any
    #: In-cell wall-clock seconds (identical semantics serial or pooled).
    seconds: float
    #: True when the value came from the resume file, not a fresh run.
    cached: bool = False
    #: In-cell process CPU seconds (user + system, in the worker).
    cpu_seconds: float = 0.0
    #: Pool only: time the finished result spent waiting on a worker slot
    #: or on the parent draining other completions (0.0 when serial).
    queue_seconds: float = 0.0


def _execute(fn: str, kwargs: Dict[str, Any]) -> Any:
    """Resolve a dotted cell reference and call it (worker entry point)."""
    module_name, _, func_name = fn.partition(":")
    module = importlib.import_module(module_name)
    return jsonify(getattr(module, func_name)(**kwargs))


def _execute_timed(fn: str,
                   kwargs: Dict[str, Any]) -> Tuple[Any, float, float]:
    """Run a cell under the shared timer; returns (value, wall, cpu).

    Both execution paths go through here, so "seconds" always means the
    same thing: wall time inside the cell, in whichever process ran it.
    """
    value, timing = timed_call(_execute, fn, kwargs)
    return value, timing.wall, timing.cpu


class GridRunner:
    """Runs a grid of cells serially or across a process pool."""

    def __init__(self, jobs: int = 1,
                 resume: Union[None, str, Path] = None,
                 progress: Optional[ProgressFn] = None,
                 telem: Optional["TelemetrySession"] = None) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self.resume = Path(resume) if resume is not None else None
        self.progress = progress
        #: Optional session accumulating grid metrics (cell wall/CPU/queue
        #: counters) in the parent process.
        self.telem = telem
        self.outcomes: List[CellOutcome] = []

    # ------------------------------------------------------------------ run

    def run(self, cells: Sequence[Cell]) -> Dict[str, Any]:
        """Execute every cell; return ``{key: value}`` for the whole grid."""
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate cell keys in grid")
        completed = self._load_resume()
        results: Dict[str, Any] = {}
        pending: List[Cell] = []
        for cell in cells:
            if cell.key in completed:
                record = completed[cell.key]
                results[cell.key] = record["value"]
                self._finish(CellOutcome(
                    key=cell.key, value=results[cell.key],
                    seconds=float(record.get("seconds", 0.0)),
                    cpu_seconds=float(record.get("cpu_seconds", 0.0)),
                    queue_seconds=float(record.get("queue_seconds", 0.0)),
                    cached=True), len(results), len(cells))
            else:
                pending.append(cell)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_pool(pending, results, completed, len(cells))
            else:
                self._run_serial(pending, results, completed, len(cells))
        return results

    def _run_serial(self, pending: List[Cell], results: Dict[str, Any],
                    completed: Dict[str, dict], total: int) -> None:
        for cell in pending:
            value, wall, cpu = _execute_timed(cell.fn, cell.kwargs)
            self._record(cell.key, value, wall, cpu, 0.0,
                         results, completed, total)

    def _run_pool(self, pending: List[Cell], results: Dict[str, Any],
                  completed: Dict[str, dict], total: int) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            submitted = time.perf_counter()
            futures = {pool.submit(_execute_timed, cell.fn, cell.kwargs): cell
                       for cell in pending}
            for future in as_completed(futures):
                cell = futures[future]
                value, wall, cpu = future.result()
                # The worker measured the in-cell wall time; whatever is
                # left of the time-to-completion was spent queued (waiting
                # for a worker slot, pickling, or parent-side draining).
                queue = max(0.0, time.perf_counter() - submitted - wall)
                self._record(cell.key, value, wall, cpu, queue,
                             results, completed, total)

    def _record(self, key: str, value: Any, seconds: float, cpu: float,
                queue: float, results: Dict[str, Any],
                completed: Dict[str, dict], total: int) -> None:
        results[key] = value
        completed[key] = {"value": value, "seconds": seconds,
                          "cpu_seconds": cpu, "queue_seconds": queue}
        self._save_resume(completed)
        self._finish(CellOutcome(key=key, value=value, seconds=seconds,
                                 cpu_seconds=cpu, queue_seconds=queue),
                     len(results), total)

    def _finish(self, outcome: CellOutcome, done: int, total: int) -> None:
        self.outcomes.append(outcome)
        if self.telem is not None and not outcome.cached:
            self.telem.count("grid.cells")
            self.telem.count("grid.wall_seconds", outcome.seconds)
            self.telem.count("grid.cpu_seconds", outcome.cpu_seconds)
            self.telem.count("grid.queue_seconds", outcome.queue_seconds)
            self.telem.observe("grid.cell_wall", outcome.seconds)
        if self.progress is not None:
            self.progress(outcome, done, total)

    # ---------------------------------------------------------------- resume

    def _load_resume(self) -> Dict[str, dict]:
        if self.resume is None or not self.resume.exists():
            return {}
        try:
            payload = json.loads(self.resume.read_text())
        except json.JSONDecodeError as exc:
            # Saves go through a tmp file + atomic replace, so a mangled
            # file means outside editing; refuse rather than silently
            # recompute over cached results the user may still want.
            raise ConfigurationError(
                f"resume file {self.resume} is not valid JSON: {exc}; "
                "delete it to start over") from exc
        return payload.get("cells", {})

    def _save_resume(self, completed: Dict[str, dict]) -> None:
        if self.resume is None:
            return
        self.resume.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.resume.with_suffix(self.resume.suffix + ".tmp")
        tmp.write_text(json.dumps({"cells": completed}, sort_keys=True))
        os.replace(tmp, self.resume)

    # ---------------------------------------------------------------- report

    def report(self) -> str:
        """Per-cell timing summary of the last :meth:`run`."""
        if not self.outcomes:
            return "no cells executed"
        fresh = [o for o in self.outcomes if not o.cached]
        cached = len(self.outcomes) - len(fresh)
        lines = [f"{len(self.outcomes)} cells "
                 f"({cached} resumed, jobs={self.jobs})"]
        for outcome in sorted(self.outcomes, key=lambda o: o.key):
            marker = ("cached" if outcome.cached
                      else f"{outcome.seconds:.2f}s "
                           f"(cpu {outcome.cpu_seconds:.2f}s)")
            lines.append(f"  {outcome.key:<44s} {marker}")
        if fresh:
            slowest = max(fresh, key=lambda o: o.seconds)
            lines.append(f"  slowest: {slowest.key} "
                         f"({slowest.seconds:.2f}s)")
            wall = sum(o.seconds for o in fresh)
            cpu = sum(o.cpu_seconds for o in fresh)
            queue = sum(o.queue_seconds for o in fresh)
            lines.append(f"  total: wall {wall:.2f}s, cpu {cpu:.2f}s, "
                         f"queue {queue:.2f}s")
            # CPU seconds actually burned per second the cells were open:
            # near 1.0 means compute-bound workers, well below 1.0 means
            # the cells idled (I/O, GIL handoffs, oversubscription).
            if wall > 0:
                lines.append(f"  worker utilization: {cpu / wall:.0%}")
        return "\n".join(lines)


def make_runner(jobs: int = 1, resume: Union[None, str, Path] = None,
                progress: Optional[ProgressFn] = None,
                runner: Optional[GridRunner] = None) -> GridRunner:
    """The runner the experiment modules share: reuse *runner* or build one."""
    return runner if runner is not None else GridRunner(
        jobs=jobs, resume=resume, progress=progress)
