"""Process-pool execution of experiment grids.

Every figure/table runner evaluates a (benchmark x system-config x seed)
grid of independent chip lifetimes.  This module fans such grids out
across worker processes:

* each grid cell is a :class:`Cell` — a unique key, a picklable dotted
  reference to a module-level cell function, and plain-data kwargs;
* per-cell seeds are derived deterministically from the experiment seed
  and the cell key via :func:`repro.rng.derive_rng` (:func:`cell_seed`),
  so results do not depend on worker scheduling and the serial and
  parallel paths are bit-for-bit identical;
* cell outputs are JSON-serializable records; with ``resume`` pointing at
  a JSON file, completed cells are persisted after every finish and
  skipped on reruns (an interrupted sweep continues where it stopped);
* :meth:`GridRunner.report` summarizes per-cell wall/CPU time, queue
  wait, and worker utilization.

Timing is measured *inside* the cell by one shared helper
(:func:`repro.telemetry.timing.timed_call`), so the serial and pool paths
report identical semantics; the pool path additionally derives each
cell's queue wait as time-to-completion minus in-cell wall time.

``jobs <= 1`` executes in-process with no pool (and no fork overhead) —
the default, and the reference the parallel path must reproduce exactly.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Sequence, Tuple, Union)

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng, spawn_seed
from ..sim.batched import is_batchable, run_cell_batch
from ..telemetry.timing import timed_call
from .shm import pack_result, unpack_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.session import TelemetrySession

#: Signature of the progress callback: (finished cell, done count, total).
ProgressFn = Callable[["CellOutcome", int, int], None]


def cell_seed(seed: SeedLike, key: str) -> int:
    """Deterministic per-cell seed derived from the experiment seed.

    Stable across processes, runs, and submission order: only the
    experiment seed and the cell key matter.
    """
    return spawn_seed(derive_rng(seed, f"cell:{key}"))


def jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json`` accepts them."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


@dataclass(frozen=True)
class Cell:
    """One independent unit of an experiment grid."""

    #: Unique id, e.g. ``"fig5/tiny/ocean/ECP6-SG"`` — the resume key and
    #: the seed-derivation label.
    key: str
    #: Dotted reference ``"package.module:function"`` to a module-level
    #: function (workers re-import it, so it must not be a closure).
    fn: str
    #: Plain-data keyword arguments (must pickle and round-trip JSON).
    kwargs: Dict[str, Any]


@dataclass(frozen=True)
class CellOutcome:
    """A finished (or resumed) cell."""

    key: str
    value: Any
    #: In-cell wall-clock seconds (identical semantics serial or pooled).
    seconds: float
    #: True when the value came from the resume file, not a fresh run.
    cached: bool = False
    #: In-cell process CPU seconds (user + system, in the worker).
    cpu_seconds: float = 0.0
    #: Pool only: time the finished result spent waiting on a worker slot
    #: or on the parent draining other completions (0.0 when serial).
    queue_seconds: float = 0.0


def _execute(fn: str, kwargs: Dict[str, Any]) -> Any:
    """Resolve a dotted cell reference and call it (worker entry point)."""
    module_name, _, func_name = fn.partition(":")
    module = importlib.import_module(module_name)
    return jsonify(getattr(module, func_name)(**kwargs))


def _execute_timed(fn: str,
                   kwargs: Dict[str, Any]) -> Tuple[Any, float, float]:
    """Run a cell under the shared timer; returns (value, wall, cpu).

    Both execution paths go through here, so "seconds" always means the
    same thing: wall time inside the cell, in whichever process ran it.
    """
    value, timing = timed_call(_execute, fn, kwargs)
    return value, timing.wall, timing.cpu


def _execute_group(fn: str,
                   items: List[Tuple[str, Dict[str, Any]]]) -> Any:
    """Run a batchable same-function cell group through the SoA kernel."""
    return jsonify(run_cell_batch(fn, items))


def _execute_group_timed(fn: str, items: List[Tuple[str, Dict[str, Any]]]
                         ) -> Tuple[Any, float, float]:
    """Timed group execution: ``([(key, value), ...], wall, cpu)``."""
    value, timing = timed_call(_execute_group, fn, items)
    return value, timing.wall, timing.cpu


def _pool_cell(fn: str, kwargs: Dict[str, Any]) -> Tuple[Any, float, float]:
    """Worker entry for one pooled cell; result rides shared memory."""
    value, wall, cpu = _execute_timed(fn, kwargs)
    return pack_result(value), wall, cpu


def _pool_group(fn: str, items: List[Tuple[str, Dict[str, Any]]]
                ) -> Tuple[Any, float, float]:
    """Worker entry for one pooled cell group; result rides shared memory."""
    value, wall, cpu = _execute_group_timed(fn, items)
    return pack_result(value), wall, cpu


class GridRunner:
    """Runs a grid of cells serially or across a process pool."""

    #: Resume saves are throttled to once per this many fresh cells (the
    #: final cell always flushes): each save rewrites the whole file, so
    #: per-cell saves cost O(n^2) bytes over a large campaign.
    _SAVE_EVERY = 8

    def __init__(self, jobs: int = 1,
                 resume: Union[None, str, Path] = None,
                 progress: Optional[ProgressFn] = None,
                 telem: Optional["TelemetrySession"] = None,
                 batch: int = 1) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        self.jobs = jobs
        #: Cells per struct-of-arrays group: same-function cells registered
        #: with :mod:`repro.sim.batched` run ``batch`` at a time in one
        #: lockstep kernel.  1 (the default) keeps the per-cell path.
        self.batch = batch
        self.resume = Path(resume) if resume is not None else None
        self.progress = progress
        #: Optional session accumulating grid metrics (cell wall/CPU/queue
        #: counters) in the parent process.
        self.telem = telem
        self.outcomes: List[CellOutcome] = []
        self._unsaved = 0
        self._dirty = False

    # ------------------------------------------------------------------ run

    def run(self, cells: Sequence[Cell]) -> Dict[str, Any]:
        """Execute every cell; return ``{key: value}`` for the whole grid."""
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate cell keys in grid")
        completed = self._load_resume()
        results: Dict[str, Any] = {}
        pending: List[Cell] = []
        for cell in cells:
            if cell.key in completed:
                record = completed[cell.key]
                results[cell.key] = record["value"]
                self._finish(CellOutcome(
                    key=cell.key, value=results[cell.key],
                    seconds=float(record.get("seconds", 0.0)),
                    cpu_seconds=float(record.get("cpu_seconds", 0.0)),
                    queue_seconds=float(record.get("queue_seconds", 0.0)),
                    cached=True), len(results), len(cells))
            else:
                pending.append(cell)
        if pending:
            try:
                groups, singles = self._plan(pending)
                if self.jobs > 1 and len(pending) > 1:
                    self._run_pool(groups, singles, results, completed,
                                   len(cells))
                else:
                    self._run_serial(groups, singles, results, completed,
                                     len(cells))
            finally:
                # Throttled saves leave a tail of unsaved cells when a run
                # dies mid-campaign; persist whatever completed.
                self._flush_resume(completed)
        return results

    def _plan(self, pending: List[Cell]
              ) -> Tuple[List[List[Cell]], List[Cell]]:
        """Split pending cells into batchable groups and per-cell work.

        Same-function cells with a registered batchable spec are chunked
        ``self.batch`` at a time (a chunk of one is just a single);
        everything else keeps the per-cell path, in input order.
        """
        if self.batch <= 1:
            return [], list(pending)
        groups: List[List[Cell]] = []
        singles: List[Cell] = []
        by_fn: Dict[str, List[Cell]] = {}
        batchable: Dict[str, bool] = {}
        for cell in pending:
            if cell.fn not in batchable:
                batchable[cell.fn] = is_batchable(cell.fn)
            if batchable[cell.fn]:
                by_fn.setdefault(cell.fn, []).append(cell)
            else:
                singles.append(cell)
        for cells in by_fn.values():
            for i in range(0, len(cells), self.batch):
                chunk = cells[i:i + self.batch]
                if len(chunk) == 1:
                    singles.append(chunk[0])
                else:
                    groups.append(chunk)
        return groups, singles

    def _run_serial(self, groups: List[List[Cell]], singles: List[Cell],
                    results: Dict[str, Any], completed: Dict[str, dict],
                    total: int) -> None:
        for group in groups:
            outputs, wall, cpu = _execute_group_timed(
                group[0].fn, [(cell.key, cell.kwargs) for cell in group])
            self._record_group(group, outputs, wall, cpu, 0.0,
                               results, completed, total)
        for cell in singles:
            value, wall, cpu = _execute_timed(cell.fn, cell.kwargs)
            self._record(cell.key, value, wall, cpu, 0.0,
                         results, completed, total)

    def _run_pool(self, groups: List[List[Cell]], singles: List[Cell],
                  results: Dict[str, Any], completed: Dict[str, dict],
                  total: int) -> None:
        work: List[Tuple[str, Any]] = ([("group", group) for group in groups]
                                       + [("cell", cell) for cell in singles])
        workers = min(self.jobs, len(work))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[Any, Tuple[Tuple[str, Any], float]] = {}
            cursor = 0

            def submit_next() -> None:
                nonlocal cursor
                if cursor >= len(work):
                    return
                kind, item = work[cursor]
                cursor += 1
                if kind == "group":
                    future = pool.submit(
                        _pool_group, item[0].fn,
                        [(cell.key, cell.kwargs) for cell in item])
                else:
                    future = pool.submit(_pool_cell, item.fn, item.kwargs)
                # Per-future submit time: queue wait must measure *this*
                # future's time-to-completion, not the whole grid's.
                futures[future] = ((kind, item), time.perf_counter())  # repro: allow(DET-WALLCLOCK): queue-wait profile, excluded from --check diffs

            for _ in range(workers):
                submit_next()
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    (kind, item), submitted = futures.pop(future)
                    packed, wall, cpu = future.result()
                    value = unpack_result(packed)
                    # The worker measured the in-cell wall time; whatever
                    # is left since *this submission* was spent queued
                    # (waiting for a worker slot, pickling, or parent-side
                    # draining).
                    queue = max(0.0,
                                time.perf_counter() - submitted - wall)  # repro: allow(DET-WALLCLOCK): queue-wait profile, excluded from --check diffs
                    if kind == "group":
                        self._record_group(item, value, wall, cpu, queue,
                                           results, completed, total)
                    else:
                        self._record(item.key, value, wall, cpu, queue,
                                     results, completed, total)
                    submit_next()

    def _record_group(self, cells: List[Cell], outputs: Any, wall: float,
                      cpu: float, queue: float, results: Dict[str, Any],
                      completed: Dict[str, dict], total: int) -> None:
        """Record a batched group's results, splitting timing evenly.

        One kernel ran the whole group, so per-cell wall/CPU/queue are the
        group totals divided evenly — the grid totals stay truthful.
        """
        got = {key: value for key, value in outputs}
        missing = [cell.key for cell in cells if cell.key not in got]
        if missing:
            raise ConfigurationError(
                f"batched group dropped cells {missing[:3]}")
        share = 1.0 / len(cells)
        for cell in cells:
            self._record(cell.key, got[cell.key], wall * share,
                         cpu * share, queue * share,
                         results, completed, total)

    def _record(self, key: str, value: Any, seconds: float, cpu: float,
                queue: float, results: Dict[str, Any],
                completed: Dict[str, dict], total: int) -> None:
        results[key] = value
        completed[key] = {"value": value, "seconds": seconds,
                          "cpu_seconds": cpu, "queue_seconds": queue}
        self._unsaved += 1
        self._dirty = True
        if self._unsaved >= self._SAVE_EVERY or len(results) >= total:
            self._save_resume(completed)
        self._finish(CellOutcome(key=key, value=value, seconds=seconds,
                                 cpu_seconds=cpu, queue_seconds=queue),
                     len(results), total)

    def _finish(self, outcome: CellOutcome, done: int, total: int) -> None:
        self.outcomes.append(outcome)
        if self.telem is not None and not outcome.cached:
            self.telem.count("grid.cells")
            self.telem.count("grid.wall_seconds", outcome.seconds)
            self.telem.count("grid.cpu_seconds", outcome.cpu_seconds)
            self.telem.count("grid.queue_seconds", outcome.queue_seconds)
            self.telem.observe("grid.cell_wall", outcome.seconds)
        if self.progress is not None:
            self.progress(outcome, done, total)

    # ---------------------------------------------------------------- resume

    def _load_resume(self) -> Dict[str, dict]:
        if self.resume is None or not self.resume.exists():
            return {}
        try:
            payload = json.loads(self.resume.read_text())
        except json.JSONDecodeError as exc:
            # Saves go through a tmp file + atomic replace, so a mangled
            # file means outside editing; refuse rather than silently
            # recompute over cached results the user may still want.
            raise ConfigurationError(
                f"resume file {self.resume} is not valid JSON: {exc}; "
                "delete it to start over") from exc
        return payload.get("cells", {})

    def _save_resume(self, completed: Dict[str, dict]) -> None:
        self._unsaved = 0
        self._dirty = False
        if self.resume is None:
            return
        self.resume.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.resume.with_suffix(self.resume.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"cells": completed}, handle, sort_keys=True)
            handle.flush()
            # Durable before rename: a crash between the rename and a
            # lazy writeback must not leave a torn file behind the
            # atomic-replace promise _load_resume relies on.
            os.fsync(handle.fileno())
        os.replace(tmp, self.resume)

    def _flush_resume(self, completed: Dict[str, dict]) -> None:
        """Persist any cells recorded since the last throttled save."""
        if self._dirty:
            self._save_resume(completed)

    # ---------------------------------------------------------------- report

    def report(self) -> str:
        """Per-cell timing summary of the last :meth:`run`."""
        if not self.outcomes:
            return "no cells executed"
        fresh = [o for o in self.outcomes if not o.cached]
        cached = len(self.outcomes) - len(fresh)
        lines = [f"{len(self.outcomes)} cells "
                 f"({cached} resumed, jobs={self.jobs})"]
        for outcome in sorted(self.outcomes, key=lambda o: o.key):
            marker = ("cached" if outcome.cached
                      else f"{outcome.seconds:.2f}s "
                           f"(cpu {outcome.cpu_seconds:.2f}s)")
            lines.append(f"  {outcome.key:<44s} {marker}")
        if fresh:
            slowest = max(fresh, key=lambda o: o.seconds)
            lines.append(f"  slowest: {slowest.key} "
                         f"({slowest.seconds:.2f}s)")
            wall = sum(o.seconds for o in fresh)
            cpu = sum(o.cpu_seconds for o in fresh)
            queue = sum(o.queue_seconds for o in fresh)
            lines.append(f"  total: wall {wall:.2f}s, cpu {cpu:.2f}s, "
                         f"queue {queue:.2f}s")
            # CPU seconds actually burned per second the cells were open:
            # near 1.0 means compute-bound workers, well below 1.0 means
            # the cells idled (I/O, GIL handoffs, oversubscription).
            if wall > 0:
                lines.append(f"  worker utilization: {cpu / wall:.0%}")
        return "\n".join(lines)


def make_runner(jobs: int = 1, resume: Union[None, str, Path] = None,
                progress: Optional[ProgressFn] = None,
                runner: Optional[GridRunner] = None,
                batch: int = 1) -> GridRunner:
    """The runner the experiment modules share: reuse *runner* or build one."""
    return runner if runner is not None else GridRunner(
        jobs=jobs, resume=resume, progress=progress, batch=batch)
