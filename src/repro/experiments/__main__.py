"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig5 --scale small --jobs 4
    python -m repro.experiments all --scale tiny --jobs 4 --resume out/
    repro-experiments fig7 --benchmarks ocean
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import EXPERIMENTS
from .parallel import CellOutcome, GridRunner


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The harness CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the WL-Reviver paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "full"],
                        help="chip scale (default: small)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict to these benchmarks where applicable")
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed (default: 1)")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for the experiment grid "
                             "(default: 1 = serial; results are identical "
                             "at any job count)")
    parser.add_argument("--batch", type=_positive_int, default=1,
                        metavar="N",
                        help="cells per struct-of-arrays group (default: "
                             "1 = per-cell engines; results are identical "
                             "at any batch size)")
    parser.add_argument("--resume", type=Path, default=None, metavar="DIR",
                        help="persist per-cell results under DIR as JSON "
                             "and skip cells already completed there")
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="also dump machine-readable results as JSON")
    return parser


def _progress_printer(outcome: CellOutcome, done: int, total: int) -> None:
    state = "cached" if outcome.cached else f"{outcome.seconds:.1f}s"
    print(f"  [{done}/{total}] {outcome.key} ({state})", file=sys.stderr)


def run_experiment(name: str, scale: str, seed: int,
                   benchmarks: Optional[List[str]],
                   jobs: int = 1, batch: int = 1,
                   resume: Optional[Path] = None,
                   quiet: bool = False) -> tuple:
    """Run one experiment; returns (rendered report, machine-readable)."""
    module = EXPERIMENTS[name]
    kwargs = {"scale": scale, "seed": seed}
    if benchmarks and name != "table1":
        kwargs["benchmarks"] = benchmarks
    if name == "table1":
        kwargs.pop("seed")
    runner = GridRunner(
        jobs=jobs, batch=batch,
        resume=resume / f"{name}-{scale}.json" if resume else None,
        progress=None if quiet else _progress_printer)
    started = time.time()  # repro: allow(DET-WALLCLOCK): CLI progress line, never enters a result payload
    result = module.run(runner=runner, **kwargs)
    rendered = module.render(result)
    elapsed = time.time() - started  # repro: allow(DET-WALLCLOCK): CLI progress line, never enters a result payload
    cached = sum(1 for o in runner.outcomes if o.cached)
    timing = (f"[{name}: {elapsed:.1f}s, {len(runner.outcomes)} cells"
              + (f", {cached} resumed" if cached else "")
              + (f", jobs={jobs}" if jobs > 1 else "") + "]")
    return (f"{rendered}\n{timing}", module.as_dict(result))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    collected = {}
    for name in names:
        rendered, data = run_experiment(name, args.scale, args.seed,
                                        args.benchmarks,
                                        jobs=args.jobs, batch=args.batch,
                                        resume=args.resume)
        collected[name] = data
        print(rendered)
        print()
    if args.json is not None:
        payload = {"scale": args.scale, "seed": args.seed,
                   "results": collected}
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"[wrote {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
