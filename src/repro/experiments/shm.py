"""Shared-memory result transport for pooled grid cells.

Large cell payloads (lifetime series, merged telemetry snapshots, array
shard reports) round-trip through the process pool as pickled objects by
default — the parent pays a deserialize-and-copy per cell on top of the
pipe transfer.  This module moves the payload bytes through
:mod:`multiprocessing.shared_memory` instead: the worker serializes the
cell value to canonical JSON inside a shared segment and ships only the
``(name, size)`` handle over the pipe; the parent maps the segment, parses
in place, and unlinks it.

JSON is the transport encoding on purpose: grid cell values are required
to be JSON-round-trippable already (the resume file stores them as JSON),
so the shared-memory path cannot change a value the pickle path would
have preserved.

Small payloads are not worth a segment (two extra syscalls plus a 4 KiB
page each); anything under :data:`SHM_MIN_BYTES` — and anything that
fails to encode or allocate — falls back to the plain pickled path.

CPython 3.8-3.12 registers every attached segment with the
``resource_tracker`` even when another process owns its lifetime
(bpo-39959); without the explicit unregister calls below, both the worker
and the parent tracker would try to destroy the segment and warn at
shutdown.
"""

from __future__ import annotations

import json
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Tuple

#: Payloads smaller than this ride the regular pickle path.
SHM_MIN_BYTES = 4096

#: Wire tags for the two transport forms.
RAW = "raw"
SHM = "shm"


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Detach *segment* from this process's resource tracker.

    The other side of the pipe owns (and unlinks) the segment; keeping it
    registered here would double-destroy it at interpreter exit.
    """
    name = getattr(segment, "_name", segment.name)
    try:
        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # repro: allow(EXC-SWALLOW): best-effort tracker bookkeeping — worst case is a spurious cleanup warning at exit, never data loss
        pass


def pack_result(value: Any) -> Tuple[str, Any]:
    """Encode a cell value for the pipe; worker side.

    Returns ``(RAW, value)`` to pickle the value as-is, or
    ``(SHM, [name, nbytes])`` when the JSON bytes were parked in a shared
    segment the parent must consume with :func:`unpack_result`.
    """
    try:
        data = json.dumps(value).encode("utf-8")
    except (TypeError, ValueError):
        return (RAW, value)
    if len(data) < SHM_MIN_BYTES:
        return (RAW, value)
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(data))
    except OSError:
        return (RAW, value)
    try:
        segment.buf[:len(data)] = data
        name = segment.name
    finally:
        segment.close()
        _untrack(segment)
    return (SHM, [name, len(data)])


def unpack_result(packed: Tuple[str, Any]) -> Any:
    """Decode a :func:`pack_result` payload; parent side.

    Shared segments are unlinked here — each handle is single-use.
    """
    tag, body = packed
    if tag == RAW:
        return body
    name, nbytes = body
    segment = shared_memory.SharedMemory(name=name)
    try:
        data = bytes(segment.buf[:nbytes])
    finally:
        segment.close()
        # Attaching registered the segment with this process's tracker;
        # unlink() performs the matching unregister itself.
        segment.unlink()
    return json.loads(data.decode("utf-8"))
