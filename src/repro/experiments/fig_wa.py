"""fig_wa — reviver overhead under FTL write amplification.

Beyond the paper: the numbered figures drive the wear-leveler with the
*host* write stream, but a PCM deployed behind a page-mapping FTL sees
the *amplified* stream — host programs plus the garbage collector's
relocations (Desnoyers-style page-mapping accounting; see
:mod:`repro.workloads.ftl`).  This experiment measures how WL-Reviver's
lifetime gain holds up when the device-level stream is 1.2-4x the host
stream and skewed differently (GC relocations are drawn from the victim
blocks, not from the host's hot set):

* per (workload x GC policy) cell, a recorded host write stream is
  pushed through a :class:`~repro.workloads.ftl.PageMappingFTL`; the
  resulting physical program stream replays into the single-chip fast
  engine twice — recovery ``reviver`` vs ``none``;
* write-amplification counters flow through ``repro.telemetry``
  (``wa.host_writes`` / ``wa.gc_writes``) exactly as a production cell
  would report them;
* the table reports the WA ratio next to the lifetime gain, so the
  reviver's benefit can be read *per amplified write*.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..config import StartGapConfig
from ..sim import FastConfig, FastEngine
from ..telemetry import TelemetrySession, attach_ftl
from ..traces import FileTrace
from ..wl import StartGap
from ..workloads import (FTLConfig, GC_POLICIES, PageMappingFTL,
                         phase_shifting_hotspot, uniform_workload,
                         zipf_workload)
from .common import build_chip, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner

#: Host workloads the FTL amplifies, in report order.
WA_WORKLOADS = ("uniform", "zipf", "hotshift")

#: FTL geometry: pages per erase block, and free blocks the collector
#: keeps in reserve.  The physical page space is sized to the chip
#: (``num_blocks`` pages), so the program stream replays 1:1.
FTL_PAGES_PER_BLOCK = 64
FTL_FREE_BLOCKS = 2


@dataclass(frozen=True)
class FigWARow:
    """One (workload x GC policy) cell of the amplification table."""

    workload: str
    policy: str
    wa_ratio: float
    host_writes: int
    gc_writes: int
    erases: int
    lifetime_reviver: int
    lifetime_none: int
    avg_access: float

    @property
    def gain(self) -> float:
        """Lifetime multiplier of the reviver over plain Start-Gap."""
        if self.lifetime_none == 0:
            return float("inf")
        return self.lifetime_reviver / self.lifetime_none


@dataclass(frozen=True)
class FigWAResult:
    """All rows plus the scale they were measured at."""

    rows: List[FigWARow]
    scale: str


def _ftl_geometry(num_blocks: int, policy: str = "greedy") -> FTLConfig:
    """Size the FTL so physical pages == chip blocks (1:1 replay)."""
    physical_blocks = num_blocks // FTL_PAGES_PER_BLOCK
    logical_pages = (num_blocks
                     - (FTL_FREE_BLOCKS + 1) * FTL_PAGES_PER_BLOCK)
    return FTLConfig(logical_pages=logical_pages,
                     physical_blocks=physical_blocks,
                     pages_per_block=FTL_PAGES_PER_BLOCK,
                     gc_policy=policy,
                     gc_free_blocks=FTL_FREE_BLOCKS)


def _host_workload(kind: str, logical_pages: int, seed: int) -> Any:
    """The host-side write stream (write_ratio 1: every request wears)."""
    if kind == "uniform":
        return uniform_workload(logical_pages, write_ratio=1.0,
                                name="wa-uniform", seed=seed)
    if kind == "zipf":
        return zipf_workload(logical_pages, exponent=1.0, write_ratio=1.0,
                             name="wa-zipf", seed=seed)
    return phase_shifting_hotspot(logical_pages, phases=4,
                                  phase_requests=1024, write_ratio=1.0,
                                  name="wa-hotshift", seed=seed)


def _cell(scale: str, workload: str, policy: str, seed: int) -> dict:
    """One cell: amplify one host stream, run reviver vs none on it."""
    params = scaled_parameters(scale)
    ftl_config = _ftl_geometry(params.num_blocks, policy)
    host_writes = 2 * params.batch_writes
    host = _host_workload(workload, ftl_config.logical_pages, seed)
    addresses = host.take(host_writes)[:, 0]

    ftl = PageMappingFTL(ftl_config)
    session = TelemetrySession()
    attach_ftl(session, ftl)
    programmed = ftl.replay(addresses,
                            epoch_writes=params.batch_writes // 4)

    lifetimes: Dict[str, Dict[str, Any]] = {}
    for recovery in ("reviver", "none"):
        chip = build_chip(params, seed=seed)
        wl = StartGap(params.num_blocks,
                      config=StartGapConfig(psi=params.psi))
        trace = FileTrace(programmed, params.num_blocks,
                          name=f"wa-{workload}-{policy}")
        config = FastConfig(recovery=recovery,
                            batch_writes=params.batch_writes, seed=seed)
        engine = FastEngine(chip, wl, trace, config,
                            label=f"{workload}/{policy}/{recovery}")
        summary = engine.run()
        lifetimes[recovery] = {"lifetime_writes": summary.lifetime_writes,
                               "avg_access": summary.avg_access}

    counters = session.registry.snapshot()["counters"]
    return {
        "wa_ratio": ftl.wa_ratio(),
        "host_writes": int(counters["wa.host_writes"]),
        "gc_writes": int(counters["wa.gc_writes"]),
        "erases": int(counters["wa.erases"]),
        "epoch_series": ftl.epoch_series,
        "lifetimes": lifetimes,
    }


def _key(scale: str, workload: str, policy: str) -> str:
    return f"fig_wa/{scale}/{workload}/{policy}"


def grid(scale: str, workloads: List[str], policies: List[str],
         seed: int) -> List[Cell]:
    """The (workload x GC policy) grid."""
    cells = []
    for workload in workloads:
        for policy in policies:
            key = _key(scale, workload, policy)
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, workload=workload,
                                          policy=policy,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        policies: Optional[List[str]] = None,
        seed: int = 1, jobs: int = 1, batch: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> FigWAResult:
    """Measure reviver gain under FTL-amplified streams.

    *benchmarks* filters the host workloads (the generic CLI's
    ``--benchmarks`` flag reaches this parameter), *policies* the GC
    victim-selection policies.
    """
    workloads = list(benchmarks) if benchmarks is not None \
        else list(WA_WORKLOADS)
    sweep = list(policies) if policies is not None else list(GC_POLICIES)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner, batch=batch)
    values = runner.run(grid(scale, workloads, sweep, seed))
    rows = []
    for workload in workloads:
        for policy in sweep:
            value = values[_key(scale, workload, policy)]
            rows.append(FigWARow(
                workload=workload, policy=policy,
                wa_ratio=value["wa_ratio"],
                host_writes=value["host_writes"],
                gc_writes=value["gc_writes"],
                erases=value["erases"],
                lifetime_reviver=(
                    value["lifetimes"]["reviver"]["lifetime_writes"]),
                lifetime_none=value["lifetimes"]["none"]["lifetime_writes"],
                avg_access=value["lifetimes"]["reviver"]["avg_access"]))
    return FigWAResult(rows=rows, scale=scale)


def render(result: FigWAResult) -> str:
    """The reviver-overhead-vs-WA table."""
    header = (f"{'workload':>10s} {'gc':>12s} {'WA':>6s} "
              f"{'host':>8s} {'gc-wr':>8s} {'erase':>6s} "
              f"{'WLR life':>10s} {'SG life':>10s} {'gain':>6s} "
              f"{'access':>7s}")
    lines = [f"fig_wa: reviver gain under FTL write amplification "
             f"(scale={result.scale})", header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.workload:>10s} {row.policy:>12s} {row.wa_ratio:>6.3f} "
            f"{row.host_writes:>8,} {row.gc_writes:>8,} {row.erases:>6,} "
            f"{row.lifetime_reviver:>10,} {row.lifetime_none:>10,} "
            f"{row.gain:>6.2f} {row.avg_access:>7.3f}")
    return "\n".join(lines)


def as_dict(result: FigWAResult) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Machine-readable rows keyed by workload, then GC policy."""
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for row in result.rows:
        table.setdefault(row.workload, {})[row.policy] = {
            "wa_ratio": row.wa_ratio,
            "host_writes": row.host_writes,
            "gc_writes": row.gc_writes,
            "erases": row.erases,
            "lifetime_reviver": row.lifetime_reviver,
            "lifetime_none": row.lifetime_none,
            "gain": row.gain,
            "avg_access": row.avg_access,
        }
    return table
