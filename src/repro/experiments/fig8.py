"""Figure 8 — software-usable space under ongoing writes: LLS vs WL-Reviver.

For *ocean* and *mg*, the paper compares how software-usable PCM space
shrinks as writes proceed under LLS and under WL-Reviver (both over ECP6 +
Start-Gap).  Expected shape: LLS prevents the precipitous collapse of the
unrevived baseline but sustains far fewer writes than WL-Reviver — mainly
because it must restrict Start-Gap's address randomization to half-space
swaps, and secondarily because chunk-granularity reservation strands idle
blocks; *ocean*'s more uniform writes "barely help".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.batched import register_batchable
from ..sim.fast import FastEngine
from ..sim.metrics import LifetimeSeries, LifetimeSummary
from .common import build_engine, build_lls_engine, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, jsonify, make_runner
from .report import format_series

#: Systems of the figure, in plot order.
SYSTEMS = ("WL-Reviver", "LLS", "ECP6-SG")


@dataclass(frozen=True)
class Fig8Curve:
    """One system's usable-space curve."""

    system: str
    benchmark: str
    series: LifetimeSeries
    stats: dict


@dataclass(frozen=True)
class Fig8Result:
    """All curves for the requested benchmarks."""

    curves: List[Fig8Curve]
    scale: str


def _build_cell(scale: str, benchmark: str, system: str,
                seed: int) -> Optional[FastEngine]:
    """Assemble one cell's engine; LLS declines batching (``None``).

    ``LLSFastEngine`` rebuilds its wear-leveler and page pool mid-run,
    which the lockstep kernel's re-homed views cannot follow; those cells
    keep the per-cell path.
    """
    params = scaled_parameters(scale)
    if system == "WL-Reviver":
        return build_engine(params, benchmark, recovery="reviver",
                            dead_fraction=0.4, seed=seed,
                            label=f"{benchmark}/WL-Reviver")
    if system == "LLS":
        return None
    return build_engine(params, benchmark, recovery="none",
                        dead_fraction=0.4, seed=seed,
                        label=f"{benchmark}/ECP6-SG")


def _finish_cell(engine: FastEngine,
                 summary: Optional[LifetimeSummary],
                 context: object) -> dict:
    """Summarize one completed cell (shared by both execution paths)."""
    return {"series": engine.series.to_payload(),
            "stats": jsonify(engine.stats())}


def _cell(scale: str, benchmark: str, system: str, seed: int) -> dict:
    """One grid cell: a single engine run (executes in a worker)."""
    if system == "LLS":
        params = scaled_parameters(scale)
        engine = build_lls_engine(params, benchmark, dead_fraction=0.4,
                                  seed=seed, label=f"{benchmark}/LLS")
        engine.run()
        return _finish_cell(engine, None, None)
    engine = _build_cell(scale, benchmark, system, seed)
    return _finish_cell(engine, engine.run(), None)


register_batchable(f"{__name__}:_cell", _build_cell, _finish_cell)


def grid(scale: str, benchmarks: List[str], systems: List[str],
         seed: int) -> List[Cell]:
    """The figure's (benchmark x system) grid."""
    cells = []
    for bench in benchmarks:
        for system in systems:
            key = f"fig8/{scale}/{bench}/{system}"
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, benchmark=bench,
                                          system=system,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        include_baseline: bool = True,
        seed: int = 1, jobs: int = 1, batch: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Fig8Result:
    """Produce the usable-space series for LLS, WLR (and the baseline)."""
    benches = benchmarks if benchmarks is not None else ["ocean", "mg"]
    systems = list(SYSTEMS) if include_baseline else list(SYSTEMS[:2])
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner, batch=batch)
    values = runner.run(grid(scale, benches, systems, seed))
    curves = []
    for bench in benches:
        for system in systems:
            cell = values[f"fig8/{scale}/{bench}/{system}"]
            curves.append(Fig8Curve(
                system=system, benchmark=bench,
                series=LifetimeSeries.from_payload(
                    cell["series"], label=f"{bench}/{system}"),
                stats=cell["stats"]))
    return Fig8Result(curves=curves, scale=scale)


def render(result: Fig8Result) -> str:
    """Sparkline per curve plus sustained-writes milestones."""
    lines = [f"Figure 8: software-usable space under ongoing writes "
             f"(scale={result.scale})"]
    for bench in sorted({c.benchmark for c in result.curves}):
        lines.append(f"\n[{bench}]")
        for curve in result.curves:
            if curve.benchmark != bench:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            lines.append(format_series(curve.system, writes, usable,
                                       lo=0.5, hi=1.0))
            milestone = curve.series.writes_to_usable(0.7)
            lines.append(f"{'':24s} writes to 70% usable: "
                         + (f"{milestone:,}" if milestone is not None
                            else "not reached"))
    return "\n".join(lines)


def as_dict(result: Fig8Result) -> Dict[str, Dict[str, Optional[int]]]:
    """Sustained-writes milestones keyed by benchmark and system."""
    table: Dict[str, Dict[str, Optional[int]]] = {}
    for curve in result.curves:
        table.setdefault(curve.benchmark, {})[curve.system] = \
            curve.series.writes_to_usable(0.7)
    return table
