"""Figure 8 — software-usable space under ongoing writes: LLS vs WL-Reviver.

For *ocean* and *mg*, the paper compares how software-usable PCM space
shrinks as writes proceed under LLS and under WL-Reviver (both over ECP6 +
Start-Gap).  Expected shape: LLS prevents the precipitous collapse of the
unrevived baseline but sustains far fewer writes than WL-Reviver — mainly
because it must restrict Start-Gap's address randomization to half-space
swaps, and secondarily because chunk-granularity reservation strands idle
blocks; *ocean*'s more uniform writes "barely help".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.metrics import LifetimeSeries
from .common import build_engine, build_lls_engine, scaled_parameters
from .report import format_series


@dataclass(frozen=True)
class Fig8Curve:
    """One system's usable-space curve."""

    system: str
    benchmark: str
    series: LifetimeSeries
    stats: dict


@dataclass(frozen=True)
class Fig8Result:
    """All curves for the requested benchmarks."""

    curves: List[Fig8Curve]
    scale: str


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        include_baseline: bool = True,
        seed: int = 1) -> Fig8Result:
    """Produce the usable-space series for LLS, WLR (and the baseline)."""
    params = scaled_parameters(scale)
    benches = benchmarks if benchmarks is not None else ["ocean", "mg"]
    curves = []
    for bench in benches:
        wlr = build_engine(params, bench, recovery="reviver",
                           dead_fraction=0.4, seed=seed,
                           label=f"{bench}/WL-Reviver")
        wlr.run()
        curves.append(Fig8Curve(system="WL-Reviver", benchmark=bench,
                                series=wlr.series, stats=wlr.stats()))
        lls = build_lls_engine(params, bench, dead_fraction=0.4, seed=seed,
                               label=f"{bench}/LLS")
        lls.run()
        curves.append(Fig8Curve(system="LLS", benchmark=bench,
                                series=lls.series, stats=lls.stats()))
        if include_baseline:
            base = build_engine(params, bench, recovery="none",
                                dead_fraction=0.4, seed=seed,
                                label=f"{bench}/ECP6-SG")
            base.run()
            curves.append(Fig8Curve(system="ECP6-SG", benchmark=bench,
                                    series=base.series, stats=base.stats()))
    return Fig8Result(curves=curves, scale=scale)


def render(result: Fig8Result) -> str:
    """Sparkline per curve plus sustained-writes milestones."""
    lines = [f"Figure 8: software-usable space under ongoing writes "
             f"(scale={result.scale})"]
    for bench in sorted({c.benchmark for c in result.curves}):
        lines.append(f"\n[{bench}]")
        for curve in result.curves:
            if curve.benchmark != bench:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            lines.append(format_series(curve.system, writes, usable,
                                       lo=0.5, hi=1.0))
            milestone = curve.series.writes_to_usable(0.7)
            lines.append(f"{'':24s} writes to 70% usable: "
                         + (f"{milestone:,}" if milestone is not None
                            else "not reached"))
    return "\n".join(lines)


def as_dict(result: Fig8Result) -> Dict[str, Dict[str, Optional[int]]]:
    """Sustained-writes milestones keyed by benchmark and system."""
    table: Dict[str, Dict[str, Optional[int]]] = {}
    for curve in result.curves:
        table.setdefault(curve.benchmark, {})[curve.system] = \
            curve.series.writes_to_usable(0.7)
    return table
