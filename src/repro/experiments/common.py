"""Shared builders for the experiment runners.

Centralizes the scaled hardware parameters and the construction of each
system configuration the paper evaluates, so every figure assembles its
systems from the same vocabulary:

``ECP6`` / ``PAYG``      error-correction substrate
``-SG``                  + Start-Gap wear leveling
``-WLR``                 + WL-Reviver
``FREEp(x%)``            + adapted FREE-p with a pre-reserved region
``LLS``                  the LLS baseline (restricted Start-Gap + chunks)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import LLSConfig, StartGapConfig
from ..ecc import ECP, PAYG, FreePRegion
from ..errors import ConfigurationError
from ..lls import LLSFastEngine
from ..pcm import AddressGeometry, EnduranceModel, PCMChip
from ..sim import FastConfig, FastEngine
from ..traces import benchmark_trace
from ..wl import NoWL, StartGap


@dataclass(frozen=True)
class ScaledParameters:
    """Hardware scale used by an experiment run."""

    num_blocks: int
    mean_endurance: float
    psi: int
    batch_writes: int
    lls_chunk_blocks: int

    @property
    def endurance_cov(self) -> float:
        """Paper value; scale-independent."""
        return 0.2


#: The paper simulates 1 GB at 1e8 writes/cell with psi = 100; these are
#: shape-preserving reductions (lifetime results are in scaled writes).
#: psi is scaled so the leveling-regime ratio endurance/(blocks * psi) —
#: how much of a block's life the hottest line can burn during one full
#: Start-Gap rotation — stays near the paper's 1e8/(2^24 * 100) = 0.06.
SCALES = {
    "tiny": ScaledParameters(num_blocks=1 << 10, mean_endurance=800,
                             psi=12, batch_writes=4_000,
                             lls_chunk_blocks=1 << 6),
    "small": ScaledParameters(num_blocks=1 << 12, mean_endurance=2_000,
                              psi=8, batch_writes=10_000,
                              lls_chunk_blocks=1 << 8),
    "full": ScaledParameters(num_blocks=1 << 14, mean_endurance=4_000,
                             psi=4, batch_writes=40_000,
                             lls_chunk_blocks=1 << 10),
}


def scaled_parameters(scale: str) -> ScaledParameters:
    """Look up a named scale."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None


def build_chip(params: ScaledParameters, ecc: str = "ecp6",
               seed: int = 3) -> PCMChip:
    """Chip with the requested error-correction substrate."""
    geometry = AddressGeometry(num_blocks=params.num_blocks)
    endurance = EnduranceModel(num_blocks=params.num_blocks,
                               mean=params.mean_endurance,
                               cov=params.endurance_cov,
                               max_order=16, seed=seed)
    if ecc == "ecp6":
        correction = ECP(endurance, 6)
    elif ecc == "ecp1":
        correction = ECP(endurance, 1)
    elif ecc == "payg":
        correction = PAYG(endurance)
    else:
        raise ConfigurationError(f"unknown ecc {ecc!r}")
    return PCMChip(geometry, correction)


def build_engine(params: ScaledParameters, benchmark: str,
                 ecc: str = "ecp6", wear_leveling: bool = True,
                 recovery: str = "none",
                 freep_reserve: float = 0.05,
                 dead_fraction: float = 0.3,
                 stop_on_capacity: bool = True,
                 max_writes: Optional[int] = None,
                 seed: int = 1, trace_seed: int = 9,
                 label: str = "") -> FastEngine:
    """Assemble one of the paper's system configurations."""
    chip = build_chip(params, ecc=ecc)
    trace = benchmark_trace(benchmark, params.num_blocks, seed=trace_seed)
    sg_config = StartGapConfig(psi=params.psi)
    fast_config = FastConfig(recovery=recovery,
                             freep_reserve=freep_reserve,
                             dead_fraction=dead_fraction,
                             batch_writes=params.batch_writes,
                             max_writes=max_writes,
                             stop_on_capacity=stop_on_capacity,
                             seed=seed)
    if recovery == "freep":
        region = FreePRegion(chip.num_blocks, freep_reserve)
        working = region.working_blocks
        wl = (StartGap(working, config=sg_config) if wear_leveling
              else NoWL(working))
        return FastEngine(chip, wl, trace, fast_config, label=label,
                          region=region)
    wl = (StartGap(chip.num_blocks, config=sg_config) if wear_leveling
          else NoWL(chip.num_blocks))
    return FastEngine(chip, wl, trace, fast_config, label=label)


def build_lls_engine(params: ScaledParameters, benchmark: str,
                     ecc: str = "ecp6",
                     dead_fraction: float = 0.3,
                     stop_on_capacity: bool = True,
                     max_writes: Optional[int] = None,
                     seed: int = 1, trace_seed: int = 9,
                     label: str = "LLS") -> LLSFastEngine:
    """Assemble the LLS configuration (restricted Start-Gap + chunks)."""
    chip = build_chip(params, ecc=ecc)
    trace = benchmark_trace(benchmark, params.num_blocks, seed=trace_seed)
    fast_config = FastConfig(dead_fraction=dead_fraction,
                             batch_writes=params.batch_writes,
                             max_writes=max_writes,
                             stop_on_capacity=stop_on_capacity,
                             seed=seed)
    lls_config = LLSConfig(chunk_blocks=params.lls_chunk_blocks,
                           num_groups=16)
    return LLSFastEngine(chip, trace, config=fast_config,
                         lls_config=lls_config,
                         startgap_config=StartGapConfig(psi=params.psi),
                         label=label)


#: Configuration names used across Figures 5-6, mapped to builder kwargs.
SYSTEM_CONFIGS = {
    "ECP6": dict(ecc="ecp6", wear_leveling=False, recovery="none"),
    "PAYG": dict(ecc="payg", wear_leveling=False, recovery="none"),
    "ECP6-SG": dict(ecc="ecp6", wear_leveling=True, recovery="none"),
    "PAYG-SG": dict(ecc="payg", wear_leveling=True, recovery="none"),
    "ECP6-SG-WLR": dict(ecc="ecp6", wear_leveling=True, recovery="reviver"),
    "PAYG-SG-WLR": dict(ecc="payg", wear_leveling=True, recovery="reviver"),
}
