"""Table II — average access time and software-usable space, LLS vs WLR.

The paper ages the chip to 10 %, 20 % and 30 % failed blocks, then measures
(a) the average number of PCM accesses per software-issued request with a
32 KB remap cache in front of both systems, and (b) the percentage of PCM
capacity still available to software.  Expected shape: both systems sit at
~1.00x access time thanks to the cache (LLS pays 3 accesses per miss, WLR
2), and WL-Reviver retains ~5-6 points more usable space than LLS at every
failure ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import CacheConfig
from ..mc.cache import RemapCache
from ..rng import derive_rng
from ..sim.fast import FastEngine
from .common import build_engine, build_lls_engine, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_table

#: Failure ratios of the paper's rows.
FAILURE_RATIOS = (0.10, 0.20, 0.30)

#: Extra PCM accesses a cache miss on a failed block costs per system.
EXTRA_ACCESSES = {"LLS": 2, "WL-Reviver": 1}


def measure_access_time(engine: FastEngine, extra_accesses: int,
                        samples: int = 200_000,
                        cache: Optional[RemapCache] = None,
                        seed: int = 17) -> float:
    """Replay a sampled request stream through the aged chip's remapping.

    ``extra_accesses`` is what a *cache miss* on a failed block costs beyond
    the data access itself: 1 for WL-Reviver (the pointer read), 2 for LLS
    (pointer read + bitmap read).  A cache hit goes straight to the final
    block (1 access), exactly the paper's model.
    """
    rng = derive_rng(seed, "table2-sample")
    probabilities = getattr(engine.trace, "probabilities", None)
    if probabilities is None:
        addresses = rng.integers(0, engine.ospool.virtual_blocks,
                                 size=samples)
    else:
        addresses = rng.choice(len(probabilities), size=samples,
                               p=probabilities)
    engine._rebuild_redirect()
    pas = engine.ospool.translate_many(addresses)
    das = engine.wl.map_many(pas)
    finals = engine._redirect[das]
    redirected = finals != das
    total = samples  # one data access per request
    if cache is None:
        total += int(redirected.sum()) * extra_accesses
    else:
        for da in das[redirected].tolist():
            if cache.get(da) is None:
                total += extra_accesses
                cache.put(da, int(engine._redirect[da]))
    return total / samples


@dataclass(frozen=True)
class Table2Row:
    """One (failure ratio, system, benchmark) measurement."""

    failure_ratio: float
    system: str
    benchmark: str
    avg_access_time: float
    usable_fraction: float


@dataclass(frozen=True)
class Table2Result:
    """All rows in the paper's order."""

    rows: List[Table2Row]
    scale: str
    cache_entries: int


def _cell(scale: str, benchmark: str, system: str, ratio: float,
          cache_entries: int, samples: int, seed: int) -> dict:
    """One grid cell: age a chip to *ratio* and measure it (in a worker)."""
    params = scaled_parameters(scale)
    if system == "LLS":
        engine = build_lls_engine(params, benchmark, dead_fraction=ratio,
                                  stop_on_capacity=False, seed=seed,
                                  label=f"{benchmark}/LLS@{ratio:.0%}")
    else:
        engine = build_engine(params, benchmark, recovery="reviver",
                              dead_fraction=ratio, stop_on_capacity=False,
                              seed=seed,
                              label=f"{benchmark}/WLR@{ratio:.0%}")
    engine.run()
    cache = RemapCache(CacheConfig(capacity_entries=cache_entries))
    return {"access_time": measure_access_time(
                engine, extra_accesses=EXTRA_ACCESSES[system],
                samples=samples, cache=cache),
            "usable": engine._usable_fraction()}


def _key(scale: str, ratio: float, system: str, bench: str) -> str:
    return f"table2/{scale}/{ratio:g}/{system}/{bench}"


def grid(scale: str, benchmarks: List[str], ratios: List[float],
         cache_entries: int, samples: int, seed: int) -> List[Cell]:
    """The table's (ratio x benchmark x system) grid."""
    cells = []
    for ratio in ratios:
        for bench in benchmarks:
            for system in ("LLS", "WL-Reviver"):
                key = _key(scale, ratio, system, bench)
                cells.append(Cell(
                    key=key, fn=f"{__name__}:_cell",
                    kwargs=dict(scale=scale, benchmark=bench, system=system,
                                ratio=ratio, cache_entries=cache_entries,
                                samples=samples,
                                seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        ratios: Optional[List[float]] = None,
        cache_entries: int = 4096,
        samples: int = 200_000,
        seed: int = 1, jobs: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Table2Result:
    """Age chips to each failure ratio and measure both systems."""
    benches = benchmarks if benchmarks is not None else ["mg", "ocean"]
    sweep = ratios if ratios is not None else list(FAILURE_RATIOS)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner)
    values = runner.run(grid(scale, benches, sweep, cache_entries,
                             samples, seed))
    rows = []
    for ratio in sweep:
        for bench in benches:
            for system in ("LLS", "WL-Reviver"):
                cell = values[_key(scale, ratio, system, bench)]
                rows.append(Table2Row(
                    failure_ratio=ratio, system=system, benchmark=bench,
                    avg_access_time=cell["access_time"],
                    usable_fraction=cell["usable"]))
    return Table2Result(rows=rows, scale=scale, cache_entries=cache_entries)


def render(result: Table2Result) -> str:
    """The paper's Table II layout."""
    benches = sorted({r.benchmark for r in result.rows})
    headers = (["Failure", "System"]
               + [f"AccTime {b}" for b in benches]
               + [f"Usable {b}" for b in benches])
    lines = []
    ratios = sorted({r.failure_ratio for r in result.rows})
    for ratio in ratios:
        for system in ("LLS", "WL-Reviver"):
            cells = [f"{ratio:.0%}", system]
            for bench in benches:
                row = _find(result.rows, ratio, system, bench)
                cells.append(f"{row.avg_access_time:.3f}" if row else "-")
            for bench in benches:
                row = _find(result.rows, ratio, system, bench)
                cells.append(f"{row.usable_fraction:.0%}" if row else "-")
            lines.append(cells)
    title = (f"Table II: avg PCM accesses per request and software-usable "
             f"space ({result.cache_entries}-entry remap cache, "
             f"scale={result.scale})")
    return format_table(headers, lines, title=title)


def _find(rows: List[Table2Row], ratio: float, system: str,
          bench: str) -> Optional[Table2Row]:
    for row in rows:
        if (abs(row.failure_ratio - ratio) < 1e-9 and row.system == system
                and row.benchmark == bench):
            return row
    return None


def as_dict(result: Table2Result) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Nested dict keyed by ratio -> system -> benchmark metrics."""
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for row in result.rows:
        ratio_key = f"{row.failure_ratio:.0%}"
        table.setdefault(ratio_key, {}).setdefault(row.system, {})[
            row.benchmark] = {
                "access_time": row.avg_access_time,
                "usable": row.usable_fraction,
        }
    return table
