"""Elastic balancing — static vs steered vs scaled-out shard arrays.

Beyond the paper: layer the :mod:`repro.balance` control plane over the
shard array (:mod:`repro.array`) and compare three management modes
under the same popularity-skewed (zipf) traffic:

``static``
    The baseline round-robin interleaved array: no steering, fixed
    shard count.
``balanced``
    The bounded-budget leveler steers hot addresses away from the
    shards the health model flags as high-risk at periodic checkpoints
    (plus at every shard death).
``elastic``
    Balanced, plus one scale-out event: a fresh shard joins the array
    live mid-run via consistent-hashing migration.

Expected shapes: steering extends the *full-capacity* lifetime (global
writes until the first shard death) by spending migration writes to
equalize forward wear, and the scale-out mode adds capacity headroom on
top — the capacity-over-time curve stays at 100 % for longer and the
total-writes budget grows with the fourth shard.

Per cell one :class:`~repro.array.ArrayEngine` campaign runs serially
(``jobs=1``); the experiment grid parallelizes across cells, so there
is never a pool inside a pool.

NOTE: :mod:`repro.array` is imported lazily inside the cell function —
the array engine reuses the parallel harness, so a module-level import
here would cycle through :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigurationError
from ..sim.metrics import LifetimeSeries
from .common import scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_series

#: Array-management modes compared by the figure.
MODES = ("static", "balanced", "elastic")

#: Base shard count (the elastic mode grows to one more mid-run).
BASE_SHARDS = 3

#: OS page size in blocks; page interleaving keeps whole hot pages on
#: one shard, which is what gives steering something to move.
PAGE_BLOCKS = 16

#: Popularity skew of the driving workload.  Rank-ordered zipf mass
#: under page interleaving lands the hottest pages on the low shards —
#: a real, persistent shard imbalance for the leveler to correct
#: (a randomly-placed hot set averages out across shards and leaves
#: steering nothing to do).
ZIPF_EXPONENT = 1.0


@dataclass(frozen=True)
class ElasticCurve:
    """One management mode's campaign."""

    mode: str
    total_writes: int
    #: Global writes until the first shard death (full-capacity life).
    first_death: Optional[int]
    writes_to_50pct: Optional[int]
    shards: int
    dead_shards: int
    migration_writes: int
    remap_swaps: int
    series: LifetimeSeries


@dataclass(frozen=True)
class FigElasticResult:
    """All management modes under the same traffic."""

    curves: List[ElasticCurve]
    scale: str
    floor: float = 0.0


def _cell(scale: str, mode: str, seed: int) -> dict:
    """One grid cell: a whole array campaign (executes in a worker)."""
    from ..array import (ArrayConfig, ArrayEngine, InterleavedDecoder,
                         zipf_workload)
    params = scaled_parameters(scale)
    shard_blocks = max(PAGE_BLOCKS, params.num_blocks // 4)
    batch = max(1, params.batch_writes // BASE_SHARDS)
    budget = int(BASE_SHARDS * shard_blocks * params.mean_endurance)
    config = ArrayConfig(
        num_shards=BASE_SHARDS, shard_blocks=shard_blocks,
        interleave="page", page_blocks=PAGE_BLOCKS,
        mean_endurance=params.mean_endurance, psi=params.psi,
        batch_writes=batch, seed=seed,
        balance=mode in ("balanced", "elastic"),
        balance_every=4 * batch if mode != "static" else None,
        remap_budget=32,
        add_shard_at=budget // 10 if mode == "elastic" else None)
    decoder = InterleavedDecoder(config.num_shards, config.software_blocks,
                                 interleave=config.interleave,
                                 page_blocks=config.page_blocks)
    trace = zipf_workload(decoder, exponent=ZIPF_EXPONENT, seed=seed)
    engine = ArrayEngine(config, trace, label=f"elastic/{mode}", jobs=1)
    result = engine.run()
    report = result.report
    deaths = [shard.died_at_global for shard in report.shards
              if shard.died_at_global is not None]
    counters = result.snapshot.get("counters", {})
    return {"total_writes": report.total_writes,
            "first_death": min(deaths) if deaths else None,
            "shards": report.num_shards,
            "dead_shards": len(report.dead_shards),
            "migration_writes": int(
                counters.get("balance.migration-writes", 0)),
            "remap_swaps": int(counters.get("balance.remap-swaps", 0)),
            "series": result.series.to_payload()}


def _key(scale: str, mode: str) -> str:
    return f"fig_elastic/{scale}/{mode}"


def grid(scale: str, modes: List[str], seed: int) -> List[Cell]:
    """One cell per management mode."""
    return [Cell(key=_key(scale, mode), fn=f"{__name__}:_cell",
                 kwargs=dict(scale=scale, mode=mode,
                             seed=cell_seed(seed, _key(scale, mode))))
            for mode in modes]


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        seed: int = 1, jobs: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> FigElasticResult:
    """Compare the management modes under identical zipf traffic.

    ``benchmarks`` (the harness's generic filter flag) selects mode
    names here — the workload is fixed so the modes stay comparable.
    """
    modes = [m for m in MODES if benchmarks is None or m in benchmarks]
    if not modes:
        raise ConfigurationError(
            f"no management modes selected; choose from {MODES}")
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner)
    values = runner.run(grid(scale, modes, seed))
    curves = []
    for mode in modes:
        value = values[_key(scale, mode)]
        series = LifetimeSeries.from_payload(value["series"], label=mode)
        curves.append(ElasticCurve(
            mode=mode,
            total_writes=int(value["total_writes"]),
            first_death=(None if value["first_death"] is None
                         else int(value["first_death"])),
            writes_to_50pct=series.writes_to_usable(0.5),
            shards=int(value["shards"]),
            dead_shards=int(value["dead_shards"]),
            migration_writes=int(value["migration_writes"]),
            remap_swaps=int(value["remap_swaps"]),
            series=series))
    return FigElasticResult(curves=curves, scale=scale)


def render(result: FigElasticResult) -> str:
    """Capacity-over-time sparkline and milestones per mode."""
    lines = [f"Elastic balancing: lifetime and capacity vs management "
             f"mode (scale={result.scale})"]
    for curve in result.curves:
        writes = [p.writes for p in curve.series.points]
        usable = [p.usable for p in curve.series.points]
        lines.append(format_series(curve.mode, writes, usable,
                                   lo=result.floor, hi=1.0))
        first = (f"{curve.first_death:,}" if curve.first_death is not None
                 else "none")
        half = (f"{curve.writes_to_50pct:,}"
                if curve.writes_to_50pct is not None else "not reached")
        lines.append(
            f"{'':24s} lifetime {curve.total_writes:,} writes over "
            f"{curve.shards} shards ({curve.dead_shards} died), "
            f"first death: {first}, writes to 50% usable: {half}")
        if curve.remap_swaps or curve.migration_writes:
            lines.append(
                f"{'':24s} steering: {curve.remap_swaps} swaps, "
                f"{curve.migration_writes} migration writes")
    return "\n".join(lines)


def as_dict(result: FigElasticResult) -> Dict[str, dict]:
    """Milestone table keyed by management mode."""
    return {curve.mode: {
        "total_writes": curve.total_writes,
        "first_death": curve.first_death,
        "writes_to_50pct_usable": curve.writes_to_50pct,
        "shards": curve.shards,
        "dead_shards": curve.dead_shards,
        "migration_writes": curve.migration_writes,
        "remap_swaps": curve.remap_swaps,
    } for curve in result.curves}
