"""Figure 7 — user-usable space: WL-Reviver vs adapted FREE-p.

For *ocean* and *mg*, the paper plots the percentage of user-usable PCM
space (excluding pre-reserved and failed capacity) against writes, for
WL-Reviver and for FREE-p pre-reserving 0 %, 5 %, 10 % and 15 % of the
chip.  Expected shapes:

* every FREE-p curve starts at ``1 - reserve`` and falls off a cliff when
  the reserve is exhausted and Start-Gap ceases to function;
* WL-Reviver keeps 100 % of the space usable before the first failure and
  dominates every FREE-p variant throughout;
* for the biased *mg*, larger reserves postpone the cliff longer.

(One deviation from the paper, documented in EXPERIMENTS.md: at our scale
larger reserves also win for *ocean*, where the paper reports the 5 %
reserve postponing the first exposure longest.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.batched import register_batchable
from ..sim.fast import FastEngine
from ..sim.metrics import LifetimeSeries, LifetimeSummary
from .common import build_engine, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_series

#: The paper's pre-reservation sweep.
RESERVES = (0.0, 0.05, 0.10, 0.15)


@dataclass(frozen=True)
class Fig7Curve:
    """One configuration's usable-space curve."""

    label: str
    benchmark: str
    reserve: Optional[float]  # None for WL-Reviver
    series: LifetimeSeries


@dataclass(frozen=True)
class Fig7Result:
    """All curves for the requested benchmarks."""

    curves: List[Fig7Curve]
    scale: str
    floor: float = 0.6


def _build_cell(scale: str, benchmark: str, reserve: Optional[float],
                seed: int) -> FastEngine:
    """Assemble one cell's engine (shared by both execution paths)."""
    params = scaled_parameters(scale)
    if reserve is None:
        return build_engine(params, benchmark, recovery="reviver",
                            dead_fraction=0.45, seed=seed,
                            label=f"{benchmark}/WL-Reviver")
    return build_engine(params, benchmark, recovery="freep",
                        freep_reserve=reserve, dead_fraction=0.45,
                        seed=seed,
                        label=f"{benchmark}/FREEp-{reserve:.0%}")


def _finish_cell(engine: FastEngine, summary: LifetimeSummary,
                 context: object) -> dict:
    """Summarize one completed cell (shared by both execution paths)."""
    return {"series": engine.series.to_payload()}


def _cell(scale: str, benchmark: str, reserve: Optional[float],
          seed: int) -> dict:
    """One grid cell: a single engine run (executes in a worker)."""
    engine = _build_cell(scale, benchmark, reserve, seed)
    return _finish_cell(engine, engine.run(), None)


register_batchable(f"{__name__}:_cell", _build_cell, _finish_cell)


def _key(scale: str, benchmark: str, reserve: Optional[float]) -> str:
    suffix = "WL-Reviver" if reserve is None else f"FREEp-{reserve:g}"
    return f"fig7/{scale}/{benchmark}/{suffix}"


def grid(scale: str, benchmarks: List[str], reserves: List[float],
         seed: int) -> List[Cell]:
    """The figure's (benchmark x configuration) grid."""
    cells = []
    for bench in benchmarks:
        for reserve in [None] + list(reserves):
            key = _key(scale, bench, reserve)
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, benchmark=bench,
                                          reserve=reserve,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small",
        benchmarks: Optional[List[str]] = None,
        reserves: Optional[List[float]] = None,
        seed: int = 1, jobs: int = 1, batch: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Fig7Result:
    """Produce the usable-space series for WLR and each FREE-p reserve."""
    benches = benchmarks if benchmarks is not None else ["ocean", "mg"]
    sweep = reserves if reserves is not None else list(RESERVES)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner, batch=batch)
    values = runner.run(grid(scale, benches, sweep, seed))
    curves = []
    for bench in benches:
        for reserve in [None] + list(sweep):
            label = ("WL-Reviver" if reserve is None
                     else f"FREE-p {reserve:.0%}")
            payload = values[_key(scale, bench, reserve)]["series"]
            curves.append(Fig7Curve(
                label=label, benchmark=bench, reserve=reserve,
                series=LifetimeSeries.from_payload(
                    payload, label=f"{bench}/{label}")))
    return Fig7Result(curves=curves, scale=scale)


def render(result: Fig7Result) -> str:
    """Sparkline per curve plus the writes-to-70%-usable milestones."""
    lines = [f"Figure 7: user-usable space, WL-Reviver vs adapted FREE-p "
             f"(scale={result.scale})"]
    for bench in sorted({c.benchmark for c in result.curves}):
        lines.append(f"\n[{bench}]")
        for curve in result.curves:
            if curve.benchmark != bench:
                continue
            writes = [p.writes for p in curve.series.points]
            usable = [p.usable for p in curve.series.points]
            lines.append(format_series(curve.label, writes, usable,
                                       lo=result.floor, hi=1.0))
            milestone = curve.series.writes_to_usable(0.7)
            lines.append(f"{'':24s} writes to 70% usable: "
                         + (f"{milestone:,}" if milestone is not None
                            else "not reached"))
    return "\n".join(lines)


def as_dict(result: Fig7Result) -> Dict[str, Dict[str, Optional[int]]]:
    """Writes-to-70% milestones keyed by benchmark and configuration."""
    table: Dict[str, Dict[str, Optional[int]]] = {}
    for curve in result.curves:
        table.setdefault(curve.benchmark, {})[curve.label] = \
            curve.series.writes_to_usable(0.7)
    return table
