"""Figure 5 — lifetime with and without WL-Reviver, per benchmark.

The paper plots, for all eight benchmarks, the number of writes needed to
make 30 % of the PCM unusable under ECP6 + Start-Gap ("ECP6-SG") and the
same system revived by the framework ("ECP6-SG-WLR").  Expected shape:

* ECP6-SG lifetime strongly anti-correlated with the benchmark's write CoV
  (mg shortest, ocean longest);
* ECP6-SG-WLR lifts every benchmark (paper: +36 % to +325 % at 1 GB scale;
  our scaled chips amplify the high-CoV gains — see EXPERIMENTS.md) and
  flattens the variation across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.batched import register_batchable
from ..sim.fast import FastEngine
from ..sim.metrics import LifetimeSummary
from ..traces import BENCHMARKS
from .common import build_engine, scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, cell_seed, make_runner
from .report import format_number, format_table

#: The two systems of the figure's bar pairs.
SYSTEMS = {
    "ECP6-SG": "none",
    "ECP6-SG-WLR": "reviver",
}


@dataclass(frozen=True)
class Fig5Row:
    """Lifetimes of one benchmark under both systems."""

    benchmark: str
    write_cov: float
    sg_lifetime: int
    wlr_lifetime: int

    @property
    def improvement(self) -> float:
        """Relative lifetime gain of WL-Reviver."""
        if self.sg_lifetime == 0:
            return float("inf")
        return self.wlr_lifetime / self.sg_lifetime - 1.0


@dataclass(frozen=True)
class Fig5Result:
    """All benchmarks, CoV-ordered like the paper's x-axis."""

    rows: List[Fig5Row]
    scale: str


def _build_cell(scale: str, benchmark: str, system: str,
                seed: int) -> FastEngine:
    """Assemble one cell's engine (shared by both execution paths)."""
    params = scaled_parameters(scale)
    return build_engine(params, benchmark, ecc="ecp6",
                        wear_leveling=True, recovery=SYSTEMS[system],
                        seed=seed, label=f"{benchmark}/{system}")


def _finish_cell(engine: FastEngine, summary: LifetimeSummary,
                 context: object) -> dict:
    """Summarize one completed cell (shared by both execution paths)."""
    return {"lifetime": summary.lifetime_writes}


def _cell(scale: str, benchmark: str, system: str, seed: int) -> dict:
    """One grid cell: a single engine run (executes in a worker)."""
    engine = _build_cell(scale, benchmark, system, seed)
    return _finish_cell(engine, engine.run(), None)


register_batchable(f"{__name__}:_cell", _build_cell, _finish_cell)


def grid(scale: str, benchmarks: List[str], seed: int) -> List[Cell]:
    """The figure's (benchmark x system) grid."""
    cells = []
    for name in benchmarks:
        for system in SYSTEMS:
            key = f"fig5/{scale}/{name}/{system}"
            cells.append(Cell(key=key, fn=f"{__name__}:_cell",
                              kwargs=dict(scale=scale, benchmark=name,
                                          system=system,
                                          seed=cell_seed(seed, key))))
    return cells


def run(scale: str = "small", benchmarks: Optional[List[str]] = None,
        seed: int = 1, jobs: int = 1, batch: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Fig5Result:
    """Measure both configurations' lifetimes for every benchmark."""
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner, batch=batch)
    values = runner.run(grid(scale, names, seed))
    rows = [Fig5Row(benchmark=name,
                    write_cov=BENCHMARKS[name].write_cov,
                    sg_lifetime=values[f"fig5/{scale}/{name}/ECP6-SG"]
                    ["lifetime"],
                    wlr_lifetime=values[f"fig5/{scale}/{name}/ECP6-SG-WLR"]
                    ["lifetime"])
            for name in names]
    rows.sort(key=lambda r: r.write_cov)
    return Fig5Result(rows=rows, scale=scale)


def render(result: Fig5Result) -> str:
    """The figure's bar values as a table, plus the headline gains."""
    headers = ["Benchmark", "Write CoV", "ECP6-SG", "ECP6-SG-WLR", "Gain"]
    rows = [[r.benchmark, f"{r.write_cov:.2f}",
             format_number(r.sg_lifetime), format_number(r.wlr_lifetime),
             f"+{100 * r.improvement:.0f}%"]
            for r in result.rows]
    title = (f"Figure 5: writes to make 30% of the PCM unusable "
             f"(scale={result.scale})")
    return format_table(headers, rows, title=title)


def as_dict(result: Fig5Result) -> Dict[str, Dict[str, float]]:
    """Machine-readable form for tests and notebooks."""
    return {r.benchmark: {"cov": r.write_cov, "sg": r.sg_lifetime,
                          "wlr": r.wlr_lifetime,
                          "improvement": r.improvement}
            for r in result.rows}
