"""Table I — benchmark summary with measured write CoVs.

Regenerates the paper's workload-characterization table: for every
benchmark, the suite, description, the paper's CoV, and the CoV of our
calibrated synthetic trace measured two ways (asymptotically from the
probability field and empirically from a sampled address stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

from ..traces import BENCHMARKS, benchmark_trace, counts_cov, distribution_cov
from .common import scaled_parameters
from .parallel import Cell, GridRunner, ProgressFn, make_runner
from .report import format_table


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's characterization."""

    name: str
    suite: str
    paper_cov: float
    calibrated_cov: float
    sampled_cov: float


@dataclass(frozen=True)
class Table1Result:
    """All rows plus the sampling parameters."""

    rows: List[Table1Row]
    virtual_blocks: int
    sampled_writes: int


def _cell(scale: str, benchmark: str, sample_writes: int,
          seed: int) -> dict:
    """One grid cell: calibrate + sample one benchmark trace.

    The trace seed is the experiment seed verbatim (not per-cell derived):
    the CoV calibration is a measurement of a *fixed* workload, and the
    measured values must match the paper regardless of grid shape.
    """
    params = scaled_parameters(scale)
    trace = benchmark_trace(benchmark, params.num_blocks, seed=seed)
    asymptotic = distribution_cov(trace.probabilities)
    sampled = counts_cov(trace.batch_counts(sample_writes))
    return {"calibrated": asymptotic, "sampled": sampled}


def grid(scale: str, sample_writes: int, seed: int) -> List[Cell]:
    """One cell per benchmark."""
    return [Cell(key=f"table1/{scale}/{name}", fn=f"{__name__}:_cell",
                 kwargs=dict(scale=scale, benchmark=name,
                             sample_writes=sample_writes, seed=seed))
            for name in BENCHMARKS]


def run(scale: str = "small", sample_writes: int = 2_000_000,
        seed: int = 9, jobs: int = 1,
        resume: Union[None, str, Path] = None,
        progress: Optional[ProgressFn] = None,
        runner: Optional[GridRunner] = None) -> Table1Result:
    """Build every benchmark trace and measure its CoV."""
    params = scaled_parameters(scale)
    runner = make_runner(jobs=jobs, resume=resume, progress=progress,
                         runner=runner)
    values = runner.run(grid(scale, sample_writes, seed))
    rows = [Table1Row(name=spec.name, suite=spec.suite,
                      paper_cov=spec.write_cov,
                      calibrated_cov=values[f"table1/{scale}/{spec.name}"]
                      ["calibrated"],
                      sampled_cov=values[f"table1/{scale}/{spec.name}"]
                      ["sampled"])
            for spec in BENCHMARKS.values()]
    return Table1Result(rows=rows, virtual_blocks=params.num_blocks,
                        sampled_writes=sample_writes)


def render(result: Table1Result) -> str:
    """The paper's Table I with our measured columns appended."""
    headers = ["Name", "Suite", "Paper CoV", "Calibrated CoV", "Sampled CoV"]
    rows = [[r.name, r.suite, f"{r.paper_cov:.2f}",
             f"{r.calibrated_cov:.2f}", f"{r.sampled_cov:.2f}"]
            for r in result.rows]
    title = (f"Table I: benchmark write CoVs "
             f"({result.virtual_blocks} blocks, "
             f"{result.sampled_writes:,} sampled writes)")
    return format_table(headers, rows, title=title)


def as_dict(result: Table1Result) -> Dict[str, Dict[str, float]]:
    """Machine-readable form for tests and notebooks."""
    return {r.name: {"paper": r.paper_cov, "calibrated": r.calibrated_cov,
                     "sampled": r.sampled_cov} for r in result.rows}
