"""Salvaging groups.

LLS partitions device blocks into groups (by address modulo the group
count) and dictates that a failed block may only use a backup block of the
*same* group — that is what lets it represent failed-to-backup mappings by
relative order instead of explicit pointers.  The cost the paper calls out:
when one group's backups run dry, a whole new chunk must be reserved even
though other groups still hold plenty of idle blocks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import ConfigurationError


class SalvageGroups:
    """Per-group free lists of backup blocks carved from reserved chunks."""

    def __init__(self, num_groups: int) -> None:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        self.num_groups = num_groups
        self._free: List[Deque[int]] = [deque() for _ in range(num_groups)]
        #: failed DA -> backup DA, in same-group relative order.
        self.backups: Dict[int, int] = {}
        #: backup DA -> failed DA it serves (for backup-failure relinks).
        self._reverse: Dict[int, int] = {}
        self.total_added = 0

    def group_of(self, da: int) -> int:
        """Salvaging group of a device block."""
        return da % self.num_groups

    def add_chunk(self, start: int, end: int) -> None:
        """Distribute a freshly reserved chunk's blocks into the groups."""
        for da in range(start, end):
            self._free[self.group_of(da)].append(da)
            self.total_added += 1

    def available(self, group: int) -> int:
        """Free backups left in *group*."""
        return len(self._free[group])

    def idle_blocks(self) -> int:
        """Reserved blocks not yet serving as backups (stranded capacity)."""
        return sum(len(q) for q in self._free)

    def assign(self, failed_da: int,
               is_usable: Optional[Callable[[int], bool]] = None
               ) -> Optional[int]:
        """Back *failed_da* with the next same-group block, if any.

        When the failed block was itself a backup serving another block,
        the served block is re-pointed (order-preserving relink).
        ``is_usable`` filters candidates: chunks are carved out of the
        working space and may contain blocks that already wore out there —
        those are skipped (LLS's write-verify would reject them anyway).
        """
        group = self.group_of(failed_da)
        queue = self._free[group]
        backup = None
        while queue:
            candidate = queue.popleft()
            if is_usable is None or is_usable(candidate):
                backup = candidate
                break
        if backup is None:
            return None
        origin = self._reverse.pop(failed_da, failed_da)
        self.backups[origin] = backup
        self._reverse[backup] = origin
        return backup

    def resolve(self, da: int) -> int:
        """Backup of *da*, or *da* itself when it has none."""
        return self.backups.get(da, da)
