"""The LLS recovery model and its fast-engine integration.

:class:`LLSRecovery` is the pure bookkeeping (chunks + groups + backup
table); :class:`LLSFastEngine` plugs it into the vectorized lifetime
simulator with the two behaviours that differentiate LLS from WL-Reviver in
the paper's Figure 8 and Table II:

* Start-Gap runs with the **restricted randomizer** (each PA half may only
  randomize into the opposite half — the adaptation LLS needs to keep its
  shrinking space contiguous), so concentrated write regions are not fully
  spread;
* when a group runs out of backups a whole new **chunk** leaves the
  software pool, stranding the other groups' idle blocks, and the
  wear-leveler is rebuilt over the smaller contiguous space (the data
  relocation the OS performs for LLS is the explicit cost WL-Reviver
  avoids).

Accesses to a failed block cost **3** PCM reads without a cache (block,
bitmap, backup) versus WL-Reviver's 2; Table II measures both behind the
same 32 KB remap cache via
:func:`repro.experiments.table2.measure_access_time`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..config import LLSConfig, StartGapConfig
from ..osmodel.allocator import PagePool
from ..pcm.chip import PCMChip
from ..sim.fast import FastConfig, FastEngine
from ..traces.base import WriteTrace
from ..units import blocks_of_pages, round_up_to_pages
from ..wl.randomizer import RestrictedRandomizer
from ..wl.startgap import StartGap


class LLSRecovery:
    """Chunk + group bookkeeping shared by the engines."""

    def __init__(self, device_blocks: int, config: Optional[LLSConfig] = None,
                 blocks_per_page: int = 64,
                 is_usable_backup: Optional[Callable[[int], bool]] = None) -> None:
        from .chunks import ChunkReservation
        from .groups import SalvageGroups
        self.config = config or LLSConfig()
        #: Optional predicate rejecting dead blocks as backups.
        self.is_usable_backup = is_usable_backup
        chunk = round_up_to_pages(self.config.chunk_blocks, blocks_per_page)
        self.chunks = ChunkReservation(
            device_blocks, chunk,
            min_working_blocks=blocks_of_pages(2, blocks_per_page))
        self.groups = SalvageGroups(self.config.num_groups)
        self.frozen = False

    def handle_failure(self, da: int) -> Optional[int]:
        """Back the failed block; reserve a chunk when its group is dry.

        Returns the backup DA, or ``None`` when no space remains (the
        recovery layer gives up and the failure is exposed).
        """
        backup = self.groups.assign(da, is_usable=self.is_usable_backup)
        while backup is None:
            if not self.chunks.can_reserve():
                self.frozen = True
                return None
            start, end = self.chunks.reserve_next()
            self.groups.add_chunk(start, end)
            backup = self.groups.assign(da, is_usable=self.is_usable_backup)
        return backup

    def resolve(self, da: int) -> int:
        """Backup of *da*, or *da* itself."""
        return self.groups.resolve(da)

    @property
    def reserved_fraction(self) -> float:
        """Chip fraction consumed by reserved chunks."""
        return self.chunks.reserved_fraction

    def stats(self) -> dict:
        """Reporting counters."""
        return {
            "chunks": self.chunks.chunks,
            "reserved_blocks": self.chunks.reserved_blocks,
            "backups_assigned": len(self.groups.backups),
            "idle_backup_blocks": self.groups.idle_blocks(),
            "frozen": self.frozen,
        }


class LLSFastEngine(FastEngine):
    """Fast engine variant running LLS instead of WL-Reviver."""

    def __init__(self, chip: PCMChip, trace: WriteTrace,
                 config: Optional[FastConfig] = None,
                 lls_config: Optional[LLSConfig] = None,
                 startgap_config: Optional[StartGapConfig] = None,
                 label: str = "") -> None:
        fast_config = config or FastConfig()
        fast_config.recovery = "none"  # the base class's mode is unused here
        self.lls = LLSRecovery(chip.num_blocks, lls_config,
                               blocks_per_page=fast_config.blocks_per_page,
                               is_usable_backup=lambda da: not chip.failed[da])
        self._sg_config = startgap_config or StartGapConfig()
        self._original_trace = trace
        wl = self._build_wl(self.lls.chunks.working_blocks)
        super().__init__(chip, wl, trace, fast_config,
                         label=label or "LLS")
        #: Exposed-failure page losses after LLS gives up.
        self._given_up = False

    # --------------------------------------------------------------- helpers

    def _build_wl(self, working_blocks: int) -> StartGap:
        randomizer = RestrictedRandomizer(working_blocks - 1,
                                          seed=self._sg_config.seed)
        return StartGap(working_blocks, config=self._sg_config,
                        randomizer=randomizer)

    def _shrink_to(self, working_blocks: int) -> None:
        """Rebuild the wear-leveler and software pool after a reservation.

        Models the OS-visible cost of LLS's explicit space acquisition: the
        remaining space is re-leveled from scratch and the software's
        virtual pages are repacked into the smaller pool.  Wear state lives
        in the chip and carries over untouched.
        """
        self.wl = self._build_wl(working_blocks)
        # The fresh scheme must not try to catch up on the whole run's
        # migration schedule: it starts its rotation from now.
        self.wl.gap_moves = self.total_writes // self.wl.psi
        self.ospool = PagePool(self.wl.logical_blocks,
                               blocks_per_page=self.config.blocks_per_page,
                               seed=self.config.seed)
        from ..osmodel.faults import FaultReporter
        self.reporter = FaultReporter(self.ospool)
        self.trace = self._original_trace.restricted_to(
            self.ospool.virtual_blocks)

    # ------------------------------------------------------------- overrides

    def _process_failures(self, newly: np.ndarray,
                          migration: bool = False) -> None:
        for da in newly.tolist():
            before = self.lls.chunks.chunks
            backup = self.lls.handle_failure(int(da))
            if self.lls.chunks.chunks != before:
                self._shrink_to(self.lls.chunks.working_blocks)
            if backup is None:
                self._given_up = True
                self._baseline_failure(int(da))

    def _rebuild_redirect(self) -> None:
        self._redirect = np.arange(self.chip.num_blocks, dtype=np.int64)
        backups = self.lls.groups.backups
        if backups:
            origins = np.fromiter(backups.keys(), dtype=np.int64,
                                  count=len(backups))
            targets = np.fromiter(backups.values(), dtype=np.int64,
                                  count=len(backups))
            self._redirect[origins] = targets

    def _reserved_fraction(self) -> float:
        return self.lls.reserved_fraction

    def _usable_fraction(self) -> float:
        reserved = self.lls.reserved_fraction
        retired = self.ospool.retired_blocks / self.chip.num_blocks
        return max(0.0, 1.0 - reserved - retired)

    def stats(self) -> dict:
        merged = super().stats()
        merged.update({f"lls_{k}": v for k, v in self.lls.stats().items()})
        return merged


def make_lls_engine(chip: PCMChip, trace: WriteTrace,
                    config: Optional[FastConfig] = None,
                    lls_config: Optional[LLSConfig] = None,
                    startgap_config: Optional[StartGapConfig] = None,
                    label: str = "LLS") -> LLSFastEngine:
    """Convenience factory mirroring the other engines' construction."""
    return LLSFastEngine(chip, trace, config=config, lls_config=lls_config,
                         startgap_config=startgap_config, label=label)
