"""LLS baseline (Jiang et al., ACM TACO 2013).

LLS ("Line-Level mapping and Salvaging") shares WL-Reviver's goal — keep a
wear-leveling scheme functioning after block failures — but acquires its
backup space *explicitly*: it shrinks the software-usable address space in
64 MB chunks, partitions blocks into salvaging groups, and maps each failed
block to a backup block of the same group in the reserved area, maintained
in matching relative order.  To keep Start-Gap's space contiguous it also
*restricts* the address randomization to map each half of the PA space into
the opposite half, which is what compromises its leveling (Section IV-D).

The reproduction implements the behaviours the paper measures LLS by:

* chunk-granularity reservation (capacity falls in chunk steps; idle backup
  blocks are stranded per group);
* same-group backup assignment with relative-order bookkeeping;
* the restricted randomizer handicap on Start-Gap;
* 3 PCM accesses per failed-block access (block + bitmap + backup) without
  the remap cache, versus WL-Reviver's 2.
"""

from .chunks import ChunkReservation
from .groups import SalvageGroups
from .lls import LLSRecovery, LLSFastEngine, make_lls_engine

__all__ = ["ChunkReservation", "SalvageGroups", "LLSRecovery",
           "LLSFastEngine", "make_lls_engine"]
