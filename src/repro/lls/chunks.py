"""Chunk-granularity space reservation.

LLS grows its reserved (salvage) area in fixed-size chunks taken from the
top of the device address space — 64 MB in the original paper, scaled here
with the chip.  Reserving in chunks is cheap to manage but wastes space:
the whole chunk leaves the software pool at once even though only a few of
its blocks may ever serve as backups (the idle rest is stranded, which is
one of the two reasons the paper's Table II shows LLS with consistently
less software-usable space than WL-Reviver).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import CapacityExhaustedError, ConfigurationError


class ChunkReservation:
    """Tracks how much of the device the salvage area has consumed."""

    def __init__(self, device_blocks: int, chunk_blocks: int,
                 min_working_blocks: int = 2) -> None:
        if chunk_blocks <= 0 or chunk_blocks >= device_blocks:
            raise ConfigurationError("chunk_blocks out of range")
        self.device_blocks = device_blocks
        self.chunk_blocks = chunk_blocks
        self.min_working_blocks = min_working_blocks
        self.chunks = 0

    @property
    def reserved_blocks(self) -> int:
        """Blocks inside the salvage area."""
        return self.chunks * self.chunk_blocks

    @property
    def working_blocks(self) -> int:
        """Blocks left to the wear-leveling scheme and the software."""
        return self.device_blocks - self.reserved_blocks

    @property
    def reserved_fraction(self) -> float:
        """Chip fraction consumed by the salvage area."""
        return self.reserved_blocks / self.device_blocks

    def can_reserve(self) -> bool:
        """Whether another chunk still fits."""
        return (self.working_blocks - self.chunk_blocks
                >= self.min_working_blocks)

    def reserve_next(self) -> Tuple[int, int]:
        """Claim the next chunk; returns its half-open DA range.

        The chunk is carved off the top of the current working space so the
        remaining space stays contiguous (LLS's requirement for keeping the
        wear-leveler's address math simple).
        """
        if not self.can_reserve():
            raise CapacityExhaustedError("no space left for another chunk")
        self.chunks += 1
        start = self.working_blocks
        return start, start + self.chunk_blocks
