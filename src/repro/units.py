"""Size units and address arithmetic helpers.

The paper's hardware parameters are expressed in bytes (64 B blocks, 4 KB
pages, 1 GB chips).  The simulator internally works in *blocks*, so this
module centralizes the conversions and the small amount of bit arithmetic
used throughout the package.
"""

from __future__ import annotations

from typing import TypeVar

import numpy as np

from .errors import ConfigurationError

#: Block-address operand: a scalar block id or a vector of them.  The
#: geometry helpers below are generic over both so vectorized decoders and
#: scalar call sites share one implementation (and RAW-GEOM keeps every
#: ``blocks_per_page`` operation inside this module).
BlockLike = TypeVar("BlockLike", int, np.ndarray)

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Paper default: a memory block is one last-level-cacheline, 64 bytes.
DEFAULT_BLOCK_BYTES = 64

#: Paper default: the OS manages memory in 4 KB pages.
DEFAULT_PAGE_BYTES = 4 * KIB

#: One 64 B block is exactly one 512-bit ECP bit group.
BITS_PER_BLOCK = DEFAULT_BLOCK_BYTES * 8


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ConfigurationError("denominator must be positive")
    return -(-numerator // denominator)


def blocks_per_page(page_bytes: int = DEFAULT_PAGE_BYTES,
                    block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """Number of memory blocks (cachelines) per OS page.

    The paper's example: 4 KB page / 64 B block = 64 PAs per page.
    """
    if page_bytes % block_bytes:
        raise ConfigurationError(
            f"page size {page_bytes} is not a multiple of block size {block_bytes}")
    return page_bytes // block_bytes


def page_count(blocks: int, blocks_per_page: int) -> int:
    """Number of whole OS pages covering *blocks* block addresses."""
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return blocks // blocks_per_page


def is_page_aligned(blocks: int, blocks_per_page: int) -> bool:
    """Whether *blocks* is a whole number of OS pages."""
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return blocks % blocks_per_page == 0


def blocks_of_pages(pages: int, blocks_per_page: int) -> int:
    """Block count of *pages* whole OS pages."""
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return pages * blocks_per_page


def round_up_to_pages(blocks: int, blocks_per_page: int) -> int:
    """Smallest page-aligned block count >= *blocks*."""
    return blocks_of_pages(ceil_div(blocks, blocks_per_page), blocks_per_page)


def page_of_block(block: BlockLike, blocks_per_page: int) -> BlockLike:
    """OS-page index containing *block* (scalar or vector).

    This is the raw ``block // blocks_per_page`` form for 0-based address
    spaces (decoders, interleavers).  Software-window PAs must instead go
    through :meth:`repro.osmodel.allocator.PagePool.page_of_pa`, which
    applies the pool's ``base_pa`` offset.
    """
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return block // blocks_per_page


def block_offset_in_page(block: BlockLike, blocks_per_page: int) -> BlockLike:
    """Offset of *block* within its OS page (scalar or vector)."""
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return block % blocks_per_page


def block_at(page: BlockLike, offset: BlockLike, blocks_per_page: int) -> BlockLike:
    """Block address of *offset* inside OS page *page* (scalar or vector)."""
    if blocks_per_page <= 0:
        raise ConfigurationError("blocks_per_page must be positive")
    return page * blocks_per_page + offset


def parse_size(text: str) -> int:
    """Parse a human-readable size such as ``"1GB"``, ``"64MB"``, ``"4KB"``.

    Plain integers (a number of bytes) are accepted too.  Units are
    case-insensitive and the ``i`` of IEC units is optional (``KB`` == ``KiB``
    == 1024 bytes, matching the paper's usage).
    """
    text = text.strip()
    suffixes = [
        ("GIB", GIB), ("MIB", MIB), ("KIB", KIB),
        ("GB", GIB), ("MB", MIB), ("KB", KIB), ("B", 1),
    ]
    upper = text.upper()
    for suffix, multiplier in suffixes:
        if upper.endswith(suffix):
            number = upper[: -len(suffix)].strip()
            try:
                return int(float(number) * multiplier)
            except ValueError as exc:
                raise ConfigurationError(f"cannot parse size {text!r}") from exc
    try:
        return int(text)
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {text!r}") from exc


def format_size(num_bytes: int) -> str:
    """Render a byte count with the largest fitting IEC unit."""
    for unit, multiplier in (("GB", GIB), ("MB", MIB), ("KB", KIB)):
        if num_bytes >= multiplier and num_bytes % multiplier == 0:
            return f"{num_bytes // multiplier}{unit}"
    return f"{num_bytes}B"
