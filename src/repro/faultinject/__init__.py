"""Deterministic fault injection for differential chaos campaigns.

This package owns every way the simulated hardware is allowed to lie:
seeded :class:`FaultSchedule` DSL records (pure data), the
:class:`ScheduleDriver` that applies them to a live engine, and the
campaign runner (``python -m repro.faultinject``) that fans seeded
schedules across both engines and reports any divergence with the
reproducing seed and schedule JSON.  Code outside this package must not
touch the ``inject`` hooks — the FAULT-HOOK lint rule enforces that.
"""

from .hooks import ChipHooks, ControllerHooks, ScheduleDriver
from .schedule import (ACTION_KINDS, CRASH_SITES, FaultAction, FaultSchedule,
                       for_shard, random_schedule, shard_death_schedule,
                       shard_stall_schedule)

__all__ = [
    "ACTION_KINDS",
    "CRASH_SITES",
    "ChipHooks",
    "ControllerHooks",
    "FaultAction",
    "FaultSchedule",
    "ScheduleDriver",
    "for_shard",
    "random_schedule",
    "shard_death_schedule",
    "shard_stall_schedule",
]
