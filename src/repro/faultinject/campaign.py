"""Differential chaos campaigns: one schedule, two engines, one verdict.

A campaign cell regenerates a seeded :class:`~repro.faultinject.schedule.
FaultSchedule` (asserting byte-identical reproduction), then drives the
exact and the fast engine through it on statistically identical hardware
and workload.  The exact side runs with full data verification, final
invariant checking, crash points, and recovery; the fast side exercises
the same forced failures and spare exhaustion.  A cell fails — carrying
its seed and the schedule JSON needed to reproduce it — when either
engine raises, an invariant breaks, data corrupts, or the two lifetimes
diverge beyond a generous band.

Cells are plain module-level functions over JSON-serializable kwargs so
:class:`~repro.experiments.parallel.GridRunner` can fan them across
processes and resume interrupted campaigns.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional

from ..config import ReviverConfig
from ..ecc import ECP
from ..errors import ConfigurationError
from ..mc import ReviverController
from ..osmodel import PagePool
from ..pcm import AddressGeometry, EnduranceModel, PCMChip
from ..sim import ExactEngine, FastConfig, FastEngine
from ..traces import hotspot_distribution
from ..wl import StartGap
from .hooks import ScheduleDriver
from .schedule import FaultSchedule, random_schedule

#: Fast/exact lifetime ratio band the differential oracle accepts.  The
#: engines approximate each other (documented in :mod:`repro.sim.fast`);
#: under injected chaos the band is generous — the oracle's teeth are the
#: invariant checks, data verification, and ProtocolError detection.
RATIO_BAND = (0.2, 5.0)


def _exact_system(seed: int, num_blocks: int, mean: float) -> ExactEngine:
    geometry = AddressGeometry(num_blocks=num_blocks, block_bytes=64,
                               page_bytes=512)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.25,
                               max_order=8, seed=11 + seed)
    chip = PCMChip(geometry, ECP(endurance, 1), track_contents=True)
    wl = StartGap(num_blocks)
    ospool = PagePool(wl.logical_blocks, blocks_per_page=8,
                      utilization=1.0, seed=5)
    controller = ReviverController(
        chip, wl, ospool,
        reviver_config=ReviverConfig(check_invariants=False),
        copy_on_retire=True)
    trace = hotspot_distribution(ospool.virtual_blocks, 4.0, seed=6 + seed)
    return ExactEngine(controller, trace, dead_fraction=0.3,
                       sample_interval=2_000, verify=True,
                       read_fraction=0.25)


def _fast_system(seed: int, num_blocks: int, mean: float,
                 max_writes: int) -> FastEngine:
    geometry = AddressGeometry(num_blocks=num_blocks, block_bytes=64,
                               page_bytes=512)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.25,
                               max_order=8, seed=11 + seed)
    chip = PCMChip(geometry, ECP(endurance, 1))
    wl = StartGap(num_blocks)
    trace = hotspot_distribution(wl.logical_blocks, 4.0, seed=6 + seed)
    config = FastConfig(recovery="reviver", batch_writes=500,
                        blocks_per_page=8, dead_fraction=0.3,
                        max_writes=max_writes, seed=6 + seed)
    return FastEngine(chip, wl, trace, config)


def _schedule_horizon(num_blocks: int, mean: float, max_writes: int) -> int:
    """Write horizon inside which scheduled actions can still fire.

    Actions pinned past the chip's natural lifetime never apply, so the
    horizon tracks the endurance budget (a conservative sixteenth of the
    total cell endurance — under a hot workload the chip reaches its dead
    fraction within roughly a tenth, so every action lands while the
    system is alive and still has life left to diverge in).
    """
    return max(100, min(max_writes, int(mean) * num_blocks // 16))


def run_cell(seed: int, num_blocks: int = 96, mean: float = 250.0,
             max_writes: int = 40_000) -> Dict[str, Any]:
    """Run one differential chaos cell; returns a JSON-ready verdict."""
    horizon = _schedule_horizon(num_blocks, mean, max_writes)
    schedule = random_schedule(seed, num_blocks, horizon)
    replay = random_schedule(seed, num_blocks, horizon)
    if replay.to_json() != schedule.to_json():
        raise ConfigurationError(
            f"schedule for seed {seed} did not reproduce byte-identically")
    result: Dict[str, Any] = {
        "seed": seed,
        "schedule_json": schedule.to_json(),
        "ok": True,
        "failure": None,
    }

    # --- exact engine: crash points, recovery, data verification ----------
    exact = _exact_system(seed, num_blocks, mean)
    exact_driver = ScheduleDriver(schedule).attach_exact(exact)
    try:
        exact_summary = exact.run(max_writes=max_writes)
        exact.verify_all()
        exact.controller.check_invariants()
    except Exception as exc:  # repro: allow(EXC-SWALLOW): campaign cells turn any engine exception into a reproducible failure record
        result["ok"] = False
        result["failure"] = {
            "stage": "exact",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
        return result
    controller = exact.controller
    assert isinstance(controller, ReviverController)
    reviver = controller.reviver
    result["exact"] = {
        "lifetime_writes": exact_summary.lifetime_writes,
        "stopped": exact.stopped_reason,
        "report": exact.end_of_life_report().as_dict(),
        "crash_sites_fired": list(exact_driver.controller_hooks.fired),
        "recoveries": reviver.recoveries,
        "recovery_redo_writes": reviver.recovery_redo_writes,
        "switch_scenarios": dict(reviver.switch_scenarios),
        "read_errors_delivered": exact_driver.chip_hooks.delivered,
        "spares_drained": exact_driver.spares_drained,
        "victimized_writes": reviver.reporter.victimized_count,
        "actions_applied": len(exact_driver.applied),
    }

    # --- fast engine: same schedule, same hardware statistics -------------
    fast = _fast_system(seed, num_blocks, mean, max_writes)
    fast_driver = ScheduleDriver(schedule).attach_fast(fast)
    try:
        fast_summary = fast.run()
        if fast.links:
            fast.check_invariants()
    except Exception as exc:  # repro: allow(EXC-SWALLOW): campaign cells turn any engine exception into a reproducible failure record
        result["ok"] = False
        result["failure"] = {
            "stage": "fast",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
        return result
    result["fast"] = {
        "lifetime_writes": fast_summary.lifetime_writes,
        "stopped": fast.stopped_reason,
        "report": fast.end_of_life_report().as_dict(),
        "spares_drained": fast_driver.spares_drained,
        "actions_applied": len(fast_driver.applied),
    }

    # --- differential oracle ----------------------------------------------
    ratio = (fast_summary.lifetime_writes
             / max(exact_summary.lifetime_writes, 1))
    result["ratio"] = ratio
    low, high = RATIO_BAND
    if not low < ratio < high:
        result["ok"] = False
        result["failure"] = {
            "stage": "differential",
            "error": (f"lifetime divergence: fast/exact ratio {ratio:.3f} "
                      f"outside ({low}, {high}) — exact "
                      f"{exact_summary.lifetime_writes}, fast "
                      f"{fast_summary.lifetime_writes}"),
        }
    return result


def reproduce(schedule_json: str, seed: int, num_blocks: int = 96,
              mean: float = 250.0, max_writes: int = 40_000) -> Dict[str, Any]:
    """Re-run a failing cell from its reported schedule JSON.

    The parsed schedule must match the seed's regenerated one — a
    mismatch means the report and the seed drifted apart and the run
    would not reproduce the original failure.
    """
    parsed = FaultSchedule.from_json(schedule_json)
    regenerated = random_schedule(
        seed, num_blocks, _schedule_horizon(num_blocks, mean, max_writes))
    if parsed.to_json() != regenerated.to_json():
        raise ConfigurationError(
            f"schedule JSON does not match seed {seed}'s regeneration")
    return run_cell(seed, num_blocks=num_blocks, mean=mean,
                    max_writes=max_writes)


def summarize(results: "list[Dict[str, Any]]") -> Dict[str, Any]:
    """Aggregate campaign coverage and failures across cell results."""
    failures = [r for r in results if not r.get("ok")]
    sites: Dict[str, int] = {}
    scenarios: Dict[str, int] = {}
    recoveries = 0
    exhausts = 0
    read_errors = 0
    victimized = 0
    for r in results:
        exact = r.get("exact")
        if not exact:
            continue
        for site in exact["crash_sites_fired"]:
            sites[site] = sites.get(site, 0) + 1
        for name, count in exact["switch_scenarios"].items():
            scenarios[name] = scenarios.get(name, 0) + count
        recoveries += exact["recoveries"]
        if exact["spares_drained"]:
            exhausts += 1
        read_errors += exact["read_errors_delivered"]
        victimized += exact["victimized_writes"]
    return {
        "cells": len(results),
        "failed": len(failures),
        "failures": failures,
        "crash_sites_fired": sites,
        "switch_scenarios": scenarios,
        "recoveries": recoveries,
        "cells_with_spare_exhaustion": exhausts,
        "read_errors_delivered": read_errors,
        "victimized_writes": victimized,
    }


def render(summary: Dict[str, Any]) -> str:
    """Human-readable campaign report; failing schedules printed in full."""
    lines = [
        f"chaos campaign: {summary['cells']} cells, "
        f"{summary['failed']} failed",
        f"  crash sites fired: {summary['crash_sites_fired']}",
        f"  switch scenarios:  {summary['switch_scenarios']}",
        f"  recoveries: {summary['recoveries']}  "
        f"spare-exhaustion cells: {summary['cells_with_spare_exhaustion']}  "
        f"read errors: {summary['read_errors_delivered']}  "
        f"victimized: {summary['victimized_writes']}",
    ]
    for failure in summary["failures"]:
        info = failure.get("failure") or {}
        lines.append(f"  FAIL seed={failure['seed']} "
                     f"stage={info.get('stage')}: {info.get('error')}")
        lines.append(f"    schedule: {failure['schedule_json']}")
        if info.get("traceback"):
            lines.append("    " + "\n    ".join(
                info["traceback"].rstrip().splitlines()))
    return "\n".join(lines)
