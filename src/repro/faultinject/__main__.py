"""Campaign CLI: ``python -m repro.faultinject --seeds 100 --jobs 4``.

Fans seeded differential chaos cells across the experiment process pool,
aggregates coverage (crash sites fired, switch scenarios, recoveries,
spare exhaustion), and exits non-zero when any cell diverged or raised —
printing the offending seed and schedule JSON so the failure reproduces
with ``run_cell(seed)`` or :func:`repro.faultinject.campaign.reproduce`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..experiments.parallel import Cell, CellOutcome, GridRunner
from .campaign import render, summarize
from .schedule import CRASH_SITES


def _progress(outcome: CellOutcome, done: int, total: int) -> None:
    status = "ok" if outcome.value.get("ok") else "FAIL"
    cached = " (resumed)" if outcome.cached else ""
    print(f"  [{done}/{total}] {outcome.key}: {status}{cached}",
          file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultinject",
        description="Differential fault-injection campaign over both engines")
    parser.add_argument("--seeds", type=int, default=100,
                        help="number of seeded schedules (default: 100)")
    parser.add_argument("--first-seed", type=int, default=0,
                        help="first seed of the range (default: 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1, in-process)")
    parser.add_argument("--num-blocks", type=int, default=96,
                        help="device blocks per cell chip (default: 96)")
    parser.add_argument("--mean", type=float, default=250.0,
                        help="mean block endurance (default: 250)")
    parser.add_argument("--max-writes", type=int, default=40_000,
                        help="software-write budget per engine (default: 40000)")
    parser.add_argument("--resume", type=str, default=None,
                        help="JSON file persisting finished cells")
    parser.add_argument("--json", dest="json_out", type=str, default=None,
                        help="write the aggregate summary to this file")
    parser.add_argument("--trace-out", type=str, default=None,
                        help="write an instrumented golden trace (JSONL) of "
                             "the first seed to this file; summarize with "
                             "`python -m repro.telemetry summarize`")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    cells = [
        Cell(key=f"chaos/{seed}", fn="repro.faultinject.campaign:run_cell",
             kwargs={"seed": seed, "num_blocks": args.num_blocks,
                     "mean": args.mean, "max_writes": args.max_writes})
        for seed in range(args.first_seed, args.first_seed + args.seeds)
    ]
    runner = GridRunner(jobs=args.jobs, resume=args.resume,
                        progress=None if args.quiet else _progress)
    results = runner.run(cells)
    summary = summarize([results[cell.key] for cell in cells])
    print(render(summary))

    uncovered = [site for site in CRASH_SITES
                 if not summary["crash_sites_fired"].get(site)]
    if uncovered:
        print(f"  WARNING: crash sites never fired: {uncovered} "
              f"(enlarge --seeds or shrink --mean)")
    unswitched = [name for name, count in summary["switch_scenarios"].items()
                  if not count]
    if unswitched:
        print(f"  WARNING: switch scenarios never exercised: {unswitched}")

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    if args.trace_out:
        from ..telemetry.golden import golden_trace
        text = golden_trace(seed=args.first_seed,
                            num_blocks=args.num_blocks, mean=args.mean,
                            max_writes=args.max_writes)
        with open(args.trace_out, "w") as handle:
            handle.write(text)
        if not args.quiet:
            print(f"  instrumented trace of seed {args.first_seed} "
                  f"written to {args.trace_out}")
    return 1 if summary["failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
