"""Injection hooks and the driver that applies a schedule to a live run.

The chip and the controller each carry one optional ``inject`` attribute
(``None`` by default); every hook call site is guarded by an ``is not
None`` check, so a system without injection pays one attribute test on the
read path and nothing anywhere else.  Only this package may attach or
mutate those hooks — the FAULT-HOOK lint rule enforces it — which keeps
"who can make the hardware lie" audit-sized.

Forced *write* failures need no hook at all: the driver clamps the ECC
threshold of a target block to just above its current wear, so the next
write fails through the chip's ordinary threshold machinery.  Both engines
share that machinery (``write`` and ``write_many`` read the same threshold
array), which is what makes the differential campaign meaningful and the
disabled-hook fast path exactly as fast as before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ProtocolError, SimulatedCrash, UncorrectableError
from ..pcm.chip import PCMChip
from ..reviver.registers import SparePool
from .schedule import CRASH_SITES, FaultAction, FaultSchedule


class ChipHooks:
    """Armed transient read errors, delivered once each."""

    def __init__(self) -> None:
        self._read_errors: Dict[int, int] = {}
        #: Transient errors actually delivered.
        self.delivered = 0

    def arm_read_error(self, da: int, count: int = 1) -> None:
        """Make the next *count* reads of block *da* fail transiently."""
        self._read_errors[da] = self._read_errors.get(da, 0) + count

    def on_read(self, da: int) -> None:
        """Chip read-path hook; raises when an armed error is due."""
        remaining = self._read_errors.get(da, 0)
        if remaining:
            self._read_errors[da] = remaining - 1
            self.delivered += 1
            raise UncorrectableError(da, f"injected transient read error "
                                         f"at block {da}")


class ControllerHooks:
    """Armed crash points inside the reviver protocol."""

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        #: Sites that actually fired, in order.
        self.fired: List[str] = []

    def arm_crash(self, site: str) -> None:
        """Arm one crash at the named protocol site."""
        if site not in CRASH_SITES:
            raise ProtocolError(f"unknown crash site {site!r}")
        self._armed[site] = self._armed.get(site, 0) + 1

    def crash_point(self, site: str, pa: Optional[int] = None) -> None:
        """Controller hook at a named site; raises when armed."""
        if self._armed.get(site, 0):
            self._armed[site] -= 1
            self.fired.append(site)
            raise SimulatedCrash(site, pa=pa)


class ScheduleDriver:
    """Applies a :class:`FaultSchedule` to a running engine.

    The engine polls :meth:`poll` with its software-write count (once per
    write in the exact engine, once per epoch in the fast engine); every
    action whose ``at_write`` has passed is applied exactly once, in the
    schedule's deterministic order.  Crash and read-error actions arm the
    controller/chip hooks and therefore only take effect on the exact
    engine — the fast engine has neither a read path nor a controller
    protocol, which the differential oracle accounts for.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.chip_hooks = ChipHooks()
        self.controller_hooks = ControllerHooks()
        self._pending = list(schedule.sorted_actions())
        self._cursor = 0
        self._chip: Optional[PCMChip] = None
        self._spares_fn: Optional[Callable[[], SparePool]] = None
        self._exact = False
        #: Actions applied so far, in application order.
        self.applied: List[FaultAction] = []
        #: Spares drained by ``exhaust-spares`` actions.
        self.spares_drained = 0

    # ------------------------------------------------------------- attaching

    def attach_exact(self, engine: object) -> "ScheduleDriver":
        """Wire this driver into an :class:`~repro.sim.engine.ExactEngine`."""
        controller = getattr(engine, "controller")
        controller.inject = self.controller_hooks
        controller.chip.inject = self.chip_hooks
        self._chip = controller.chip
        reviver = getattr(controller, "reviver", None)
        if reviver is not None:
            # The pool object is replaced on crash recovery; resolve late.
            self._spares_fn = lambda: controller.reviver.spares
        self._exact = True
        setattr(engine, "inject", self)
        return self

    def attach_fast(self, engine: object) -> "ScheduleDriver":
        """Wire this driver into a :class:`~repro.sim.fast.FastEngine`."""
        self._chip = getattr(engine, "chip")
        if getattr(engine, "config").recovery == "reviver":
            self._spares_fn = lambda: getattr(engine, "spares")
        self._exact = False
        setattr(engine, "inject", self)
        return self

    # --------------------------------------------------------------- applying

    def poll(self, writes: int) -> None:
        """Apply every action due at software-write count *writes*."""
        while (self._cursor < len(self._pending)
               and self._pending[self._cursor].at_write <= writes):
            action = self._pending[self._cursor]
            self._cursor += 1
            self._apply(action)
            self.applied.append(action)

    def _apply(self, action: FaultAction) -> None:
        if action.kind in ("fail-block", "endurance-burst"):
            self._clamp(action.das, action.margin)
        elif action.kind == "exhaust-spares":
            if self._spares_fn is not None:
                pool = self._spares_fn()
                while pool.available:
                    pool.take()
                    self.spares_drained += 1
        elif action.kind == "crash":
            if self._exact and action.site is not None:
                self.controller_hooks.arm_crash(action.site)
        elif action.kind == "read-error":
            if self._exact and action.da is not None:
                self.chip_hooks.arm_read_error(action.da)
        elif action.kind == "shard-stall":
            # A serving-layer action: the shard's request path stalls, but
            # the device underneath keeps working.  Engine drivers record
            # it as applied and do nothing, like the fast engine with
            # ``crash`` — the serving layer has its own interpreter.
            pass

    def _clamp(self, das: "tuple[int, ...]", margin: int) -> None:
        """Clamp ECC thresholds so each live target dies within *margin*."""
        chip = self._chip
        if chip is None:
            raise ProtocolError("driver applied before being attached")
        thresholds = chip.ecc.thresholds
        for da in das:
            if not chip.failed[da]:
                thresholds[da] = int(chip.wear[da]) + margin
