"""Configuration dataclasses shared across the simulator.

The paper's experimental setup (Section IV-A):

* PCM cell sustains about 1e8 writes, normally distributed, lifetime CoV 0.2;
* memory block = 64 B (the last-level cacheline);
* OS page = 4 KB (64 blocks per page);
* chip = 1 GB;
* the chip is declared dead once 30 % of its blocks have failed;
* Start-Gap performs one gap movement every ψ = 100 writes.

Simulating 1 GB at 1e8 writes/cell write-by-write is not tractable in pure
Python, so the defaults here are *scaled*: fewer blocks and proportionally
lower endurance.  All of the paper's results are about shapes and orderings
(who wins, where curves cross), which are preserved under this scaling; the
full-size parameters remain expressible through the same dataclasses (see
:meth:`PCMConfig.paper_scale`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .units import (
    BITS_PER_BLOCK,
    DEFAULT_BLOCK_BYTES,
    DEFAULT_PAGE_BYTES,
    GIB,
    blocks_per_page,
    is_page_aligned,
    page_count,
)


@dataclass(frozen=True)
class PCMConfig:
    """Geometry and endurance parameters of the simulated PCM chip."""

    #: Total number of device blocks (DAs) on the chip.
    num_blocks: int = 1 << 14
    #: Bytes per memory block; also the wear-leveling unit.
    block_bytes: int = DEFAULT_BLOCK_BYTES
    #: Bytes per OS page.
    page_bytes: int = DEFAULT_PAGE_BYTES
    #: Mean per-cell endurance in writes (paper: 1e8; scaled default 4e3).
    mean_endurance: float = 4e3
    #: Coefficient of variation of per-cell lifetime (paper: 0.2).
    endurance_cov: float = 0.2
    #: Number of cells per block participating in the order-statistics model.
    #: A 64 B block is one 512-bit ECP group.
    cells_per_block: int = BITS_PER_BLOCK
    #: Seed for endurance draws.
    endurance_seed: int = 1

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ConfigurationError("num_blocks must be positive")
        if self.block_bytes <= 0 or self.page_bytes <= 0:
            raise ConfigurationError("block/page sizes must be positive")
        if self.page_bytes % self.block_bytes:
            raise ConfigurationError("page size must be a multiple of block size")
        if self.mean_endurance <= 0:
            raise ConfigurationError("mean_endurance must be positive")
        if not 0.0 <= self.endurance_cov < 1.0:
            raise ConfigurationError("endurance_cov must be in [0, 1)")
        if self.cells_per_block <= 0:
            raise ConfigurationError("cells_per_block must be positive")
        if not is_page_aligned(self.num_blocks, self.blocks_per_page):
            raise ConfigurationError(
                "num_blocks must be a whole number of pages "
                f"({self.blocks_per_page} blocks/page)")

    @property
    def blocks_per_page(self) -> int:
        """Blocks (PAs) per OS page — 64 with paper defaults."""
        return blocks_per_page(self.page_bytes, self.block_bytes)

    @property
    def num_pages(self) -> int:
        """Number of OS pages covering the chip."""
        return page_count(self.num_blocks, self.blocks_per_page)

    @property
    def capacity_bytes(self) -> int:
        """Total chip capacity in bytes."""
        return self.num_blocks * self.block_bytes

    @classmethod
    def paper_scale(cls, **overrides: object) -> "PCMConfig":
        """The paper's full-size setup: 1 GB chip, 1e8 mean endurance."""
        params = dict(
            num_blocks=GIB // DEFAULT_BLOCK_BYTES,
            mean_endurance=1e8,
        )
        params.update(overrides)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]

    def scaled(self, **overrides: object) -> "PCMConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class StartGapConfig:
    """Start-Gap wear-leveling parameters (Qureshi et al., MICRO'09)."""

    #: Perform one gap movement for every ``psi`` software writes.
    psi: int = 100
    #: Address randomizer: ``"feistel"`` (hardware-faithful, power-of-two
    #: spaces), ``"permutation"`` (any size) or ``"identity"`` (no
    #: randomization; exposes spatial correlation, used in ablations).
    randomizer: str = "feistel"
    #: Feistel rounds when ``randomizer == "feistel"``.
    feistel_rounds: int = 4
    #: Seed for the static randomization.
    seed: int = 2

    def __post_init__(self) -> None:
        if self.psi <= 0:
            raise ConfigurationError("psi must be positive")
        if self.randomizer not in ("feistel", "permutation", "identity"):
            raise ConfigurationError(f"unknown randomizer {self.randomizer!r}")
        if self.feistel_rounds < 1:
            raise ConfigurationError("feistel_rounds must be >= 1")


@dataclass(frozen=True)
class SecurityRefreshConfig:
    """Single-level Security Refresh parameters (Seong et al., ISCA'10)."""

    #: Refresh one address for every ``refresh_interval`` writes to a region.
    refresh_interval: int = 100
    #: Seed for the per-round random keys.
    seed: int = 3

    def __post_init__(self) -> None:
        if self.refresh_interval <= 0:
            raise ConfigurationError("refresh_interval must be positive")


@dataclass(frozen=True)
class ReviverConfig:
    """WL-Reviver framework parameters (Section III)."""

    #: PAs at the tail of each acquired page reserved for inverse pointers.
    #: Paper example: 64-block page, 32-bit pointers, 16 pointers per block
    #: -> 4 pointer blocks, 60 virtual shadow slots.
    pointer_bits: int = 32
    #: Number of redundant copies of the retired-page bitmap kept in PCM.
    bitmap_replicas: int = 2
    #: When True, run the Theorem 1-3 invariant checkers after every reviver
    #: state change (slow; enabled in tests).
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.pointer_bits <= 0 or self.pointer_bits % 8:
            raise ConfigurationError("pointer_bits must be a positive multiple of 8")
        if self.bitmap_replicas < 1:
            raise ConfigurationError("bitmap_replicas must be >= 1")

    def pointer_section_blocks(self, blocks_per_page: int, block_bytes: int) -> int:
        """Blocks per page reserved for inverse pointers.

        Solves for the smallest pointer section such that the remaining PAs
        (the virtual-shadow section) all fit their inverse pointers:
        with ``p`` pointer blocks and ``k`` pointers per block we need
        ``p * k >= blocks_per_page - p``.
        """
        pointers_per_block = (block_bytes * 8) // self.pointer_bits
        if pointers_per_block <= 0:
            raise ConfigurationError("pointer does not fit in one block")
        section = 1
        while section * pointers_per_block < blocks_per_page - section:
            section += 1
        if section >= blocks_per_page:
            raise ConfigurationError("pointer section would consume the whole page")
        return section


@dataclass(frozen=True)
class LLSConfig:
    """LLS baseline parameters (Jiang et al., TACO'13, as described in §II)."""

    #: Blocks per reservation chunk.  Paper default is 64 MB; scaled down by
    #: default to keep proportion with the scaled chip.
    chunk_blocks: int = 1 << 10
    #: Number of salvaging groups the block space is partitioned into.
    num_groups: int = 16

    def __post_init__(self) -> None:
        if self.chunk_blocks <= 0:
            raise ConfigurationError("chunk_blocks must be positive")
        if self.num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")


@dataclass(frozen=True)
class CacheConfig:
    """Remap cache used in Table II (32 KB for a 1 GB chip)."""

    #: Number of remap entries the cache can hold.
    capacity_entries: int = 4096
    #: Associativity of the cache (entries per set).
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.capacity_entries <= 0:
            raise ConfigurationError("capacity_entries must be positive")
        if self.associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if self.capacity_entries % self.associativity:
            raise ConfigurationError("capacity must be a multiple of associativity")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation parameters."""

    pcm: PCMConfig = field(default_factory=PCMConfig)
    #: Chip is unavailable once this fraction of blocks has failed (paper: 0.3).
    dead_fraction: float = 0.3
    #: Hard cap on simulated software writes (safety stop).
    max_writes: Optional[int] = None
    #: Report progress through metrics every this many writes.
    sample_interval: int = 50_000

    def __post_init__(self) -> None:
        if not 0.0 < self.dead_fraction <= 1.0:
            raise ConfigurationError("dead_fraction must be in (0, 1]")
        if self.max_writes is not None and self.max_writes <= 0:
            raise ConfigurationError("max_writes must be positive")
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")
