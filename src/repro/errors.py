"""Exception hierarchy for the WL-Reviver reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming from this package with one handler while still
being able to distinguish configuration mistakes from simulated hardware
events.

Two of the classes here are *not* error conditions in the usual sense:
:class:`WriteFault` and :class:`UncorrectableError` model hardware events
(a PCM block wearing out) that the memory controller is expected to catch and
handle.  They are exceptions because that is exactly how the hardware
behaves: the event interrupts the normal access path.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AddressError(ReproError):
    """An address is outside the valid PA or DA range."""


class CapacityExhaustedError(ReproError):
    """A finite resource (spare slots, OS pages, pool entries) ran out."""


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Raised by invariant checkers (e.g. a chain longer than one step, a
    migration into a PA-DA loop).  Seeing this exception means a bug in the
    framework logic, never a simulated hardware event.
    """


class ReadRetriesExhausted(ProtocolError):
    """A block failed every read of its bounded retry budget.

    Transient read errors are absorbed by re-sensing
    (:meth:`repro.mc.controller.BaseController._read_block`); a block that
    keeps failing past the configured budget is no longer *transiently*
    wrong, so the condition surfaces structured rather than as message
    text: callers (the serving layer's retry/backoff path, chaos-campaign
    triage) can read the device address and the spent budget off the
    exception instead of parsing an f-string.

    Attributes
    ----------
    da:
        Device address of the block whose reads kept failing.
    attempts:
        Number of read attempts made (the configured retry budget).
    """

    def __init__(self, da: int, attempts: int) -> None:
        super().__init__(
            f"block {da} failed {attempts} consecutive read retries")
        self.da = da
        self.attempts = attempts


class WriteFault(ReproError):
    """A write to a PCM block could not be completed (block wore out).

    Attributes
    ----------
    da:
        Device address of the block on which the write failed.
    """

    def __init__(self, da: int, message: str = "") -> None:
        super().__init__(message or f"write fault at device address {da}")
        self.da = da


class UncorrectableError(ReproError):
    """A block accumulated more cell faults than its ECC scheme corrects."""

    def __init__(self, da: int, message: str = "") -> None:
        super().__init__(message or f"uncorrectable error at device address {da}")
        self.da = da


class SimulatedCrash(ReproError):
    """An injected controller power loss at a named protocol crash point.

    Raised only by the fault-injection hooks (:mod:`repro.faultinject`);
    the simulation engine catches it, discards the controller's volatile
    state, and runs the recovery path.  Like :class:`WriteFault` this
    models an event, not a bug.

    Attributes
    ----------
    site:
        Name of the crash point that fired (e.g. ``"after-link-write"``).
    pa:
        PA of an in-flight migration datum lost with the store buffer,
        or ``None`` when no data write was in flight.
    """

    def __init__(self, site: str, pa: Optional[int] = None) -> None:
        super().__init__(f"simulated crash at {site}")
        self.site = site
        self.pa = pa


class SimulationEnded(ReproError):
    """Internal signal: a stop condition of the simulation was reached."""
