"""The elastic address map: a remappable, growable decoder.

:class:`BalancedDecoder` wraps an
:class:`~repro.array.decoder.InterleavedDecoder` with an explicit
``global address -> (shard, slot)`` map, materialized as two integer
arrays.  The wrap starts as the identity (every address decodes exactly
as the base decoder would) and then absorbs three kinds of mutation:

``swap``
    Exchange the homes of two global addresses — the unit of hot/cold
    steering.  Swaps preserve the bijection.
``add_shard``
    Grow the array by one shard using the consistent-hashing rule: a
    global address moves to new shard ``j`` (of ``t`` total) iff
    ``mix64(address, j) mod t == 0``, so growth moves only ~``1/t`` of
    the address space and every unmoved address keeps its exact home
    (the *monotone remap* property).  Movers take the new shard's local
    slots in ascending address order.
``rehome``
    Degraded-mode shard death: every address homed on the dead shard
    moves to survivor ``live[slot mod len(live)]`` at the *same* local
    slot — exactly the array engine's re-decode rule, which makes the
    map many-to-one (a survivor slot can host inherited addresses on
    top of its own).

The map serializes to a sparse :class:`RemapTable` (only non-identity
entries) that round-trips through JSON, so a control plane can persist
and restore its steering state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..array.decoder import InterleavedDecoder
from ..errors import ConfigurationError
from ..units import BlockLike

#: splitmix64 constants — a well-mixed, dependency-free integer finalizer.
_SPLIT_GAMMA = 0x9E3779B97F4A7C15
_SPLIT_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLIT_M2 = np.uint64(0x94D049BB133111EB)
_WORD = 1 << 64


def _mix64(values: np.ndarray, salt: int) -> np.ndarray:
    """Vectorized splitmix64 finalizer of ``values`` keyed by *salt*.

    The salt offset is computed in Python integers (exact modular
    arithmetic) so only silent array-wide uint64 wraparound remains.
    """
    offset = np.uint64((salt + 1) * _SPLIT_GAMMA % _WORD)
    x = values.astype(np.uint64) + offset
    x = (x ^ (x >> np.uint64(30))) * _SPLIT_M1
    x = (x ^ (x >> np.uint64(27))) * _SPLIT_M2
    return x ^ (x >> np.uint64(31))


def movers_mask(addresses: np.ndarray, new_shard: int,
                total_shards: int) -> np.ndarray:
    """Which of *addresses* move to *new_shard* when it joins.

    Pure function of ``(address, new_shard, total_shards)`` — ownership
    history is irrelevant, which is what makes growth monotone: an
    address not in the mask is untouched by the expansion.
    """
    if total_shards < 1:
        raise ConfigurationError("total_shards must be positive")
    hashed = _mix64(np.asarray(addresses, dtype=np.int64), new_shard)
    mask = hashed % np.uint64(total_shards) == np.uint64(0)
    return np.asarray(mask, dtype=bool)


@dataclass(frozen=True)
class RemapTable:
    """Sparse, JSON-serializable state of a :class:`BalancedDecoder`.

    ``moves`` holds one ``(address, shard, slot)`` triple per global
    address whose home differs from the base decoder's identity map,
    sorted by address.  Together with the base geometry this is the
    decoder's full state.
    """

    base_shards: int
    num_shards: int
    shard_blocks: int
    interleave: str
    page_blocks: int
    moves: Tuple[Tuple[int, int, int], ...]

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace surprises)."""
        return json.dumps({
            "base_shards": self.base_shards,
            "num_shards": self.num_shards,
            "shard_blocks": self.shard_blocks,
            "interleave": self.interleave,
            "page_blocks": self.page_blocks,
            "moves": [list(m) for m in self.moves],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RemapTable":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"remap table is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("remap table JSON must be an object")
        try:
            moves = tuple((int(a), int(s), int(l))
                          for a, s, l in data["moves"])
            return cls(base_shards=int(data["base_shards"]),
                       num_shards=int(data["num_shards"]),
                       shard_blocks=int(data["shard_blocks"]),
                       interleave=str(data["interleave"]),
                       page_blocks=int(data["page_blocks"]),
                       moves=moves)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"remap table JSON is malformed: {exc}") from exc


class BalancedDecoder:
    """A growable, remappable view over an interleaved base decoder.

    Presents the same decoding surface as the base
    (:meth:`shard_of`/:meth:`local_of`/:meth:`decode`, plus the mass
    projections the array engine uses) but reads every answer from the
    materialized map, so mutations are O(affected addresses) and lookups
    are O(1) gathers.
    """

    def __init__(self, base: InterleavedDecoder) -> None:
        self.base = base
        self.num_shards = base.num_shards
        self.shard_blocks = base.shard_blocks
        addresses = np.arange(base.global_blocks, dtype=np.int64)
        self._owner = np.asarray(base.shard_of(addresses), dtype=np.int64)
        self._slot = np.asarray(base.local_of(addresses), dtype=np.int64)

    @property
    def global_blocks(self) -> int:
        """Size of the global address space (fixed across growth)."""
        return self.base.global_blocks

    # -------------------------------------------------------------- decoding

    def shard_of(self, block: BlockLike) -> BlockLike:
        """Shard currently homing global address *block*."""
        return self._owner[block]

    def local_of(self, block: BlockLike) -> BlockLike:
        """Shard-local slot of global address *block*."""
        return self._slot[block]

    def decode(self, block: BlockLike) -> Tuple[BlockLike, BlockLike]:
        """``(shard, slot)`` currently homing global address *block*."""
        return self._owner[block], self._slot[block]

    # ----------------------------------------------------------- projections

    def shard_masses(self, probabilities: np.ndarray) -> np.ndarray:
        """Traffic mass each shard receives under a global distribution."""
        probabilities = self._checked(probabilities)
        return np.bincount(self._owner, weights=probabilities,
                           minlength=self.num_shards)

    def local_mass(self, probabilities: np.ndarray,
                   shard: int) -> np.ndarray:
        """Shard-local mass vector under the current (many-to-one) map.

        Scatter-adds because a slot can host inherited addresses on top
        of its own after a re-home.
        """
        probabilities = self._checked(probabilities)
        mass = np.zeros(self.shard_blocks, dtype=np.float64)
        owned = self._owner == shard
        np.add.at(mass, self._slot[owned], probabilities[owned])
        return mass

    def _checked(self, probabilities: np.ndarray) -> np.ndarray:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != (self.global_blocks,):
            raise ConfigurationError(
                f"distribution covers {probabilities.shape} addresses, "
                f"decoder needs ({self.global_blocks},)")
        return probabilities

    # -------------------------------------------------------------- mutation

    def swap(self, a: int, b: int) -> None:
        """Exchange the homes of global addresses *a* and *b*."""
        for address in (a, b):
            if not 0 <= address < self.global_blocks:
                raise ConfigurationError(
                    f"address {address} outside the global space "
                    f"[0, {self.global_blocks})")
        self._owner[[a, b]] = self._owner[[b, a]]
        self._slot[[a, b]] = self._slot[[b, a]]

    def add_shard(self) -> Tuple[np.ndarray, np.ndarray]:
        """Grow by one shard; returns ``(moved addresses, old owners)``.

        Movers are the addresses hashing to the new shard under
        :func:`movers_mask`, capped (in ascending address order) at the
        shard's slot capacity; they take slots ``0..k-1`` in that order.
        """
        new_shard = self.num_shards
        total = new_shard + 1
        addresses = np.arange(self.global_blocks, dtype=np.int64)
        movers = addresses[movers_mask(addresses, new_shard, total)]
        if movers.size > self.shard_blocks:
            movers = movers[:self.shard_blocks]
        donors = self._owner[movers].copy()
        self._owner[movers] = new_shard
        self._slot[movers] = np.arange(movers.size, dtype=np.int64)
        self.num_shards = total
        return movers, donors

    def rehome(self, dead_shard: int, live: List[int]) -> np.ndarray:
        """Move a dead shard's addresses onto the survivors.

        Applies the array engine's degraded-mode rule: slot ``l`` of the
        dead shard re-homes to ``live[l mod len(live)]`` at the same
        slot.  Returns the affected global addresses.
        """
        if not live:
            raise ConfigurationError("rehome needs at least one survivor")
        affected = np.nonzero(self._owner == dead_shard)[0]
        survivors = np.asarray(live, dtype=np.int64)
        self._owner[affected] = survivors[
            self._slot[affected] % len(live)]
        return affected

    # --------------------------------------------------------- serialization

    def table(self) -> RemapTable:
        """Sparse snapshot of every non-identity map entry."""
        addresses = np.arange(self.base.global_blocks, dtype=np.int64)
        base_owner = np.asarray(self.base.shard_of(addresses),
                                dtype=np.int64)
        base_slot = np.asarray(self.base.local_of(addresses),
                               dtype=np.int64)
        changed = np.nonzero((self._owner != base_owner)
                             | (self._slot != base_slot))[0]
        moves = tuple((int(a), int(self._owner[a]), int(self._slot[a]))
                      for a in changed)
        return RemapTable(base_shards=self.base.num_shards,
                          num_shards=self.num_shards,
                          shard_blocks=self.shard_blocks,
                          interleave=self.base.interleave,
                          page_blocks=self.base.page_blocks,
                          moves=moves)

    @classmethod
    def from_table(cls, table: RemapTable) -> "BalancedDecoder":
        """Reconstruct a decoder from its sparse :class:`RemapTable`."""
        if table.num_shards < table.base_shards:
            raise ConfigurationError(
                f"remap table shrinks the array ({table.base_shards} -> "
                f"{table.num_shards}); shards can only be added")
        base = InterleavedDecoder(table.base_shards, table.shard_blocks,
                                  interleave=table.interleave,
                                  page_blocks=table.page_blocks)
        decoder = cls(base)
        decoder.num_shards = table.num_shards
        for address, shard, slot in table.moves:
            if not 0 <= address < decoder.global_blocks:
                raise ConfigurationError(
                    f"remap table address {address} outside the global "
                    f"space [0, {decoder.global_blocks})")
            if not 0 <= shard < table.num_shards:
                raise ConfigurationError(
                    f"remap table shard {shard} outside "
                    f"[0, {table.num_shards})")
            if not 0 <= slot < table.shard_blocks:
                raise ConfigurationError(
                    f"remap table slot {slot} outside "
                    f"[0, {table.shard_blocks})")
            decoder._owner[address] = shard
            decoder._slot[address] = slot
        return decoder


__all__ = ["BalancedDecoder", "RemapTable", "movers_mask"]
