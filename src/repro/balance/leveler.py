"""The bounded-budget global leveler: risk estimates -> concrete swaps.

Each rebalance round the planner moves at most ``budget`` hot addresses
off the riskiest shard, one hot/cold swap at a time: the hottest
address homed on the highest-risk live shard trades places with the
coldest address homed on the lowest-risk live shard.  The budget bounds
the migration traffic a single round may generate (every swap is two
block copies, charged through the write-amplification accounting), and
the ``min_gap`` threshold keeps the leveler quiet while the array is
healthy — steering only pays when the risk spread is real.

Fully deterministic: shard and address ties resolve to the lowest
index (numpy ``argmax``/``argmin`` take the first extremum), and the
plan is a pure function of ``(map state, distribution, risks, live)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .remap import BalancedDecoder


@dataclass(frozen=True)
class LevelerPolicy:
    """Knobs bounding one rebalance round."""

    #: Maximum hot/cold swaps per round (each swap = 2 migration writes).
    budget: int = 8
    #: Minimum donor-receiver risk spread before steering engages.
    min_gap: float = 0.02

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError("leveler budget cannot be negative")
        if self.min_gap < 0:
            raise ConfigurationError("leveler min_gap cannot be negative")


def plan_swaps(decoder: BalancedDecoder, probabilities: np.ndarray,
               risks: np.ndarray, live: Sequence[int],
               policy: LevelerPolicy) -> List[Tuple[int, int]]:
    """Plan and apply up to ``policy.budget`` hot/cold swaps.

    Mutates *decoder* in place (each accepted swap is applied before the
    next is planned, so one round never moves the same address twice)
    and returns the applied ``(hot address, cold address)`` pairs.
    """
    if len(risks) < decoder.num_shards:
        raise ConfigurationError(
            f"risk vector covers {len(risks)} shards, decoder has "
            f"{decoder.num_shards}")
    probabilities = np.asarray(probabilities, dtype=np.float64)
    swaps: List[Tuple[int, int]] = []
    live_ids = np.asarray(sorted(live), dtype=np.int64)
    if live_ids.size < 2:
        return swaps
    masses = decoder.shard_masses(probabilities)
    for _ in range(policy.budget):
        live_risks = np.asarray(risks, dtype=np.float64)[live_ids]
        donor = int(live_ids[int(np.argmax(live_risks))])
        receiver = int(live_ids[int(np.argmin(live_risks))])
        if donor == receiver:
            break
        if float(live_risks.max() - live_risks.min()) < policy.min_gap:
            break
        owners = decoder.shard_of(
            np.arange(decoder.global_blocks, dtype=np.int64))
        donor_owned = np.nonzero(owners == donor)[0]
        receiver_owned = np.nonzero(owners == receiver)[0]
        if donor_owned.size == 0 or receiver_owned.size == 0:
            break
        cold = int(receiver_owned[int(np.argmin(
            probabilities[receiver_owned]))])
        # Never let a swap invert the traffic ordering: steering should
        # converge toward equal forward wear, not slosh the hot set back
        # and forth between the extremes.  A head-heavy distribution can
        # make the single hottest address overshoot the gap (its mass
        # alone exceeds the shard imbalance), so pick the hottest
        # address that still *fits* rather than giving up.
        gap_mass = (masses[donor] - masses[receiver]) / 2.0
        donor_p = probabilities[donor_owned]
        eligible = donor_owned[
            (donor_p > probabilities[cold])
            & (donor_p - probabilities[cold] <= gap_mass)]
        if eligible.size == 0:
            break
        hot = int(eligible[int(np.argmax(probabilities[eligible]))])
        moved = float(probabilities[hot] - probabilities[cold])
        decoder.swap(hot, cold)
        masses[donor] -= moved
        masses[receiver] += moved
        swaps.append((hot, cold))
    return swaps


__all__ = ["LevelerPolicy", "plan_swaps"]
