"""Reliability-aware elastic array management (the PS-WL direction).

``repro.balance`` is the control plane that sits above the data planes
of :mod:`repro.array` (batch lifetime simulation) and :mod:`repro.serve`
(live traffic): it watches per-shard wear/failure telemetry, estimates
each shard's failure probability online, and *acts* on the estimate —
steering hot addresses away from near-death shards and growing the
array at runtime.  Three cooperating pieces:

* :class:`~repro.balance.health.ShardHealthModel` — deterministic,
  wall-clock-free per-shard failure-probability estimates from
  wear-headroom plus an EWMA of the recent failure rate (seeded, so
  results are byte-identical at any ``--jobs``);
* :class:`~repro.balance.remap.BalancedDecoder` — the elastic address
  map: wraps an :class:`~repro.array.decoder.InterleavedDecoder` with a
  remap table supporting bounded hot/cold swaps, consistent-hash shard
  addition (adding shard ``N+1`` moves only the ~``1/(N+1)`` of
  addresses that hash to it), and the degraded-mode re-home rule;
* :mod:`~repro.balance.leveler` — the bounded-budget planner that turns
  risk estimates into concrete swaps each rebalance round.

Every move the subsystem makes is charged as migration writes through
the existing write-amplification accounting (``balance.*`` counters in
the merged telemetry snapshot) — steering is never free.
"""

from __future__ import annotations

from .health import HealthConfig, ShardHealthModel
from .leveler import LevelerPolicy, plan_swaps
from .remap import BalancedDecoder, RemapTable, movers_mask

__all__ = [
    "HealthConfig", "ShardHealthModel",
    "LevelerPolicy", "plan_swaps",
    "BalancedDecoder", "RemapTable", "movers_mask",
]
