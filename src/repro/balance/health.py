"""Online per-shard reliability estimation.

:class:`ShardHealthModel` turns the wear/failure telemetry each shard
round already produces into a per-shard **failure-probability
estimate** the leveler can act on.  The estimate combines two signals:

* **wear headroom** — serviced writes against the shard's nominal
  endurance budget (``device blocks x mean endurance``): a shard that
  has burned most of its budget is near death even if nothing has
  failed yet;
* **recent failure rate** — an EWMA of the *increase* in the shard's
  failed-capacity fraction between observations: a shard whose failures
  are accelerating is riskier than its wear alone suggests.

Everything is deterministic and wall-clock-free: observations arrive on
the simulation's write clocks, and the only randomness is a seeded,
vanishingly small per-shard tie-break term (so rankings are total and
reproducible at any ``--jobs``).  Risk estimates publish through the
standard telemetry facade — per-shard risk as ``last``-mode gauges and
the array-wide worst headroom as a ``min``-mode gauge, the merge
policies added for exactly this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng
from ..telemetry import TelemetrySession


@dataclass(frozen=True)
class HealthConfig:
    """Weights of the risk estimate.

    The default leans on wear headroom — with Start-Gap + reviver in
    front, failed capacity stays near zero until a shard is already
    dying, so wear is the early-warning signal and the failure-rate
    term sharpens the ranking near end of life.
    """

    wear_weight: float = 0.7
    failure_weight: float = 0.3
    #: EWMA smoothing of the failure-rate increments (1.0 = no memory).
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.wear_weight < 0 or self.failure_weight < 0:
            raise ConfigurationError("risk weights must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")


class ShardHealthModel:
    """Deterministic per-shard failure-probability estimates."""

    def __init__(self, num_shards: int, endurance_budget: float,
                 config: Optional[HealthConfig] = None,
                 seed: SeedLike = None) -> None:
        if num_shards < 1:
            raise ConfigurationError("health model needs >= 1 shard")
        if endurance_budget <= 0:
            raise ConfigurationError(
                f"endurance_budget must be positive, got "
                f"{endurance_budget}")
        self.config = config if config is not None else HealthConfig()
        self.endurance_budget = float(endurance_budget)
        self.seed = seed
        self._wear: List[float] = []
        self._failed: List[float] = []
        self._rate: List[float] = []
        self._dead: List[bool] = []
        self._jitter: List[float] = []
        for _ in range(num_shards):
            self.add_shard()

    @property
    def num_shards(self) -> int:
        return len(self._wear)

    def add_shard(self) -> int:
        """Track one more shard (fresh: zero wear, zero failures)."""
        shard = len(self._wear)
        self._wear.append(0.0)
        self._failed.append(0.0)
        self._rate.append(0.0)
        self._dead.append(False)
        # A seeded, vanishingly small per-shard term: orders of magnitude
        # below any real signal, it only breaks exact risk ties so the
        # ranking is total and reproducible.
        rng = derive_rng(self.seed, f"balance-health-{shard}")
        self._jitter.append(float(rng.random()) * 1e-12)
        return shard

    # ---------------------------------------------------------- observations

    def observe(self, shard: int, writes: float, failed_fraction: float,
                dead: bool = False) -> None:
        """Fold in one telemetry reading for *shard*.

        *writes* is the shard's cumulative serviced write count,
        *failed_fraction* its cumulative failed-capacity fraction; both
        are monotone over a shard's life, so re-observing an old reading
        is harmless (the EWMA sees a zero increment).
        """
        self._check(shard)
        if writes < 0 or failed_fraction < 0:
            raise ConfigurationError(
                "health observations must be non-negative")
        self._wear[shard] = min(1.0, float(writes) / self.endurance_budget)
        increment = max(0.0, float(failed_fraction) - self._failed[shard])
        alpha = self.config.ewma_alpha
        self._rate[shard] = (alpha * increment
                             + (1.0 - alpha) * self._rate[shard])
        self._failed[shard] = max(self._failed[shard],
                                  float(failed_fraction))
        if dead:
            self._dead[shard] = True

    # ------------------------------------------------------------- estimates

    def headroom(self, shard: int) -> float:
        """Remaining endurance fraction (0 for a dead shard)."""
        self._check(shard)
        if self._dead[shard]:
            return 0.0
        return max(0.0, 1.0 - self._wear[shard])

    def risk(self, shard: int) -> float:
        """Failure-probability estimate in ``[0, 1]`` (1 once dead)."""
        self._check(shard)
        if self._dead[shard]:
            return 1.0
        cfg = self.config
        raw = (cfg.wear_weight * self._wear[shard]
               + cfg.failure_weight * (self._failed[shard]
                                       + self._rate[shard]))
        return min(1.0, raw + self._jitter[shard])

    def risks(self) -> np.ndarray:
        """Every shard's risk as one vector (index = shard id)."""
        return np.array([self.risk(i) for i in range(self.num_shards)],
                        dtype=np.float64)

    def publish(self, session: TelemetrySession) -> None:
        """Write the current estimates through the telemetry facade."""
        live_headrooms = [self.headroom(i) for i in range(self.num_shards)
                          if not self._dead[i]]
        # A fully-dead array has no headroom left, not "no reading".
        session.set_gauge("balance.headroom",
                          min(live_headrooms) if live_headrooms else 0.0,
                          mode="min")
        for i in range(self.num_shards):
            session.set_gauge(f"balance.s{i}.risk", self.risk(i),
                              mode="last")

    def _check(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.num_shards})")


__all__ = ["HealthConfig", "ShardHealthModel"]
