"""The exception interface between the memory device and the OS.

The paper's constraint: the device may only talk to the OS through the
*existing* error-reporting channel — an access exception on a software
request.  The OS's standard handling retires the page and (for writes)
redirects the write to an alternative location.  :class:`FaultReporter`
models this channel and keeps an event log so experiments can count how
often the OS was interrupted (WL-Reviver's claim: once per ~60 failures,
versus once per failure for naive designs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..errors import AddressError, ProtocolError
from .allocator import PagePool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.session import TelemetrySession


@dataclass(frozen=True)
class FaultEvent:
    """One access error reported to the OS."""

    #: Software write count at which the report happened.
    at_write: int
    #: PA whose access was reported as failed.
    pa: int
    #: Physical page the OS retired in response.
    page_id: int
    #: True when the access had actually succeeded and was only reported to
    #: obtain spare space (WL-Reviver's victimized write, Section III-A).
    victimized: bool


class FaultReporter:
    """Routes device exceptions to the OS page pool and logs them."""

    def __init__(self, pool: PagePool) -> None:
        self.pool = pool
        self.events: List[FaultEvent] = []
        #: Telemetry hook; attach via repro.telemetry only.
        self.telem: Optional["TelemetrySession"] = None

    def report(self, pa: int, at_write: int,
               victimized: bool = False) -> List[int]:
        """Report an access error at *pa*; the OS retires the page.

        Returns the PAs of the retired page — the implicitly reserved
        virtual space the caller (WL-Reviver) may claim.

        Raises :class:`~repro.errors.AddressError` for a PA outside the
        paged software space and :class:`~repro.errors.ProtocolError` for
        a page the OS already retired (it would never access such a page
        again, so a report against it is a device-side protocol bug, not
        an OS event).  Failed reports log no event and leave the pool
        untouched — victimization accounting only ever counts reports the
        OS actually acted on.
        """
        if not self.pool.pa_in_software_space(pa):
            raise AddressError(f"PA {pa} outside the paged software space")
        page_id = self.pool.page_of_pa(pa)
        if not self.pool.is_usable(page_id):
            raise ProtocolError(
                f"access error reported for PA {pa} on page {page_id}, "
                f"which the OS already retired")
        pas = self.pool.retire(page_id)
        self.events.append(FaultEvent(at_write=at_write, pa=pa,
                                      page_id=page_id, victimized=victimized))
        if self.telem is not None:
            self.telem.emit("page-retire", page=page_id, pa=pa,
                            at_write=at_write, victimized=victimized)
        return pas

    # -------------------------------------------------------------- reporting

    @property
    def report_count(self) -> int:
        """Total OS interruptions."""
        return len(self.events)

    @property
    def victimized_count(self) -> int:
        """Reports that were victimized healthy writes."""
        return sum(1 for e in self.events if e.victimized)

    def last_event(self) -> Optional[FaultEvent]:
        """Most recent report, if any."""
        return self.events[-1] if self.events else None
