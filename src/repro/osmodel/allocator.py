"""The OS page pool: virtual-to-physical page mapping and retirement.

Software (the trace) addresses a fixed *virtual* block space.  The pool maps
each virtual page onto a physical page of the PA space exposed by the
wear-leveling scheme.  Initially the mapping is the identity over all
complete pages (wear-leveling papers assume the whole chip backs software
memory).

When the memory device reports an access error, the OS retires the physical
page.  The virtual pages living there must go somewhere: real systems would
use a free frame, but at this point none exists (memory started full), so
the OS consolidates — the evicted virtual page is remapped onto another,
still-usable physical page chosen uniformly at random (seeded).  Two virtual
pages sharing a physical frame models the capacity pressure of a shrinking
chip; the *usable-space* metrics the paper reports depend only on how many
physical pages remain usable, not on the sharing pattern.

A logical space whose size is not a whole number of pages (Start-Gap exposes
``device_blocks - 1`` PAs) leaves a partial tail page that is never given to
software; those few PAs simply participate in wear-leveling rotation while
holding no data.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import AddressError, CapacityExhaustedError
from ..rng import SeedLike, derive_rng
from .page import PageInfo, PageStatus


class PagePool:
    """Virtual-to-physical page mapping over a logical PA space.

    ``utilization`` sets how much of the paged space the software working
    set occupies at boot.  With 1.0 (default, the paper's assumption) every
    physical page backs a virtual page and a retirement forces
    consolidation; below 1.0 the remainder forms a free-frame list that
    retirements consume first, which keeps data-consistency accounting
    exact for the tests that need it.

    ``base_pa`` offsets the software space inside the PA range: the pool's
    pages cover ``[base_pa, base_pa + logical_blocks)`` (schemes that park
    software memory behind a reserved prefix expose such a window).  It
    must be page-aligned; page ids remain 0-based relative to the window.
    """

    def __init__(self, logical_blocks: int, blocks_per_page: int = 64,
                 seed: SeedLike = None, utilization: float = 1.0,
                 base_pa: int = 0) -> None:
        self.logical_blocks = logical_blocks
        self.blocks_per_page = blocks_per_page
        if base_pa < 0 or base_pa % blocks_per_page:
            raise AddressError("base_pa must be a non-negative multiple of "
                               "blocks_per_page")
        self.base_pa = base_pa
        self.num_pages = logical_blocks // blocks_per_page
        if self.num_pages == 0:
            raise AddressError("logical space smaller than one page")
        if not 0.0 < utilization <= 1.0:
            raise AddressError("utilization must be in (0, 1]")
        self._rng = derive_rng(seed, "os-pagepool")
        self.num_virtual_pages = max(1, int(self.num_pages * utilization))
        self.pages: List[PageInfo] = [
            PageInfo(page_id=i,
                     virtual_pages=[i] if i < self.num_virtual_pages else [])
            for i in range(self.num_pages)]
        #: virtual page -> physical page (identity at boot).
        self._virt_to_phys = np.arange(self.num_virtual_pages, dtype=np.int64)
        self._usable_count = self.num_pages
        #: physical pages still usable, as a sorted-ish list for sampling.
        self._usable_list: List[int] = list(range(self.num_pages))
        self._usable_pos: Dict[int, int] = {p: p for p in range(self.num_pages)}
        #: usable pages currently backing no virtual page (free frames).
        self._free_frames: List[int] = list(
            range(self.num_virtual_pages, self.num_pages))
        #: ``(vpage, old_phys, new_phys)`` moves of the latest retirement,
        #: for the controller's optional OS-side data copy.
        self.last_moves: List[tuple] = []

    # ------------------------------------------------------------ translation

    @property
    def virtual_blocks(self) -> int:
        """Size of the virtual block space traces may address."""
        return self.num_virtual_pages * self.blocks_per_page

    def translate(self, virtual_block: int) -> int:
        """Map a virtual block address to a PA."""
        vpage, offset = divmod(virtual_block, self.blocks_per_page)
        if not 0 <= vpage < self.num_virtual_pages:
            raise AddressError(f"virtual block {virtual_block} out of range")
        return (self.base_pa
                + int(self._virt_to_phys[vpage]) * self.blocks_per_page
                + offset)

    def translate_many(self, virtual_blocks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`translate`."""
        virtual_blocks = np.asarray(virtual_blocks, dtype=np.int64)
        vpages = virtual_blocks // self.blocks_per_page
        offsets = virtual_blocks % self.blocks_per_page
        return (self.base_pa
                + self._virt_to_phys[vpages] * self.blocks_per_page
                + offsets)

    def page_of_pa(self, pa: int) -> int:
        """Physical page containing *pa*."""
        page = (pa - self.base_pa) // self.blocks_per_page
        if not 0 <= page < self.num_pages:
            raise AddressError(f"PA {pa} outside the paged software space")
        return page

    def offset_in_page(self, pa: int) -> int:
        """Index of *pa* within its physical page."""
        self.page_of_pa(pa)  # bounds check
        return (pa - self.base_pa) % self.blocks_per_page

    def page_base(self, page_id: int) -> int:
        """First PA of physical page *page_id* (``base_pa`` included)."""
        if not 0 <= page_id < self.num_pages:
            raise AddressError(f"page {page_id} out of range")
        return self.base_pa + page_id * self.blocks_per_page

    def pas_of_page(self, page_id: int) -> range:
        """PAs of physical page *page_id*, ascending."""
        base = self.page_base(page_id)
        return range(base, base + self.blocks_per_page)

    def virtual_block_of(self, vpage: int, offset: int) -> int:
        """Virtual block address of (*vpage*, *offset*)."""
        if not 0 <= offset < self.blocks_per_page:
            raise AddressError(f"offset {offset} out of range")
        return vpage * self.blocks_per_page + offset

    def virtual_blocks_of_page(self, vpage: int) -> range:
        """Virtual block addresses of virtual page *vpage*, ascending."""
        base = self.virtual_block_of(vpage, 0)
        return range(base, base + self.blocks_per_page)

    def usable_pas(self) -> np.ndarray:
        """PAs of every usable physical page (vectorized, ascending)."""
        pages = np.sort(np.asarray(self._usable_list, dtype=np.int64))
        offsets = np.arange(self.blocks_per_page, dtype=np.int64)
        pas = (self.base_pa + pages[:, None] * self.blocks_per_page + offsets)
        return pas.reshape(-1)

    def pa_in_software_space(self, pa: int) -> bool:
        """Whether *pa* lies inside a complete (pageable) page."""
        span = self.num_pages * self.blocks_per_page
        return self.base_pa <= pa < self.base_pa + span

    # -------------------------------------------------------------- retirement

    def retire(self, page_id: int) -> List[int]:
        """Retire physical *page_id*; rehome its virtual pages.

        Returns the list of PAs in the retired page (the reserved virtual
        space WL-Reviver will claim).  Idempotent-safe: retiring an already
        retired page raises, because the OS would never access it again.
        """
        info = self.pages[page_id]
        if info.status is PageStatus.RETIRED:
            raise AddressError(f"page {page_id} is already retired")
        if self._usable_count <= 1:
            # Retiring the last page would leave the software nothing:
            # genuine end of chip life.  State is left untouched so the
            # caller sees a consistent (dead) system.
            raise CapacityExhaustedError("no usable pages would remain")
        info.status = PageStatus.RETIRED
        self._remove_usable(page_id)
        if page_id in set(self._free_frames):
            self._free_frames.remove(page_id)
        self.last_moves = []
        for vpage in info.virtual_pages:
            if self._free_frames:
                new_phys = self._free_frames.pop()
            else:
                new_phys = self._sample_usable()
            # When no free frame is left the OS consolidates: the target
            # frame is shared and its resident data gets overwritten.
            shared = bool(self.pages[new_phys].virtual_pages)
            self._virt_to_phys[vpage] = new_phys
            self.pages[new_phys].virtual_pages.append(vpage)
            self.last_moves.append((vpage, page_id, new_phys, shared))
        info.virtual_pages = []
        base = self.base_pa + page_id * self.blocks_per_page
        return list(range(base, base + self.blocks_per_page))

    def relocate(self, page_id: int) -> List[tuple]:
        """Move the virtual pages off *page_id* without retiring it.

        Models the OS rehoming an application's page after a write error
        when it does not quarantine the frame (the no-recovery baseline:
        usable space is accounted at block granularity, but the hot data
        must still land somewhere fresh to keep being written).  Targets
        are free frames while they last, then random other usable frames
        (consolidation).  Returns ``(vpage, old_phys, new_phys, shared)``
        moves like :meth:`retire`.
        """
        info = self.pages[page_id]
        if info.status is PageStatus.RETIRED:
            raise AddressError(f"page {page_id} is retired")
        self.last_moves = []
        for vpage in list(info.virtual_pages):
            if self._free_frames:
                new_phys = self._free_frames.pop()
            else:
                new_phys = self._sample_usable()
                if new_phys == page_id and self._usable_count > 1:
                    new_phys = self._sample_usable()
                if new_phys == page_id:
                    continue  # nowhere else to go
            shared = bool(self.pages[new_phys].virtual_pages)
            info.virtual_pages.remove(vpage)
            self._virt_to_phys[vpage] = new_phys
            self.pages[new_phys].virtual_pages.append(vpage)
            self.last_moves.append((vpage, page_id, new_phys, shared))
        return self.last_moves

    def _remove_usable(self, page_id: int) -> None:
        pos = self._usable_pos.pop(page_id)
        last = self._usable_list.pop()
        if last != page_id:
            self._usable_list[pos] = last
            self._usable_pos[last] = pos
        self._usable_count -= 1

    def _sample_usable(self) -> int:
        index = int(self._rng.integers(0, self._usable_count))
        return self._usable_list[index]

    # -------------------------------------------------------------- reporting

    def is_usable(self, page_id: int) -> bool:
        """Whether *page_id* is still in the allocation pool."""
        return self.pages[page_id].is_usable

    @property
    def usable_pages(self) -> int:
        """Count of physical pages still usable by software."""
        return self._usable_count

    @property
    def retired_pages(self) -> int:
        """Count of retired physical pages."""
        return self.num_pages - self._usable_count

    @property
    def usable_blocks(self) -> int:
        """Block count of the still-usable physical pages."""
        return self._usable_count * self.blocks_per_page

    @property
    def retired_blocks(self) -> int:
        """Block count of the retired physical pages."""
        return self.retired_pages * self.blocks_per_page

    def usable_fraction(self) -> float:
        """Fraction of the paged space still usable by software."""
        return self._usable_count / self.num_pages

    def record_write(self, pa: int) -> None:
        """Statistics hook: account a software write landing at *pa*."""
        self.pages[self.page_of_pa(pa)].writes += 1
