"""Operating-system model.

WL-Reviver's core bet is that it needs *no new OS support*: the only OS
behaviour it relies on is the standard one — when the memory device reports
an access error, the OS retires the page containing the error from its
allocation pool and never touches it again (HP Memory Quarantine style,
Section III-A).  This package models exactly that behaviour:

* :class:`~repro.osmodel.page.PageInfo` / page states;
* :class:`~repro.osmodel.allocator.PagePool` — the OS's view of physical
  pages, virtual-to-physical page mapping, and retirement handling
  (including redirecting a failed write to an alternative page, the paper's
  recovery path for victimized writes);
* :class:`~repro.osmodel.faults.FaultReporter` — the exception interface
  between the memory controller and the OS, with an event log.
"""

from .page import PageInfo, PageStatus
from .allocator import PagePool
from .faults import FaultEvent, FaultReporter

__all__ = ["PageInfo", "PageStatus", "PagePool", "FaultEvent", "FaultReporter"]
