"""OS page bookkeeping types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class PageStatus(enum.IntEnum):
    """Lifecycle of a physical page from the OS's perspective."""

    #: In the allocation pool; software data may live here.
    USABLE = 0
    #: Excluded after an access exception; never accessed by software again.
    #: Its PAs implicitly become WL-Reviver's reserved virtual space.
    RETIRED = 1


@dataclass
class PageInfo:
    """Mutable state of one physical page."""

    page_id: int
    status: PageStatus = PageStatus.USABLE
    #: Virtual pages currently mapped onto this physical page.  More than
    #: one virtual page can share a physical page late in life, when the OS
    #: has no spare frames left and must consolidate.
    virtual_pages: List[int] = field(default_factory=list)
    #: Software write count observed on this page (statistics only).
    writes: int = 0

    @property
    def is_usable(self) -> bool:
        """Whether the page is still in the allocation pool."""
        return self.status is PageStatus.USABLE
