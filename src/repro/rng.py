"""Deterministic random-number plumbing.

Every stochastic component of the simulator (cell lifetimes, address
randomizers, Security Refresh keys, synthetic traces) takes an explicit seed
or ``numpy.random.Generator`` so experiments are reproducible run-to-run.
This module provides the helpers that derive independent child streams from a
single experiment seed, so that e.g. changing the trace seed does not perturb
the endurance draws.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Fixed default seed used whenever a caller passes ``None``.  Experiments in
#: the paper are averages over deterministic hardware, so a fixed default
#: keeps casual runs reproducible; pass explicit seeds for replications.
DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` maps to :data:`DEFAULT_SEED`; an existing generator is passed
    through unchanged so callers can share a stream when they mean to.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, stream: str) -> np.random.Generator:
    """Derive an independent generator for a named *stream*.

    The stream name is hashed into the seed material, so
    ``derive_rng(7, "trace")`` and ``derive_rng(7, "endurance")`` are
    statistically independent but each fully determined by ``7``.
    """
    if isinstance(seed, np.random.Generator):
        # Child of a live generator: spawn via its bit generator state.
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    if seed is None:
        seed = DEFAULT_SEED
    material = np.random.SeedSequence([seed, _stream_token(stream)])
    return np.random.default_rng(material)


def _stream_token(stream: str) -> int:
    """Stable 63-bit token for a stream name (FNV-1a)."""
    acc = 0xCBF29CE484222325
    for byte in stream.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF


def spawn_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from *rng* for handing to a subcomponent."""
    return int(rng.integers(0, 2**63 - 1))


def optional_int_seed(seed: SeedLike) -> Optional[int]:
    """Normalize a seed-like value to an ``int`` when possible."""
    if seed is None:
        return DEFAULT_SEED
    if isinstance(seed, np.random.Generator):
        return None
    return int(seed)
