"""Counter, Gauge, and Histogram primitives in a process-local registry.

The simulator's telemetry needs are modest but strict:

* **zero dependencies** — the primitives are plain Python over ints and
  floats, importable everywhere without pulling in the simulation stack;
* **zero cost when disabled** — a :class:`Registry` constructed with
  ``enabled=False`` hands out shared *null* metrics whose mutators are
  empty methods, so instrumentation sites can keep a metric reference
  without ever branching on a flag (and the hot paths guard on the
  ``telem is None`` hook instead, paying nothing at all);
* **mergeable** — experiment cells run in worker processes, so every
  metric must aggregate across processes.  Snapshots merge with
  :func:`merge_snapshots`: counters and histogram buckets add, gauges
  combine under their declared policy (``max`` by default, ``min`` for
  headroom-style minima, ``last`` for single-writer point-in-time
  values).  ``max``/``min`` merges are associative and commutative, so
  the aggregate is independent of worker scheduling — the same guarantee
  the parallel harness makes for results.  ``last`` is associative but
  takes the right-hand operand, so it is only scheduling-independent
  when a single writer owns the gauge (the intended use).

Naming convention: dotted lowercase paths (``events.page-retire``,
``phase.software-apply.seconds``).  The registry rejects re-registering a
name as a different metric type — a typo'd kind would otherwise corrupt
both series silently.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds-ish scale; callers pass
#: their own bounds for anything with different units).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: Default SLO quantiles reported for latency-style histograms.
SLO_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Gauge merge policies: how two snapshots of the same gauge combine.
GAUGE_MODES: Tuple[str, ...] = ("max", "min", "last")


class Counter:
    """A monotonically non-decreasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (>= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A point-in-time value (last write wins within a process).

    Across snapshots the gauge combines under its *mode*: ``max`` (the
    historical default — high-water marks), ``min`` (low-water marks,
    e.g. the worst wear-headroom across shards), or ``last`` (the
    incoming snapshot wins — single-writer point-in-time values).  The
    default ``max`` mode snapshots as a bare number, exactly as before
    the modes existed; ``min``/``last`` gauges snapshot as
    ``{"value": ..., "mode": ...}`` so merges know the policy.
    """

    __slots__ = ("name", "value", "mode")

    def __init__(self, name: str, mode: str = "max") -> None:
        if mode not in GAUGE_MODES:
            raise ConfigurationError(
                f"gauge {name!r}: unknown merge mode {mode!r}; "
                f"choose from {GAUGE_MODES}")
        self.name = name
        self.mode = mode
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def combine(self, value: Number) -> None:
        """Fold one snapshot *value* in under this gauge's merge mode."""
        if self.mode == "max":
            self.value = max(self.value, value)
        elif self.mode == "min":
            self.value = min(self.value, value)
        else:
            self.value = value

    def snapshot(self) -> object:
        if self.mode == "max":
            return self.value
        return {"value": self.value, "mode": self.mode}


class Histogram:
    """Fixed-bound bucketed distribution of observed values.

    ``bounds`` are strictly increasing upper bounds; an implicit overflow
    bucket catches everything above the last bound, so ``counts`` has
    ``len(bounds) + 1`` entries and :meth:`cumulative` is monotone with
    total count as its last element.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds_t = tuple(float(b) for b in bounds)
        if not bounds_t:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds_t, bounds_t[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds_t
        self.counts: List[int] = [0] * (len(bounds_t) + 1)
        self.total = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> List[int]:
        """Running totals per bucket; non-decreasing, ends at :attr:`total`."""
        out: List[int] = []
        acc = 0
        for count in self.counts:
            acc += count
            out.append(acc)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile of the observed distribution.

        Delegates to :func:`histogram_quantile` over this histogram's
        snapshot — same estimator live or from a merged snapshot.
        """
        return histogram_quantile(self.snapshot(), q)

    def snapshot(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "sum": self.sum}


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    def inc(self, amount: Number = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    """Shared no-op gauge handed out by disabled registries."""

    def set(self, value: Number) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by disabled registries."""

    def observe(self, value: Number) -> None:  # noqa: D102 - no-op
        pass


NULL_COUNTER = _NullCounter("<disabled>")
NULL_GAUGE = _NullGauge("<disabled>")
NULL_HISTOGRAM = _NullHistogram("<disabled>")


class Registry:
    """Process-local, name-addressed home of every metric.

    One ``enabled`` flag governs the whole registry: when False, every
    accessor returns the shared null metric of the right type, so code
    written against the registry compiles down to attribute lookups plus
    empty method calls — no branches at the instrumentation sites.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- accessors

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        if not self.enabled:
            return NULL_COUNTER
        found = self._counters.get(name)
        if found is None:
            self._check_free(name, self._counters)
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str, mode: Optional[str] = None) -> Gauge:
        """The gauge registered under *name* (created on first use).

        *mode* fixes the merge policy on first use (default ``max``).
        Passing a mode for an existing gauge asserts it: a mismatch is a
        configuration error — the same gauge cannot merge two ways.
        """
        if not self.enabled:
            return NULL_GAUGE
        found = self._gauges.get(name)
        if found is None:
            self._check_free(name, self._gauges)
            found = self._gauges[name] = Gauge(
                name, mode if mode is not None else "max")
        elif mode is not None and found.mode != mode:
            raise ConfigurationError(
                f"gauge {name!r} is registered with merge mode "
                f"{found.mode!r}, not {mode!r}")
        return found

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram under *name* (created on first use with *bounds*)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        found = self._histograms.get(name)
        if found is None:
            self._check_free(name, self._histograms)
            found = self._histograms[name] = Histogram(name, bounds)
        return found

    def _check_free(self, name: str, owner: Mapping[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not owner and name in family:
                raise ConfigurationError(
                    f"metric name {name!r} is already registered as a "
                    f"different type")

    # ------------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready dump of every registered metric."""
        return {
            "counters": {n: c.snapshot() for n, c in
                         sorted(self._counters.items())},
            "gauges": {n: g.snapshot() for n, g in
                       sorted(self._gauges.items())},
            "histograms": {n: h.snapshot() for n, h in
                           sorted(self._histograms.items())},
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(_as_number(value))
        for name, value in snapshot.get("gauges", {}).items():
            number, mode = gauge_payload(name, value)
            existing = self._gauges.get(name)
            if existing is None:
                self.gauge(name, mode).set(number)
            else:
                if existing.mode != mode:
                    raise ConfigurationError(
                        f"gauge {name!r} merge mode differs between "
                        f"snapshots: {existing.mode!r} vs {mode!r}")
                existing.combine(number)
        for name, data in snapshot.get("histograms", {}).items():
            if not isinstance(data, Mapping):
                raise ConfigurationError(
                    f"histogram snapshot {name!r} is not a mapping")
            bounds = [float(b) for b in _as_list(data, "bounds")]
            histogram = self.histogram(name, bounds)
            if list(histogram.bounds) != bounds:
                raise ConfigurationError(
                    f"histogram {name!r} bounds differ between snapshots")
            counts = [int(c) for c in _as_list(data, "counts")]
            if len(counts) != len(histogram.counts):
                raise ConfigurationError(
                    f"histogram {name!r} bucket count differs between "
                    f"snapshots")
            for i, count in enumerate(counts):
                histogram.counts[i] += count
            histogram.total += int(_as_number(data["total"]))
            histogram.sum += _as_number(data["sum"])


def merge_snapshots(a: Mapping[str, Mapping[str, object]],
                    b: Mapping[str, Mapping[str, object]],
                    ) -> Dict[str, Dict[str, object]]:
    """Pure merge of two snapshots; associative.

    Counters and histogram buckets add; gauges combine under their
    declared merge policy (``max`` — the default for bare-number gauge
    snapshots — ``min``, or ``last``).  ``max``/``min`` are commutative,
    so those aggregates are independent of worker completion order;
    ``last`` takes *b*'s value and is only order-independent when a
    single writer owns the gauge.
    """
    merged = Registry(enabled=True)
    merged.merge(a)
    merged.merge(b)
    return merged.snapshot()


def gauge_payload(name: str, value: object) -> Tuple[Number, str]:
    """``(value, mode)`` of one gauge's snapshot entry.

    Accepts both forms: a bare number (the historical ``max``-mode
    snapshot) and the ``{"value": ..., "mode": ...}`` mapping that
    ``min``/``last`` gauges emit.
    """
    if isinstance(value, Mapping):
        mode = value.get("mode")
        if not isinstance(mode, str) or mode not in GAUGE_MODES:
            raise ConfigurationError(
                f"gauge snapshot {name!r} has bad merge mode {mode!r}")
        return _as_number(value.get("value")), mode
    return _as_number(value), "max"


def gauge_value(value: object) -> Number:
    """The numeric reading of one gauge snapshot entry, either form."""
    return gauge_payload("<gauge>", value)[0]


def histogram_quantile(data: Mapping[str, object], q: float) -> float:
    """Estimate the *q*-quantile of one histogram snapshot.

    The estimator is the standard bucketed one (what Prometheus calls
    ``histogram_quantile``): find the bucket holding the ``q * total``-th
    observation in cumulative order and interpolate linearly inside it,
    taking ``0.0`` (or the first bound, when negative) as the lower edge
    of the first bucket.  The open overflow bucket has no upper edge, so
    quantiles landing there clamp to the last bound — callers wanting
    exact tails must size their bounds past them.

    Deterministic and snapshot-native: merged snapshots (bucket counts
    added across shards/workers) yield exactly the quantiles of the
    union of observations, up to the shared bucket resolution.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    bounds = [float(b) for b in _as_list(data, "bounds")]
    counts = [int(c) for c in _as_list(data, "counts")]
    if len(counts) != len(bounds) + 1:
        raise ConfigurationError(
            "histogram snapshot needs len(bounds) + 1 bucket counts")
    total = sum(counts)
    if total <= 0:
        raise ConfigurationError("cannot take a quantile of an empty "
                                 "histogram")
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):
                return bounds[-1]  # open overflow bucket: clamp
            hi = bounds[i]
            lo = min(0.0, bounds[0]) if i == 0 else bounds[i - 1]
            fraction = max(0.0, rank - cumulative) / count
            return lo + fraction * (hi - lo)
        cumulative += count
    return bounds[-1]  # pragma: no cover - rank <= total always lands


def quantile_label(q: float) -> str:
    """Canonical ``pNN`` label for a quantile (``0.99`` -> ``"p99"``)."""
    text = f"{q * 100:.10g}"
    return f"p{text}"


def snapshot_quantiles(snapshot: Mapping[str, Mapping[str, object]],
                       quantiles: Sequence[float] = SLO_QUANTILES,
                       ) -> Dict[str, Dict[str, float]]:
    """Per-histogram quantile table of a registry snapshot.

    Returns ``{histogram name: {"p50": ..., "p95": ..., "p99": ...}}``
    for every non-empty histogram in *snapshot* (empty ones are skipped —
    they have no quantiles).  Works on single and merged snapshots alike.
    """
    table: Dict[str, Dict[str, float]] = {}
    for name, data in snapshot.get("histograms", {}).items():
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"histogram snapshot {name!r} is not a mapping")
        if int(_as_number(data["total"])) <= 0:
            continue
        table[name] = {quantile_label(q): histogram_quantile(data, q)
                       for q in quantiles}
    return table


def _as_number(value: object) -> Number:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"expected a number in snapshot, got "
                                 f"{value!r}")
    return value


def _as_list(data: Mapping[str, object], key: str) -> Sequence[object]:
    value = data.get(key)
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ConfigurationError(f"expected a list under {key!r} in "
                                 f"histogram snapshot")
    return value


__all__ = ["Counter", "Gauge", "Histogram", "Registry", "merge_snapshots",
           "gauge_payload", "gauge_value",
           "histogram_quantile", "quantile_label", "snapshot_quantiles",
           "DEFAULT_BUCKETS", "SLO_QUANTILES", "GAUGE_MODES",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM"]
