"""The golden-trace run: one frozen, seeded, fully instrumented lifetime.

``golden_trace`` assembles a small exact-engine system (Start-Gap +
WL-Reviver), drives it through a seeded fault schedule with telemetry
attached, and returns the JSONL trace text.  Its purpose is *regression
pinning*: the byte-identical fixture under ``tests/data/`` fails loudly
on any ordering or determinism drift, so this builder must stay frozen —
it deliberately duplicates (rather than imports) the campaign's system
recipe, because the campaign is allowed to evolve and the golden run is
not.

The same function backs the chaos-smoke CI job's ``--trace-out`` (an
instrumented replay of a campaign seed whose summary becomes a build
artifact) and is a module-level, JSON-kwargs cell function, so
:class:`~repro.experiments.parallel.GridRunner` can run it in a worker —
which is how the regression test proves the trace is identical under
``--jobs > 1``.
"""

from __future__ import annotations

from ..config import ReviverConfig
from ..ecc import ECP
from ..mc import ReviverController
from ..osmodel import PagePool
from ..pcm import AddressGeometry, EnduranceModel, PCMChip
from ..sim import ExactEngine
from ..traces import hotspot_distribution
from ..wl import StartGap
from . import attach_exact
from .session import TelemetrySession
from .trace import TraceWriter

#: Format version stamped into the run-meta record; bump on any
#: deliberate vocabulary or field change (and regenerate the fixture).
TRACE_FORMAT = 1


def _golden_engine(seed: int, num_blocks: int, mean: float) -> ExactEngine:
    """The frozen golden system (do not edit without regenerating)."""
    geometry = AddressGeometry(num_blocks=num_blocks, block_bytes=64,
                               page_bytes=512)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=mean, cov=0.25,
                               max_order=8, seed=11 + seed)
    chip = PCMChip(geometry, ECP(endurance, 1), track_contents=True)
    wl = StartGap(num_blocks)
    ospool = PagePool(wl.logical_blocks, blocks_per_page=8,
                      utilization=1.0, seed=5)
    controller = ReviverController(
        chip, wl, ospool,
        reviver_config=ReviverConfig(check_invariants=False),
        copy_on_retire=True)
    trace = hotspot_distribution(ospool.virtual_blocks, 4.0, seed=6 + seed)
    return ExactEngine(controller, trace, dead_fraction=0.3,
                       sample_interval=2_000, verify=True,
                       read_fraction=0.25)


def golden_trace(seed: int = 2014, num_blocks: int = 64, mean: float = 150.0,
                 max_writes: int = 12_000) -> str:
    """Run the golden system under telemetry; return the trace text.

    Deterministic to the byte in ``seed`` and the geometry arguments: the
    trace carries no timestamps and every event is emitted from the
    seeded simulation's own ordering.
    """
    from ..faultinject.hooks import ScheduleDriver
    from ..faultinject.schedule import random_schedule

    # The campaign's horizon rule, frozen alongside the system recipe.
    horizon = max(100, min(max_writes, int(mean) * num_blocks // 16))
    schedule = random_schedule(seed, num_blocks, horizon)
    engine = _golden_engine(seed, num_blocks, mean)
    ScheduleDriver(schedule).attach_exact(engine)
    writer = TraceWriter(meta={
        "engine": "exact", "format": TRACE_FORMAT, "max_writes": max_writes,
        "mean": mean, "num_blocks": num_blocks, "seed": seed,
    })
    session = TelemetrySession(writer=writer)
    attach_exact(session, engine)
    engine.run(max_writes=max_writes)
    engine.verify_all()
    return writer.getvalue()


def golden_cell(seed: int = 2014, num_blocks: int = 64, mean: float = 150.0,
                max_writes: int = 12_000) -> str:
    """GridRunner cell wrapper around :func:`golden_trace`."""
    return golden_trace(seed=seed, num_blocks=num_blocks, mean=mean,
                        max_writes=max_writes)


__all__ = ["golden_trace", "golden_cell", "TRACE_FORMAT"]
