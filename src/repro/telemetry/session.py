"""The TelemetrySession: one object instrumented code talks to.

Instrumented classes (controllers, engines, the link table, the fault
reporter) each carry a ``telem`` attribute that is ``None`` by default —
the same discipline as the fault-injection ``inject`` hooks: a system
without telemetry pays one ``is not None`` test per instrumented event
and *nothing* on the per-write hot paths.  Only this package may attach a
session to a foreign object (the TELEM-API lint rule enforces it), which
keeps "who can observe and account the run" audit-sized.

A session bundles:

* a :class:`~repro.telemetry.metrics.Registry` — counters, gauges,
  histograms, and the per-phase wall-time profile;
* an optional :class:`~repro.telemetry.trace.TraceWriter` — every
  :meth:`emit` both bumps the ``events.<kind>`` counter and appends the
  structured record, so the trace census and the registry reconcile by
  construction.

Phase timing accumulates into two counters per phase
(``phase.<name>.seconds`` and ``phase.<name>.calls``), so profiles merge
across worker processes exactly like any other counter.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Dict, Optional, Sequence, Type

from .metrics import DEFAULT_BUCKETS, Number, Registry
from .trace import Json, TraceWriter

_PHASE_PREFIX = "phase."


class PhaseTimer:
    """Context manager adding one timed interval to a session's profile."""

    __slots__ = ("_session", "_name", "_started")

    def __init__(self, session: "TelemetrySession", name: str) -> None:
        self._session = session
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self._session.add_phase_seconds(
            self._name, time.perf_counter() - self._started)


class TelemetrySession:
    """Metrics + tracing facade attached to instrumented objects."""

    def __init__(self, registry: Optional[Registry] = None,
                 writer: Optional[TraceWriter] = None) -> None:
        self.registry = registry if registry is not None else Registry()
        self.writer = writer

    # ---------------------------------------------------------------- events

    def emit(self, kind: str, **fields: Json) -> None:
        """Record one protocol event: census counter + optional trace."""
        self.registry.counter(f"events.{kind}").inc()
        if self.writer is not None:
            self.writer.emit(kind, **fields)

    def event_count(self, kind: str) -> Number:
        """How many events of *kind* this session has recorded."""
        return self.registry.counter(f"events.{kind}").value

    # --------------------------------------------------------------- metrics

    def count(self, name: str, amount: Number = 1) -> None:
        """Bump the counter *name* by *amount*."""
        self.registry.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number,
                  mode: Optional[str] = None) -> None:
        """Set the gauge *name* to *value* (*mode* fixes its merge policy)."""
        self.registry.gauge(name, mode).set(value)

    def observe(self, name: str, value: Number,
                bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Record *value* into the histogram *name*."""
        self.registry.histogram(name, bounds).observe(value)

    # ---------------------------------------------------------------- timing

    def phase(self, name: str) -> PhaseTimer:
        """Time a named phase: ``with session.phase("software-apply"): ...``"""
        return PhaseTimer(self, name)

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        """Credit *seconds* of wall time to phase *name*."""
        self.registry.counter(f"{_PHASE_PREFIX}{name}.seconds").inc(
            max(0.0, seconds))
        self.registry.counter(f"{_PHASE_PREFIX}{name}.calls").inc()

    def profile(self) -> Dict[str, Dict[str, Number]]:
        """Per-phase ``{"seconds": ..., "calls": ...}``, by phase name."""
        phases: Dict[str, Dict[str, Number]] = {}
        for name, value in self.registry.snapshot()["counters"].items():
            if not name.startswith(_PHASE_PREFIX):
                continue
            phase_name, _, field = name[len(_PHASE_PREFIX):].rpartition(".")
            if field not in ("seconds", "calls") or not phase_name:
                continue
            phases.setdefault(phase_name, {"seconds": 0, "calls": 0})
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                phases[phase_name][field] = value
        return phases

    # ------------------------------------------------------------- finishing

    def append_profile(self) -> None:
        """Append the profile record to the trace (nondeterministic!)."""
        if self.writer is not None:
            self.writer.append_profile(
                {name: dict(stats) for name, stats in self.profile().items()})


__all__ = ["TelemetrySession", "PhaseTimer"]
