"""Structured JSONL tracing with canonical encoding and sequence numbers.

A trace is a line-per-event JSON file whose *bytes* are a deterministic
function of the simulated run: canonical encoding (sorted keys, no
whitespace), monotonic sequence numbers assigned at emission, and **no
wall-clock timestamps** — a seeded run must reproduce its trace
byte-identically on any machine, at any parallelism, which is exactly what
the golden-trace regression test pins.  Anything nondeterministic (phase
timings, CPU seconds) lives in the metrics registry and may be appended
only as an explicit trailing ``profile`` record by callers that do not
need byte-stable output.

Record shape::

    {"kind":"link-install","da":17,"seq":4,"vpa":61}

``seq`` starts at 0 and increments by one per record, including the
optional leading ``run-meta`` record that carries run metadata (seed,
engine, geometry).  The event vocabulary is closed — an unknown kind is a
:class:`~repro.errors.ConfigurationError` at emission *and* at read time,
so a typo cannot silently fork the vocabulary.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, TextIO, Union

from ..errors import ConfigurationError

#: Protocol events the instrumented simulator emits (DESIGN.md §9).
EVENT_KINDS = frozenset({
    "link-install",      # a failed block got its virtual shadow (LinkTable.link)
    "link-restore",      # recovery reinstalled a link from the in-PCM scan
    "pointer-switch",    # chain reduction exchanged two blocks' shadows
    "inverse-rewrite",   # an inverse-pointer cell was rewritten/completed
    "page-retire",       # the OS retired a page after an access report
    "migration-suspend", # no spare for a migration failure; acquisition owed
    "migration-resume",  # a page acquisition satisfied the suspension
    "crash",             # simulated power loss hit the controller
    "recover",           # reboot recovery completed
    "read-retry",        # a transient read error was absorbed by retry
})

#: Leading record carrying run metadata.
META_KIND = "run-meta"
#: Optional trailing record carrying the (nondeterministic) time profile.
PROFILE_KIND = "profile"

ALL_KINDS = EVENT_KINDS | {META_KIND, PROFILE_KIND}

#: JSON value type a trace field may hold (scalars and nested containers).
Json = Union[None, bool, int, float, str, List["Json"], Dict[str, "Json"]]


def dumps(record: Mapping[str, Json]) -> str:
    """Canonical one-line encoding: sorted keys, minimal separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def loads(line: str) -> Dict[str, Json]:
    """Parse one trace line back into a record."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ConfigurationError(f"trace line is not an object: {line!r}")
    return record


class TraceWriter:
    """Appends canonical records to a sink, numbering them as it goes."""

    def __init__(self, sink: Optional[TextIO] = None,
                 meta: Optional[Mapping[str, Json]] = None) -> None:
        self._sink: TextIO = sink if sink is not None else io.StringIO()
        self.seq = 0
        #: Events written so far, per kind (a running census).
        self.counts: Dict[str, int] = {}
        if meta is not None:
            self._write(META_KIND, dict(meta))

    # ---------------------------------------------------------------- writing

    def emit(self, kind: str, **fields: Json) -> None:
        """Append one protocol event of a known *kind*."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown trace event kind {kind!r}; the vocabulary is "
                f"closed (see repro.telemetry.trace.EVENT_KINDS)")
        self._write(kind, fields)

    def append_profile(self, profile: Mapping[str, Json]) -> None:
        """Append the trailing time-profile record.

        This is the one record whose payload is *not* deterministic; the
        golden-trace fixture never calls this, and :func:`diff_traces`
        callers typically strip it first.
        """
        self._write(PROFILE_KIND, {"phases": dict(profile)})

    def _write(self, kind: str, fields: Mapping[str, Json]) -> None:
        if "kind" in fields or "seq" in fields:
            raise ConfigurationError(
                "trace fields may not shadow 'kind' or 'seq'")
        record: Dict[str, Json] = {"seq": self.seq, "kind": kind}
        record.update(fields)
        self._sink.write(dumps(record) + "\n")
        self.seq += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1

    # ---------------------------------------------------------------- reading

    def getvalue(self) -> str:
        """The buffered trace text (in-memory sinks only)."""
        if not isinstance(self._sink, io.StringIO):
            raise ConfigurationError(
                "getvalue() requires the default in-memory sink")
        return self._sink.getvalue()


def read_trace(source: Union[str, Path, Iterable[str]]) -> List[Dict[str, Json]]:
    """Load and validate a trace from a path or an iterable of lines.

    Validation: every record is an object with a known ``kind`` and the
    ``seq`` numbers count 0, 1, 2, ... without gaps — any reordering or
    loss (e.g. interleaved writers) fails loudly here.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    records: List[Dict[str, Json]] = []
    for line in lines:
        if not line.strip():
            continue
        record = loads(line)
        kind = record.get("kind")
        if kind not in ALL_KINDS:
            raise ConfigurationError(
                f"trace record {len(records)} has unknown kind {kind!r}")
        if record.get("seq") != len(records):
            raise ConfigurationError(
                f"trace sequence broken at record {len(records)}: "
                f"got seq {record.get('seq')!r}")
        records.append(record)
    return records


def census(records: Iterable[Mapping[str, Json]]) -> Dict[str, int]:
    """Event counts per kind, sorted by kind."""
    counts: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("kind"))
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))


def run_meta(records: Iterable[Mapping[str, Json]]) -> Dict[str, Json]:
    """The leading ``run-meta`` payload, or an empty dict."""
    for record in records:
        if record.get("kind") == META_KIND:
            return {k: v for k, v in record.items()
                    if k not in ("kind", "seq")}
        break
    return {}


def profile_of(records: Iterable[Mapping[str, Json]]) -> Dict[str, Json]:
    """The trailing ``profile`` payload's phases, or an empty dict."""
    phases: Dict[str, Json] = {}
    for record in records:
        if record.get("kind") == PROFILE_KIND:
            found = record.get("phases")
            if isinstance(found, dict):
                phases = found
    return phases


def diff_traces(a: List[Dict[str, Json]], b: List[Dict[str, Json]],
                ) -> Optional[str]:
    """First divergence between two traces, or ``None`` when identical.

    Comparison is on canonical record text, so field ordering in memory
    cannot mask or fake a difference.
    """
    for i, (ra, rb) in enumerate(zip(a, b)):
        if dumps(ra) != dumps(rb):
            return (f"record {i} differs:\n  a: {dumps(ra)}\n"
                    f"  b: {dumps(rb)}")
    if len(a) != len(b):
        longer = "a" if len(a) > len(b) else "b"
        extra = (a if len(a) > len(b) else b)[min(len(a), len(b))]
        return (f"lengths differ: a has {len(a)} records, b has {len(b)}; "
                f"first extra in {longer}: {dumps(extra)}")
    return None


__all__ = ["EVENT_KINDS", "META_KIND", "PROFILE_KIND", "ALL_KINDS",
           "TraceWriter", "dumps", "loads", "read_trace", "census",
           "run_meta", "profile_of", "diff_traces"]
