"""Wall/CPU timing helpers shared by the experiment harness.

The parallel grid runner needs one timing discipline for both of its
submit paths (in-process serial and process-pool): measure *inside* the
cell, where wall time and CPU time are well-defined regardless of which
process runs the work, and let the caller derive queue wait as the gap
between time-to-completion and in-cell wall time.  :func:`timed_call` is
that single helper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class CellTiming:
    """In-cell timing of one unit of work."""

    #: Wall-clock seconds spent inside the call.
    wall: float
    #: Process CPU seconds spent inside the call (user + system).
    cpu: float


def timed_call(fn: Callable[..., Any], *args: Any,
               **kwargs: Any) -> Tuple[Any, CellTiming]:
    """Run ``fn(*args, **kwargs)``; return its value and the timing."""
    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    value = fn(*args, **kwargs)
    return value, CellTiming(wall=time.perf_counter() - started_wall,
                             cpu=time.process_time() - started_cpu)


__all__ = ["CellTiming", "timed_call"]
