"""Telemetry: counters, structured tracing, and profiling hooks.

A zero-dependency observability layer for the simulator, mirroring the
fault-injection package's hook discipline:

* :mod:`~repro.telemetry.metrics` — ``Counter``/``Gauge``/``Histogram``
  in a process-local :class:`~repro.telemetry.metrics.Registry` whose
  single ``enabled`` flag turns every metric into a shared no-op;
* :mod:`~repro.telemetry.trace` — canonical JSONL protocol events with
  monotonic sequence numbers and run metadata, deterministic to the byte
  for a seeded run;
* :mod:`~repro.telemetry.session` — the
  :class:`~repro.telemetry.session.TelemetrySession` facade instrumented
  code talks to through its ``telem`` hook (``None`` by default — the
  disabled mode costs one attribute test per *event*, nothing per write);
* the ``attach_*`` functions below — the **only** sanctioned way to wire
  a session into a controller or engine.  The TELEM-API lint rule
  confines foreign ``telem`` access and direct metric construction to
  this package, exactly like FAULT-HOOK does for ``inject``.

Summarize or diff trace files with ``python -m repro.telemetry``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import (Counter, GAUGE_MODES, Gauge, Histogram, Registry,
                      SLO_QUANTILES, gauge_payload, gauge_value,
                      histogram_quantile, merge_snapshots, quantile_label,
                      snapshot_quantiles)
from .session import PhaseTimer, TelemetrySession
from .timing import CellTiming, timed_call
from .trace import (EVENT_KINDS, META_KIND, PROFILE_KIND, TraceWriter,
                    census, diff_traces, read_trace, run_meta)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..mc.controller import BaseController
    from ..osmodel.faults import FaultReporter
    from ..reviver.reviver import WLReviver
    from ..sim.engine import ExactEngine
    from ..sim.fast import FastEngine
    from ..workloads.ftl import PageMappingFTL


def attach_reporter(session: TelemetrySession,
                    reporter: "FaultReporter") -> TelemetrySession:
    """Instrument a fault reporter (``page-retire`` events)."""
    reporter.telem = session
    return session


def attach_reviver(session: TelemetrySession,
                   reviver: "WLReviver") -> TelemetrySession:
    """Instrument a raw reviver: protocol events, link table, reporter."""
    reviver.telem = session
    reviver.links.telem = session
    attach_reporter(session, reviver.reporter)
    return session


def attach_controller(session: TelemetrySession,
                      controller: "BaseController") -> TelemetrySession:
    """Instrument a memory controller (and its reviver, if it has one)."""
    controller.telem = session
    attach_reporter(session, controller.reporter)
    reviver = getattr(controller, "reviver", None)
    if reviver is not None:
        attach_reviver(session, reviver)
    return session


def attach_exact(session: TelemetrySession,
                 engine: "ExactEngine") -> TelemetrySession:
    """Instrument an exact engine and its whole controller stack."""
    engine.telem = session
    attach_controller(session, engine.controller)
    return session


def attach_fast(session: TelemetrySession,
                engine: "FastEngine") -> TelemetrySession:
    """Instrument a fast engine (epoch phases, links, page retirement)."""
    engine.telem = session
    attach_reporter(session, engine.reporter)
    return session


def attach_ftl(session: TelemetrySession,
               ftl: "PageMappingFTL") -> TelemetrySession:
    """Instrument an FTL (write-amplification counters and WA gauges)."""
    ftl.telem = session
    return session


__all__ = [
    "Counter", "Gauge", "Histogram", "Registry", "SLO_QUANTILES",
    "GAUGE_MODES", "gauge_payload", "gauge_value",
    "histogram_quantile", "merge_snapshots", "quantile_label",
    "snapshot_quantiles",
    "TelemetrySession", "PhaseTimer", "TraceWriter", "CellTiming",
    "timed_call", "EVENT_KINDS", "META_KIND", "PROFILE_KIND", "census",
    "diff_traces", "read_trace", "run_meta",
    "attach_reporter", "attach_reviver", "attach_controller",
    "attach_exact", "attach_fast", "attach_ftl",
]
