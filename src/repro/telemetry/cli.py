"""``python -m repro.telemetry`` — summarize and diff trace files.

Two subcommands:

``summarize TRACE``
    Print the run metadata, the event census, and (when the trace carries
    a trailing ``profile`` record) the per-phase time profile as a text
    table.  ``--json`` emits the same data as one JSON object for
    scripting and CI artifacts.

``diff A B``
    Compare two traces on canonical record text and report the first
    divergence; exits 1 when they differ, 0 when byte-equivalent.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .metrics import SLO_QUANTILES, quantile_label, snapshot_quantiles
from .trace import Json, census, diff_traces, profile_of, read_trace, run_meta

#: Snapshot-JSON sections a summarizable registry dump may carry.
_SNAPSHOT_KEYS = ("counters", "gauges", "histograms")


def _format_profile(phases: Dict[str, Json]) -> List[str]:
    """Render the per-phase profile as aligned text lines."""
    lines = ["phase                     seconds      calls   s/call"]
    total = 0.0
    for name in sorted(phases):
        stats = phases[name]
        if not isinstance(stats, dict):
            continue
        seconds = stats.get("seconds")
        calls = stats.get("calls")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            seconds = 0.0
        if not isinstance(calls, (int, float)) or isinstance(calls, bool):
            calls = 0
        per_call = seconds / calls if calls else 0.0
        total += float(seconds)
        lines.append(f"{name:<22} {seconds:>10.4f} {int(calls):>10d} "
                     f"{per_call:>8.6f}")
    lines.append(f"{'total':<22} {total:>10.4f}")
    return lines


def _load_snapshot(path: str) -> Optional[Dict[str, Dict[str, object]]]:
    """Read *path* as a registry-snapshot JSON object, or ``None``.

    A snapshot file is a single JSON object whose keys are a subset of
    ``counters``/``gauges``/``histograms`` (what :meth:`Registry.snapshot`
    and :func:`merge_snapshots` emit, and what the array and serve layers
    write as artifacts).  A result file that *embeds* a snapshot under a
    ``"snapshot"`` key (``python -m repro.serve --json``) is unwrapped.
    Anything else — a JSONL trace included — is not a snapshot and falls
    through to the trace reader.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return None
    if isinstance(data, dict) and isinstance(data.get("snapshot"), dict):
        data = data["snapshot"]
    if not isinstance(data, dict) or not data:
        return None
    if not all(key in _SNAPSHOT_KEYS and isinstance(value, dict)
               for key, value in data.items()):
        return None
    return {str(key): dict(value) for key, value in data.items()}


def _summarize_snapshot(path: str, snapshot: Dict[str, Dict[str, object]],
                        as_json: bool) -> int:
    """Print a registry snapshot: counters, gauges, histogram quantiles."""
    quantiles = snapshot_quantiles(snapshot, SLO_QUANTILES)
    if as_json:
        print(json.dumps({"path": path, "quantiles": quantiles,
                          "snapshot": snapshot},
                         sort_keys=True, indent=2))
        return 0
    print(f"snapshot: {path}")
    for section in ("counters", "gauges"):
        values = snapshot.get(section, {})
        if values:
            print(f"{section}:")
            for name in sorted(values):
                print(f"  {name:<40} {values[name]}")
    if quantiles:
        labels = [quantile_label(q) for q in SLO_QUANTILES]
        print("histograms:")
        header = " ".join(f"{label:>10}" for label in labels)
        print(f"  {'name':<40} {header}")
        for name in sorted(quantiles):
            row = " ".join(f"{quantiles[name][label]:>10.3f}"
                           for label in labels)
            print(f"  {name:<40} {row}")
    return 0


def _summarize(path: str, as_json: bool) -> int:
    snapshot = _load_snapshot(path)
    if snapshot is not None:
        return _summarize_snapshot(path, snapshot, as_json)
    records = read_trace(path)
    meta = run_meta(records)
    counts = census(records)
    phases = profile_of(records)
    if as_json:
        print(json.dumps({"census": counts, "meta": meta, "path": path,
                          "profile": phases, "records": len(records)},
                         sort_keys=True, indent=2))
        return 0
    print(f"trace: {path} ({len(records)} records)")
    if meta:
        print("meta:")
        for key in sorted(meta):
            print(f"  {key}: {meta[key]}")
    print("census:")
    for kind, count in counts.items():
        print(f"  {kind:<20} {count}")
    if phases:
        print("profile:")
        for line in _format_profile(phases):
            print(f"  {line}")
    return 0


def _diff(path_a: str, path_b: str) -> int:
    divergence = diff_traces(read_trace(path_a), read_trace(path_b))
    if divergence is None:
        print(f"traces identical: {path_a} == {path_b}")
        return 0
    print(f"traces differ: {path_a} vs {path_b}")
    print(divergence)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize or diff simulator trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="print run metadata, event census, time profile")
    summarize.add_argument("trace", help="path to a JSONL trace file")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as one JSON object")

    diff = sub.add_parser(
        "diff", help="compare two traces; exit 1 on first divergence")
    diff.add_argument("trace_a", help="path to the reference trace")
    diff.add_argument("trace_b", help="path to the candidate trace")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _summarize(args.trace, args.json)
        return _diff(args.trace_a, args.trace_b)
    except (ReproError, OSError) as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — a bad trace file becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = ["main", "build_parser"]
