"""``python -m repro.telemetry`` — summarize and diff trace files.

Two subcommands:

``summarize TRACE``
    Print the run metadata, the event census, and (when the trace carries
    a trailing ``profile`` record) the per-phase time profile as a text
    table.  ``--json`` emits the same data as one JSON object for
    scripting and CI artifacts.

``diff A B``
    Compare two traces on canonical record text and report the first
    divergence; exits 1 when they differ, 0 when byte-equivalent.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .trace import Json, census, diff_traces, profile_of, read_trace, run_meta


def _format_profile(phases: Dict[str, Json]) -> List[str]:
    """Render the per-phase profile as aligned text lines."""
    lines = ["phase                     seconds      calls   s/call"]
    total = 0.0
    for name in sorted(phases):
        stats = phases[name]
        if not isinstance(stats, dict):
            continue
        seconds = stats.get("seconds")
        calls = stats.get("calls")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            seconds = 0.0
        if not isinstance(calls, (int, float)) or isinstance(calls, bool):
            calls = 0
        per_call = seconds / calls if calls else 0.0
        total += float(seconds)
        lines.append(f"{name:<22} {seconds:>10.4f} {int(calls):>10d} "
                     f"{per_call:>8.6f}")
    lines.append(f"{'total':<22} {total:>10.4f}")
    return lines


def _summarize(path: str, as_json: bool) -> int:
    records = read_trace(path)
    meta = run_meta(records)
    counts = census(records)
    phases = profile_of(records)
    if as_json:
        print(json.dumps({"census": counts, "meta": meta, "path": path,
                          "profile": phases, "records": len(records)},
                         sort_keys=True, indent=2))
        return 0
    print(f"trace: {path} ({len(records)} records)")
    if meta:
        print("meta:")
        for key in sorted(meta):
            print(f"  {key}: {meta[key]}")
    print("census:")
    for kind, count in counts.items():
        print(f"  {kind:<20} {count}")
    if phases:
        print("profile:")
        for line in _format_profile(phases):
            print(f"  {line}")
    return 0


def _diff(path_a: str, path_b: str) -> int:
    divergence = diff_traces(read_trace(path_a), read_trace(path_b))
    if divergence is None:
        print(f"traces identical: {path_a} == {path_b}")
        return 0
    print(f"traces differ: {path_a} vs {path_b}")
    print(divergence)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize or diff simulator trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="print run metadata, event census, time profile")
    summarize.add_argument("trace", help="path to a JSONL trace file")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as one JSON object")

    diff = sub.add_parser(
        "diff", help="compare two traces; exit 1 on first divergence")
    diff.add_argument("trace_a", help="path to the reference trace")
    diff.add_argument("trace_b", help="path to the candidate trace")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _summarize(args.trace, args.json)
        return _diff(args.trace_a, args.trace_b)
    except (ReproError, OSError) as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — a bad trace file becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = ["main", "build_parser"]
