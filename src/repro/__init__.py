"""WL-Reviver reproduction (DSN 2014).

A from-scratch implementation of the paper's full system stack: the PCM
device and endurance model, error-correction substrates, wear-leveling
schemes, the OS page model, the WL-Reviver framework itself, the FREE-p and
LLS baselines, calibrated synthetic workloads, two simulation engines, and
an experiment harness regenerating every table and figure of the paper's
evaluation.

Typical assembly (see README.md and the examples/ directory):

>>> from repro.ecc import ECP
>>> from repro.mc import ReviverController
>>> from repro.osmodel import PagePool
>>> from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
>>> from repro.wl import StartGap
>>> geometry = AddressGeometry(num_blocks=1024)
>>> endurance = EnduranceModel(num_blocks=1024, mean=2000.0)
>>> chip = PCMChip(geometry, ECP(endurance, 6), track_contents=True)
>>> leveler = StartGap(chip.num_blocks)
>>> system = ReviverController(chip, leveler,
...                            PagePool(leveler.logical_blocks))
>>> _ = system.service_write(7, tag=42)
>>> system.service_read(7).tag
42
"""

from . import config, ecc, errors, lls, mc, osmodel, pcm, sim, traces, wl

__version__ = "1.0.0"

__all__ = [
    "config", "ecc", "errors", "lls", "mc", "osmodel", "pcm", "sim",
    "traces", "wl", "__version__",
]
