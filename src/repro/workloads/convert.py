"""Ingest external block-trace CSVs into the canonical trace format.

The MSR-Cambridge enterprise traces (SNIA IOTTA) are the de-facto
standard block workloads; each CSV row is::

    timestamp,host,disk,offset,size,type

with *offset* and *size* in bytes and *type* a read/write tag.  The
converter turns every row into one request per **block** the byte range
``[offset, offset + size)`` touches — address = byte offset over a
configurable block size — and folds the sparse device address space
into a bounded virtual space (modulo fold, the standard trick for
replaying an enterprise trace against a small simulated device).

Everything is a pure function of ``(file bytes, options)``: no
randomness, no wall clock, so converting the same CSV twice produces
byte-identical ``#REPRO-WORKLOAD v1`` files — the canonical-encoding
regression surface extends to imported traces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from .tracefile import TraceMeta, write_records

PathLike = Union[str, Path]

#: Accepted spellings of the read/write tag (case-insensitive).
READ_TAGS = ("r", "read", "rs")
WRITE_TAGS = ("w", "write", "ws")

#: MSR CSV column count: timestamp,host,disk,offset,size,type.
MSR_FIELDS = 6


def parse_msr_row(line: str, lineno: int,
                  block_bytes: int) -> List[Tuple[int, bool]]:
    """One CSV row -> the ``(block address, is_write)`` requests it spans.

    A zero-length transfer still touches the block its offset lands in
    (metadata probes appear as size-0 rows in some captures).
    """
    fields = [field.strip() for field in line.split(",")]
    if len(fields) != MSR_FIELDS:
        raise ConfigurationError(
            f"line {lineno}: expected {MSR_FIELDS} CSV fields "
            f"(timestamp,host,disk,offset,size,type), got {len(fields)}")
    try:
        offset = int(fields[3])
        size = int(fields[4])
    except ValueError as exc:
        raise ConfigurationError(
            f"line {lineno}: offset/size must be integers, "
            f"got {fields[3]!r}/{fields[4]!r}") from exc
    if offset < 0 or size < 0:
        raise ConfigurationError(
            f"line {lineno}: offset/size cannot be negative")
    tag = fields[5].lower()
    if tag in WRITE_TAGS:
        is_write = True
    elif tag in READ_TAGS:
        is_write = False
    else:
        raise ConfigurationError(
            f"line {lineno}: unknown request type {fields[5]!r}")
    first = offset // block_bytes
    last = (offset + size - 1) // block_bytes if size > 0 else first
    return [(block, is_write) for block in range(first, last + 1)]


def _is_header(line: str) -> bool:
    """The optional column-name header (offset won't parse as int)."""
    fields = [field.strip() for field in line.split(",")]
    if len(fields) != MSR_FIELDS:
        return False
    try:
        int(fields[3])
        return False
    except ValueError:
        return True


def read_msr_csv(path: PathLike, block_bytes: int = 4096) -> np.ndarray:
    """Parse an MSR-Cambridge CSV into raw ``(address, is_write)`` rows.

    Addresses are *device* block numbers (unfolded); blank lines and
    ``#`` comments are skipped, and a leading column-name header row is
    tolerated.
    """
    if block_bytes < 1:
        raise ConfigurationError("block_bytes must be positive")
    requests: List[Tuple[int, bool]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            body = line.strip()
            if not body or body.startswith("#"):
                continue
            if lineno == 1 and _is_header(body):
                continue
            requests.extend(parse_msr_row(body, lineno, block_bytes))
    if not requests:
        raise ConfigurationError(f"{path}: no requests found")
    return np.array(requests, dtype=np.int64)


def fold_addresses(records: np.ndarray,
                   blocks: Optional[int] = None) -> Tuple[np.ndarray, int]:
    """Fold sparse device addresses into a bounded virtual space.

    With *blocks* set, addresses wrap modulo *blocks*; otherwise the
    space is sized to the trace's maximum address.  Returns the folded
    records and the virtual-space size.
    """
    records = np.asarray(records, dtype=np.int64)
    if blocks is None:
        virtual_blocks = int(records[:, 0].max()) + 1
        return records, virtual_blocks
    if blocks < 1:
        raise ConfigurationError("blocks must be positive")
    folded = records.copy()
    folded[:, 0] %= blocks
    return folded, blocks


def convert_msr(src: PathLike, out: PathLike, block_bytes: int = 4096,
                blocks: Optional[int] = None, epoch_requests: int = 1024,
                name: Optional[str] = None) -> TraceMeta:
    """MSR-Cambridge CSV -> canonical ``#REPRO-WORKLOAD v1`` file.

    Returns the written trace's metadata; the ``extra`` provenance
    fields record the conversion options so a replayer can tell an
    imported trace from a generated one.
    """
    raw = read_msr_csv(src, block_bytes=block_bytes)
    records, virtual_blocks = fold_addresses(raw, blocks)
    flags = records[:, 1]
    meta = TraceMeta(
        name=name if name is not None else Path(src).stem,
        virtual_blocks=virtual_blocks,
        requests=len(records),
        epoch_requests=epoch_requests,
        write_ratio=float(flags.mean()),
        extra={"source": "msr-csv", "block_bytes": block_bytes,
               "folded": blocks is not None})
    write_records(out, records, meta)
    return meta


def describe_conversion(meta: TraceMeta) -> Dict[str, Any]:
    """Summary payload for the CLI (JSON-ready)."""
    return {"name": meta.name, "requests": meta.requests,
            "virtual_blocks": meta.virtual_blocks,
            "write_ratio": meta.write_ratio,
            "epochs": meta.epochs, "extra": dict(meta.extra)}


__all__ = ["MSR_FIELDS", "READ_TAGS", "WRITE_TAGS", "parse_msr_row",
           "read_msr_csv", "fold_addresses", "convert_msr",
           "describe_conversion"]
