"""``python -m repro.workloads`` — generate, record, replay, describe.

Examples::

    # peek at a phase-shifting hotspot stream
    python -m repro.workloads generate --kind hotshift --blocks 1024 \\
        --requests 4096 --head 5

    # freeze a zipf workload to disk, 256-request epochs
    python -m repro.workloads record --kind zipf --blocks 1024 \\
        --requests 4096 --epoch 256 --out zipf.trace

    # verify the file is canonical and inspect per-shard routing
    python -m repro.workloads replay zipf.trace --check
    python -m repro.workloads replay zipf.trace --digests --shards 4 \\
        --shard-blocks 256

    # just the header
    python -m repro.workloads describe zipf.trace --json

    # ingest an MSR-Cambridge CSV, folded into a 4096-block device
    python -m repro.workloads convert msr_week.csv --out msr.trace \\
        --block-bytes 4096 --blocks 4096
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..array.decoder import INTERLEAVE_MODES, InterleavedDecoder
from ..errors import ReproError
from .generators import (Workload, phase_shifting_hotspot,
                         sequential_workload, uniform_workload,
                         zipf_workload)
from .shards import shard_digests
from .tracefile import (TraceReplay, check_canonical, read_meta,
                        record_workload)

KINDS = ("uniform", "zipf", "sequential", "hotshift")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Deterministic workload generators, trace files, "
                    "and per-shard digests.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_generator_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kind", choices=KINDS, default="zipf")
        p.add_argument("--blocks", type=int, default=1024,
                       help="virtual block space")
        p.add_argument("--requests", type=int, default=4096)
        p.add_argument("--write-ratio", type=float, default=0.5)
        p.add_argument("--exponent", type=float, default=1.0,
                       help="zipf rank exponent")
        p.add_argument("--phases", type=int, default=4,
                       help="hotshift phase count")
        p.add_argument("--hot-fraction", type=float, default=0.1)
        p.add_argument("--hot-share", type=float, default=0.9)
        p.add_argument("--stride", type=int, default=1,
                       help="sequential sweep stride")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--name", type=str, default=None,
                       help="workload name (default: the kind)")

    generate = sub.add_parser("generate",
                              help="draw a stream and summarize it")
    add_generator_flags(generate)
    generate.add_argument("--head", type=int, default=0,
                          help="also print the first N records")
    generate.add_argument("--json", action="store_true")

    record = sub.add_parser("record",
                            help="freeze a generator to a trace file")
    add_generator_flags(record)
    record.add_argument("--out", type=str, required=True)
    record.add_argument("--epoch", type=int, default=1024,
                        help="requests per epoch marker")
    record.add_argument("--json", action="store_true")

    replay = sub.add_parser("replay",
                            help="replay a trace file and summarize it")
    replay.add_argument("path")
    replay.add_argument("--check", action="store_true",
                        help="fail unless the file is byte-canonical")
    replay.add_argument("--epoch", type=int, default=None,
                        help="summarize from this epoch onward")
    replay.add_argument("--digests", action="store_true",
                        help="print per-shard stream digests")
    replay.add_argument("--shards", type=int, default=4)
    replay.add_argument("--shard-blocks", type=int, default=None,
                        help="default: blocks / shards")
    replay.add_argument("--interleave", choices=INTERLEAVE_MODES,
                        default="block")
    replay.add_argument("--page-blocks", type=int, default=16)
    replay.add_argument("--json", action="store_true")

    describe = sub.add_parser("describe", help="print a trace's header")
    describe.add_argument("path")
    describe.add_argument("--json", action="store_true")

    convert = sub.add_parser(
        "convert", help="ingest an MSR-Cambridge CSV as a canonical trace")
    convert.add_argument("path", help="source CSV "
                                      "(timestamp,host,disk,offset,size,"
                                      "type)")
    convert.add_argument("--out", type=str, required=True)
    convert.add_argument("--block-bytes", type=int, default=4096,
                         help="bytes per simulated block (offset -> "
                              "address divisor)")
    convert.add_argument("--blocks", type=int, default=None,
                         help="fold device addresses modulo this virtual "
                              "space (default: size to the max address)")
    convert.add_argument("--epoch", type=int, default=1024,
                         help="requests per epoch marker")
    convert.add_argument("--name", type=str, default=None,
                         help="trace name (default: the CSV's stem)")
    convert.add_argument("--json", action="store_true")
    return parser


def build_workload(args: argparse.Namespace) -> Workload:
    """The generator the shared flags describe."""
    name = args.name if args.name is not None else args.kind
    if args.kind == "uniform":
        return uniform_workload(args.blocks, requests=args.requests,
                                write_ratio=args.write_ratio, name=name,
                                seed=args.seed)
    if args.kind == "zipf":
        return zipf_workload(args.blocks, exponent=args.exponent,
                             requests=args.requests,
                             write_ratio=args.write_ratio, name=name,
                             seed=args.seed)
    if args.kind == "sequential":
        return sequential_workload(args.blocks, stride=args.stride,
                                   write_ratio=args.write_ratio,
                                   name=name, seed=args.seed)
    return phase_shifting_hotspot(args.blocks, phases=args.phases,
                                  phase_requests=max(
                                      1, args.requests // args.phases),
                                  hot_fraction=args.hot_fraction,
                                  hot_share=args.hot_share,
                                  write_ratio=args.write_ratio,
                                  name=name, seed=args.seed)


def summarize(records: np.ndarray, virtual_blocks: int) -> Dict[str, Any]:
    """Deterministic descriptive statistics of a record array."""
    addresses = records[:, 0]
    writes = records[:, 1]
    counts = np.bincount(addresses, minlength=virtual_blocks)
    mean = counts.mean()
    cov = float(counts.std() / mean) if mean > 0 else 0.0
    return {"requests": int(len(records)),
            "virtual_blocks": int(virtual_blocks),
            "distinct_addresses": int((counts > 0).sum()),
            "write_ratio": float(writes.mean()) if len(writes) else 0.0,
            "address_cov": cov}


def render_summary(stats: Dict[str, Any]) -> str:
    return (f"{stats['requests']} requests over "
            f"{stats['virtual_blocks']} blocks: "
            f"{stats['distinct_addresses']} distinct, "
            f"write ratio {stats['write_ratio']:.3f}, "
            f"address CoV {stats['address_cov']:.3f}")


def _emit(payload: Dict[str, Any], as_json: bool,
          text: Sequence[str]) -> None:
    if as_json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        for line in text:
            print(line)


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = build_workload(args)
    records = workload.take(args.requests)
    stats = summarize(records, workload.virtual_blocks)
    head = [f"{int(address)},{'W' if flag else 'R'}"
            for address, flag in records[:max(0, args.head)]]
    _emit({"workload": workload.name, "stats": stats, "head": head},
          args.json, [f"[{workload.name}] " + render_summary(stats)] + head)
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    workload = build_workload(args)
    meta = record_workload(args.out, workload, args.requests,
                           epoch_requests=args.epoch,
                           extra={"kind": args.kind, "seed": args.seed})
    _emit({"out": args.out, "meta": meta.as_dict()}, args.json,
          [f"wrote {args.out}: {meta.requests} requests, "
           f"{meta.epochs} epochs of {meta.epoch_requests}"])
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.check and not check_canonical(args.path):
        print(f"error: {args.path} is not byte-canonical",
              file=sys.stderr)
        return 1
    replay = TraceReplay.load(args.path)
    start = 0
    if args.epoch is not None:
        if not 0 <= args.epoch < replay.meta.epochs:
            print(f"error: epoch {args.epoch} out of range "
                  f"[0, {replay.meta.epochs})", file=sys.stderr)
            return 2
        start = args.epoch * replay.meta.epoch_requests
    window = replay.records[start:]
    stats = summarize(window, replay.virtual_blocks)
    payload: Dict[str, Any] = {"meta": replay.meta.as_dict(),
                               "stats": stats,
                               "canonical": True if args.check else None}
    text: List[str] = [f"[{replay.name}] " + render_summary(stats)]
    if args.check:
        text.append("canonical: ok")
    if args.digests:
        shard_blocks = (args.shard_blocks if args.shard_blocks is not None
                        else replay.virtual_blocks // args.shards)
        decoder = InterleavedDecoder(args.shards, shard_blocks,
                                     interleave=args.interleave,
                                     page_blocks=args.page_blocks)
        digests = shard_digests(window[:, 0], decoder)
        payload["shard_digests"] = {str(sid): digest
                                    for sid, digest in digests.items()}
        text.extend(f"  s{sid}: {digest[:16]}"
                    for sid, digest in digests.items())
    _emit(payload, args.json, text)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .convert import convert_msr, describe_conversion
    meta = convert_msr(args.path, args.out, block_bytes=args.block_bytes,
                       blocks=args.blocks, epoch_requests=args.epoch,
                       name=args.name)
    _emit({"out": args.out, "meta": describe_conversion(meta)}, args.json,
          [f"wrote {args.out}: {meta.requests} requests over "
           f"{meta.virtual_blocks} blocks, write ratio "
           f"{meta.write_ratio:.3f}"])
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    meta = read_meta(args.path)
    _emit({"meta": meta.as_dict()}, args.json,
          [f"[{meta.name}] {meta.requests} requests over "
           f"{meta.virtual_blocks} blocks, {meta.epochs} epochs of "
           f"{meta.epoch_requests}, write ratio "
           f"{meta.write_ratio:.3f}"])
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"generate": _cmd_generate, "record": _cmd_record,
                "replay": _cmd_replay, "describe": _cmd_describe,
                "convert": _cmd_convert}
    try:
        return handlers[args.command](args)
    except ReproError as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — a bad flag combination becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — an unreadable path becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
