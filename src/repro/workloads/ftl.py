"""Page-mapping FTL with GC write-amplification accounting.

Models the indirection layer of Dayan's "Garbage Collection Techniques
for Flash-Resident Page-Mapping FTLs" (arXiv:1504.01666): logical pages
map through an L2P table onto physical pages grouped into erase blocks;
programs go to a sequentially-filled *active* block, updates invalidate
the old physical page in place, and when the free-block pool runs low a
victim block is collected — its still-valid pages are rewritten to the
frontier (the *GC writes*) and the block is erased back into the pool.

Two victim selectors from the paper:

``greedy``
    minimum valid count (most reclaimed space per erase), ties to the
    lowest block id;
``cost-benefit``
    maximize ``age * (1 - u) / (2u)`` where ``u`` is the victim's valid
    fraction and ``age`` is measured in *host writes* since the block
    was last programmed — hot blocks get time to self-invalidate.  No
    wall clock: the host-write counter is the only clock.

Accounting is the point: ``host_writes`` and ``gc_writes`` are kept
separate (the telemetry counter pair ``wa.host_writes`` /
``wa.gc_writes``), the ratio ``(host + gc) / host`` is the write
amplification the reviver-overhead experiment (``fig_wa``) sweeps, and
:meth:`PageMappingFTL.note_epoch` folds a per-epoch WA series into an
attached :class:`~repro.telemetry.TelemetrySession`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..telemetry import TelemetrySession

#: Victim-selection policies (Dayan §2).
GC_POLICIES: Tuple[str, ...] = ("greedy", "cost-benefit")


@dataclass(frozen=True)
class FTLConfig:
    """Geometry and policy of one FTL instance."""

    logical_pages: int
    physical_blocks: int
    pages_per_block: int = 64
    gc_policy: str = "greedy"
    #: Collect until at least this many blocks are free again; programs
    #: trigger collection when the pool falls below it.
    gc_free_blocks: int = 2

    def __post_init__(self) -> None:
        if self.logical_pages < 1:
            raise ConfigurationError("logical_pages must be positive")
        if self.physical_blocks < 2:
            raise ConfigurationError("need >= 2 physical blocks")
        if self.pages_per_block < 1:
            raise ConfigurationError("pages_per_block must be positive")
        if self.gc_policy not in GC_POLICIES:
            raise ConfigurationError(
                f"gc_policy must be one of {GC_POLICIES}, "
                f"got {self.gc_policy!r}")
        # >= 2 so at least one free block remains to absorb the frontier
        # advancing mid-collection (relocations consume frontier slots).
        if self.gc_free_blocks < 2:
            raise ConfigurationError("gc_free_blocks must be >= 2")
        # Over-provisioning floor: even with every logical page valid,
        # the active frontier plus the free floor must fit — otherwise a
        # victim can be fully valid and collection cannot progress.
        spare = (self.gc_free_blocks + 1) * self.pages_per_block
        if self.physical_pages < self.logical_pages + spare:
            raise ConfigurationError(
                f"insufficient over-provisioning: {self.physical_pages} "
                f"physical pages cannot hold {self.logical_pages} logical "
                f"pages plus {spare} spare")

    @property
    def physical_pages(self) -> int:
        """Total physical page slots."""
        return self.physical_blocks * self.pages_per_block

    @property
    def over_provisioning(self) -> float:
        """Spare fraction: physical capacity beyond the logical space."""
        return self.physical_pages / self.logical_pages - 1.0


class PageMappingFTL:
    """The indirection layer: L2P table, active frontier, GC, accounting."""

    def __init__(self, config: FTLConfig) -> None:
        self.config = config
        #: Telemetry hook (``None`` = disabled); wire it through
        #: :func:`repro.telemetry.attach_ftl`, never by hand.
        self.telem: Optional["TelemetrySession"] = None
        self.l2p = np.full(config.logical_pages, -1, dtype=np.int64)
        self.p2l = np.full(config.physical_pages, -1, dtype=np.int64)
        self.valid = np.zeros(config.physical_blocks, dtype=np.int64)
        #: Host-write stamp of each block's last program (cost-benefit age).
        self.stamp = np.zeros(config.physical_blocks, dtype=np.int64)
        self.erase_count = np.zeros(config.physical_blocks, dtype=np.int64)
        self._free: Deque[int] = deque(range(1, config.physical_blocks))
        self._active = 0
        self._slot = 0
        self.host_writes = 0
        self.gc_writes = 0
        self.erases = 0
        #: Physical page of every program, in program order — the
        #: amplified stream the lifetime simulations replay.
        self.programmed: List[int] = []
        #: Per-epoch WA rows appended by :meth:`note_epoch`.
        self.epoch_series: List[Dict[str, float]] = []
        self._noted_host = 0
        self._noted_gc = 0
        self._noted_erases = 0

    # ------------------------------------------------------------ writing

    def host_write(self, lpage: int) -> int:
        """One host program of logical page *lpage*; returns its physical
        page.  GC this write provokes is charged to ``gc_writes``."""
        if not 0 <= lpage < self.config.logical_pages:
            raise ConfigurationError(
                f"logical page {lpage} out of range "
                f"[0, {self.config.logical_pages})")
        self.host_writes += 1
        page = self._program(lpage)
        if len(self._free) < self.config.gc_free_blocks:
            self._collect()
        return page

    def replay(self, addresses: np.ndarray,
               epoch_writes: Optional[int] = None) -> np.ndarray:
        """Push a host address stream through; returns the physical
        program stream (host programs and GC relocations interleaved in
        issue order).  With *epoch_writes*, :meth:`note_epoch` fires on
        every epoch boundary of the *host* stream."""
        if epoch_writes is not None and epoch_writes < 1:
            raise ConfigurationError("epoch_writes must be positive")
        mark = len(self.programmed)
        for index, address in enumerate(np.asarray(addresses,
                                                   dtype=np.int64)):
            self.host_write(int(address))
            if epoch_writes is not None \
                    and (index + 1) % epoch_writes == 0:
                self.note_epoch()
        return np.asarray(self.programmed[mark:], dtype=np.int64)

    def _program(self, lpage: int) -> int:
        old = int(self.l2p[lpage])
        if old >= 0:
            self.p2l[old] = -1
            self.valid[old // self.config.pages_per_block] -= 1
        page = self._active * self.config.pages_per_block + self._slot
        self.l2p[lpage] = page
        self.p2l[page] = lpage
        self.valid[self._active] += 1
        self.stamp[self._active] = self.host_writes
        self.programmed.append(page)
        self._slot += 1
        if self._slot == self.config.pages_per_block:
            self._active = self._free.popleft()
            self._slot = 0
        return page

    # ----------------------------------------------------------------- GC

    def _candidates(self) -> List[int]:
        # Fully-valid blocks are excluded: erasing one reclaims nothing,
        # and the over-provisioning floor guarantees a partial block
        # always exists — so every erase nets at least one free slot.
        free = set(self._free)
        return [b for b in range(self.config.physical_blocks)
                if b != self._active and b not in free
                and self.valid[b] < self.config.pages_per_block]

    def _victim(self) -> int:
        candidates = self._candidates()
        if self.config.gc_policy == "greedy":
            return min(candidates,
                       key=lambda b: (int(self.valid[b]), b))
        ppb = self.config.pages_per_block

        def benefit(b: int) -> float:
            live = int(self.valid[b])
            if live == 0:
                return float("inf")
            u = live / ppb
            age = float(self.host_writes - self.stamp[b])
            return age * (1.0 - u) / (2.0 * u)

        return min(candidates, key=lambda b: (-benefit(b), b))

    def _collect(self) -> None:
        """Erase victims until the free pool is back at its floor."""
        while len(self._free) < self.config.gc_free_blocks:
            victim = self._victim()
            base = victim * self.config.pages_per_block
            for slot in range(self.config.pages_per_block):
                lpage = int(self.p2l[base + slot])
                if lpage >= 0:
                    self.gc_writes += 1
                    self._program(lpage)
            self.valid[victim] = 0
            self.erase_count[victim] += 1
            self.erases += 1
            self._free.append(victim)

    # ---------------------------------------------------------- accounting

    def wa_ratio(self) -> float:
        """Write amplification: total programs per host program."""
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_writes) / self.host_writes

    def note_epoch(self) -> Dict[str, float]:
        """Close one accounting epoch: series row + telemetry deltas."""
        host_delta = self.host_writes - self._noted_host
        gc_delta = self.gc_writes - self._noted_gc
        erase_delta = self.erases - self._noted_erases
        self._noted_host = self.host_writes
        self._noted_gc = self.gc_writes
        self._noted_erases = self.erases
        epoch_ratio = ((host_delta + gc_delta) / host_delta
                       if host_delta else 1.0)
        row = {"epoch": float(len(self.epoch_series)),
               "host_writes": float(host_delta),
               "gc_writes": float(gc_delta),
               "ratio": epoch_ratio}
        self.epoch_series.append(row)
        if self.telem is not None:
            self.telem.count("wa.host_writes", host_delta)
            self.telem.count("wa.gc_writes", gc_delta)
            self.telem.count("wa.erases", erase_delta)
            self.telem.set_gauge("wa.ratio", self.wa_ratio())
            self.telem.observe("wa.epoch_ratio", epoch_ratio,
                               bounds=(1.0, 1.25, 1.5, 2.0, 3.0, 5.0,
                                       8.0, 16.0))
        return row


__all__ = ["GC_POLICIES", "FTLConfig", "PageMappingFTL"]
