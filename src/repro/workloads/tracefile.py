"""Canonical on-disk workload traces: record, stream, seek, replay.

The format is line-oriented text (diffable, versionable, exactly one
canonical byte encoding per logical trace):

* header line: ``#REPRO-WORKLOAD v1 {meta}`` where ``{meta}`` is the
  canonical JSON (sorted keys, no spaces) of :class:`TraceMeta`;
* an ``#EPOCH k`` marker before every ``epoch_requests`` records —
  the resume/seek granularity (:meth:`TraceReader.seek_epoch`);
* one record per line, ``<address>,<R|W>``, LF-terminated.

Canonicality is the regression surface: re-encoding a parsed trace must
reproduce the file byte-for-byte (:func:`canonical_bytes`, checked by
``python -m repro.workloads replay --check`` and the golden fixture), so
any format drift fails loudly instead of silently forking replays.

:class:`TraceReplay` is the in-memory side: a
:class:`~repro.workloads.generators.Workload` that replays the records
with wrap-around, projecting empirical distributions for the batch
engines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (IO, Any, Dict, Iterator, List, Optional, Tuple, Union)

import numpy as np

from ..errors import ConfigurationError
from .generators import Workload

MAGIC = "#REPRO-WORKLOAD"
VERSION = 1
EPOCH_MARK = "#EPOCH"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceMeta:
    """Self-description of a stored trace (the header's JSON payload)."""

    name: str
    virtual_blocks: int
    requests: int
    epoch_requests: int
    write_ratio: float
    #: Free-form provenance (seed, generator kind, ...), kept canonical
    #: by the sorted-key encoding.
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.virtual_blocks < 1:
            raise ConfigurationError("virtual_blocks must be positive")
        if self.requests < 1:
            raise ConfigurationError("requests must be positive")
        if self.epoch_requests < 1:
            raise ConfigurationError("epoch_requests must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        for key in self.extra:
            if key in ("name", "virtual_blocks", "requests",
                       "epoch_requests", "write_ratio"):
                raise ConfigurationError(
                    f"extra key {key!r} shadows a meta field")

    @property
    def epochs(self) -> int:
        """Number of epoch groups the records fall into."""
        return -(-self.requests // self.epoch_requests)

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name, "virtual_blocks": self.virtual_blocks,
            "requests": self.requests,
            "epoch_requests": self.epoch_requests,
            "write_ratio": self.write_ratio}
        data.update(self.extra)
        return data

    def encode(self) -> str:
        """The canonical header line (no trailing newline)."""
        payload = json.dumps(self.as_dict(), sort_keys=True,
                             separators=(",", ":"))
        return f"{MAGIC} v{VERSION} {payload}"

    @classmethod
    def decode(cls, line: str) -> "TraceMeta":
        parts = line.rstrip("\n").split(" ", 2)
        if len(parts) != 3 or parts[0] != MAGIC:
            raise ConfigurationError("not a workload trace (bad header)")
        if parts[1] != f"v{VERSION}":
            raise ConfigurationError(
                f"unsupported trace version {parts[1]!r}")
        try:
            data = json.loads(parts[2])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt trace header: {exc}") from exc
        known = ("name", "virtual_blocks", "requests", "epoch_requests",
                 "write_ratio")
        missing = [key for key in known if key not in data]
        if missing:
            raise ConfigurationError(
                f"trace header missing fields: {missing}")
        extra = {key: value for key, value in data.items()
                 if key not in known}
        return cls(name=data["name"],
                   virtual_blocks=int(data["virtual_blocks"]),
                   requests=int(data["requests"]),
                   epoch_requests=int(data["epoch_requests"]),
                   write_ratio=float(data["write_ratio"]),
                   extra=extra)


def _checked_records(records: np.ndarray,
                     virtual_blocks: int) -> np.ndarray:
    records = np.asarray(records, dtype=np.int64)
    if records.ndim != 2 or records.shape[1] != 2 or len(records) == 0:
        raise ConfigurationError(
            "records must be a non-empty (n, 2) array")
    if records[:, 0].min() < 0 \
            or int(records[:, 0].max()) >= virtual_blocks:
        raise ConfigurationError(
            "address exceeds the declared virtual space")
    flags = records[:, 1]
    if ((flags != 0) & (flags != 1)).any():
        raise ConfigurationError("write flags must be 0 or 1")
    return records


def canonical_bytes(meta: TraceMeta, records: np.ndarray) -> bytes:
    """The one true byte encoding of ``(meta, records)``."""
    records = _checked_records(records, meta.virtual_blocks)
    if len(records) != meta.requests:
        raise ConfigurationError(
            f"meta declares {meta.requests} requests, "
            f"got {len(records)} records")
    lines: List[str] = [meta.encode()]
    for epoch in range(meta.epochs):
        lines.append(f"{EPOCH_MARK} {epoch}")
        start = epoch * meta.epoch_requests
        for address, flag in records[start:start + meta.epoch_requests]:
            lines.append(f"{int(address)},{'W' if flag else 'R'}")
    return ("\n".join(lines) + "\n").encode("utf-8")


def write_records(path: PathLike, records: np.ndarray,
                  meta: TraceMeta) -> None:
    """Store records under *meta* in the canonical encoding."""
    payload = canonical_bytes(meta, records)
    with open(path, "wb") as handle:
        handle.write(payload)


def record_workload(path: PathLike, workload: Workload, requests: int,
                    epoch_requests: int = 1024,
                    extra: Optional[Dict[str, Any]] = None) -> TraceMeta:
    """Freeze the next *requests* of *workload* to disk; returns the meta.

    The recorded file replays the generator byte-identically: the
    round-trip property ``replay(record(w)) == w`` is what the property
    suite pins.
    """
    records = workload.take(requests)
    flags = records[:, 1]
    ratio = float(flags.mean()) if len(flags) else 0.0
    meta = TraceMeta(name=workload.name,
                     virtual_blocks=workload.virtual_blocks,
                     requests=requests, epoch_requests=epoch_requests,
                     write_ratio=ratio,
                     extra=dict(extra) if extra else {})
    write_records(path, records, meta)
    return meta


def read_meta(path: PathLike) -> TraceMeta:
    """Parse just the header of a stored trace."""
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        return TraceMeta.decode(handle.readline())


def _parse_record(line: str, lineno: int) -> Tuple[int, bool]:
    body = line.rstrip("\n")
    head, sep, kind = body.partition(",")
    if not sep or kind not in ("R", "W"):
        raise ConfigurationError(
            f"line {lineno}: malformed record {body!r}")
    try:
        address = int(head)
    except ValueError as exc:
        raise ConfigurationError(
            f"line {lineno}: malformed address {head!r}") from exc
    return address, kind == "W"


class TraceReader:
    """Streaming cursor over a stored trace, seekable to epoch starts.

    The reader never loads the file whole: ``records()`` yields from the
    current position, and :meth:`seek_epoch` jumps to an ``#EPOCH``
    marker, building a byte-offset index lazily as markers are passed.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle: IO[str] = open(self.path, "r", encoding="utf-8",
                                     newline="\n")
        self.meta = TraceMeta.decode(self._handle.readline())
        self._lineno = 1
        #: Byte offsets of the line *after* each seen ``#EPOCH k``.
        self._epoch_offsets: Dict[int, int] = {}
        self._scan_to_epoch(0)

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ----------------------------------------------------------- seeking

    def _scan_to_epoch(self, epoch: int) -> None:
        """Advance from the current position until *epoch*'s marker."""
        while True:
            offset = self._handle.tell()
            line = self._handle.readline()
            if not line:
                raise ConfigurationError(
                    f"{self.path}: epoch {epoch} past end of trace")
            self._lineno += 1
            if line.startswith(EPOCH_MARK):
                seen = int(line.split()[1])
                self._epoch_offsets[seen] = self._handle.tell()
                if seen != len(self._epoch_offsets) - 1:
                    raise ConfigurationError(
                        f"{self.path}: epoch markers out of order "
                        f"at byte {offset}")
                if seen == epoch:
                    return

    def seek_epoch(self, epoch: int) -> None:
        """Position the cursor at the first record of *epoch*."""
        if not 0 <= epoch < self.meta.epochs:
            raise ConfigurationError(
                f"epoch {epoch} out of range [0, {self.meta.epochs})")
        if epoch in self._epoch_offsets:
            self._handle.seek(self._epoch_offsets[epoch])
            return
        # Resume the scan from the furthest marker already indexed.
        furthest = max(self._epoch_offsets)
        self._handle.seek(self._epoch_offsets[furthest])
        self._scan_to_epoch(epoch)

    # ----------------------------------------------------------- reading

    def records(self) -> Iterator[Tuple[int, bool]]:
        """Yield ``(address, is_write)`` from the cursor to end of file."""
        while True:
            line = self._handle.readline()
            if not line:
                return
            self._lineno += 1
            if line.startswith(EPOCH_MARK):
                self._epoch_offsets.setdefault(int(line.split()[1]),
                                               self._handle.tell())
                continue
            yield _parse_record(line, self._lineno)

    def read_all(self) -> np.ndarray:
        """Every record from epoch 0 as an ``(n, 2)`` int64 array."""
        self.seek_epoch(0)
        rows = np.fromiter(
            (value for record in self.records() for value in record),
            dtype=np.int64)
        records = rows.reshape(-1, 2)
        if len(records) != self.meta.requests:
            raise ConfigurationError(
                f"{self.path}: header declares {self.meta.requests} "
                f"records, found {len(records)}")
        return _checked_records(records, self.meta.virtual_blocks)


def check_canonical(path: PathLike) -> bool:
    """True when the file is byte-identical to its canonical re-encoding."""
    with TraceReader(path) as reader:
        expected = canonical_bytes(reader.meta, reader.read_all())
    return Path(path).read_bytes() == expected


class TraceReplay(Workload):
    """Replays stored records with wrap-around (the paper replays its
    Pin traces "multiple times to produce the required wear-out effect")."""

    def __init__(self, records: np.ndarray, meta: TraceMeta) -> None:
        super().__init__(meta.virtual_blocks, name=meta.name)
        self.records = _checked_records(records, meta.virtual_blocks)
        self.meta = meta
        self._cursor = 0

    @classmethod
    def load(cls, path: PathLike) -> "TraceReplay":
        """Load a stored trace whole for replay."""
        with TraceReader(path) as reader:
            return cls(reader.read_all(), reader.meta)

    def reset(self) -> None:
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        rows: List[np.ndarray] = []
        remaining = count
        while remaining > 0:
            size = min(remaining, len(self.records) - self._cursor)
            rows.append(self.records[self._cursor:self._cursor + size])
            self._cursor = (self._cursor + size) % len(self.records)
            remaining -= size
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(rows, axis=0)

    def segments(self) -> List[Tuple[int, np.ndarray]]:
        counts = np.bincount(self.records[:, 0],
                             minlength=self.virtual_blocks)
        return [(0, counts / counts.sum())]

    def cycle_total(self) -> int:
        return len(self.records)

    def write_addresses(self) -> np.ndarray:
        """The write-record addresses, in file order."""
        return self.records[self.records[:, 1] == 1, 0]

    def write_distribution(self) -> "np.ndarray":
        """Empirical per-block write counts (the batch engines' view)."""
        writes = self.write_addresses()
        if len(writes) == 0:
            raise ConfigurationError(
                f"trace {self.name!r} contains no writes")
        return np.bincount(writes, minlength=self.virtual_blocks)


__all__ = [
    "MAGIC", "VERSION", "EPOCH_MARK", "TraceMeta", "canonical_bytes",
    "write_records", "record_workload", "read_meta", "TraceReader",
    "TraceReplay", "check_canonical",
]
