"""Unified workload package: generators, trace files, shards, FTL/WA.

One vocabulary of storage traffic consumed by both stacks:

* :mod:`~repro.workloads.generators` — composable deterministic
  request generators (Zipf, uniform, sequential, phase-shifting
  hotspots, per-phase read/write mixes) built on ``derive_rng`` streams;
* :mod:`~repro.workloads.tracefile` — the canonical on-disk trace
  format with an epoch-seekable streaming reader, a recorder freezing
  any generator to disk, and a wrap-around replayer;
* :mod:`~repro.workloads.shards` — per-shard projections and digests,
  the equivalence surface between ``repro.serve`` and ``repro.array``;
* :mod:`~repro.workloads.ftl` — a page-mapping FTL with greedy /
  cost-benefit garbage collection whose write-amplification accounting
  feeds the ``fig_wa`` experiment through telemetry.

The request-stream builders the serving layer uses
(:func:`zipf_request_stream`, :func:`uniform_request_stream`) live here
as the single implementation — ``repro.serve`` imports them.

:mod:`~repro.workloads.convert` ingests external block-trace CSVs
(MSR-Cambridge layout) into the canonical format, so real enterprise
traces replay through the same machinery as generated ones.

CLI: ``python -m repro.workloads {generate,record,replay,describe,convert}``.
"""

from ..traces import zipf_request_stream
from .convert import convert_msr, fold_addresses, read_msr_csv
from .ftl import FTLConfig, GC_POLICIES, PageMappingFTL
from .generators import (CHUNK, Phase, PhasedWorkload, SequentialWorkload,
                         Workload, phase_shifting_hotspot,
                         sequential_workload, uniform_request_stream,
                         uniform_workload, zipf_workload)
from .shards import per_shard_streams, shard_digests, stream_digest
from .tracefile import (TraceMeta, TraceReader, TraceReplay,
                        canonical_bytes, check_canonical, read_meta,
                        record_workload, write_records)

__all__ = [
    "CHUNK", "Phase", "Workload", "PhasedWorkload", "SequentialWorkload",
    "uniform_workload", "zipf_workload", "sequential_workload",
    "phase_shifting_hotspot", "uniform_request_stream",
    "zipf_request_stream",
    "TraceMeta", "TraceReader", "TraceReplay", "canonical_bytes",
    "check_canonical", "read_meta", "record_workload", "write_records",
    "per_shard_streams", "shard_digests", "stream_digest",
    "FTLConfig", "GC_POLICIES", "PageMappingFTL",
    "convert_msr", "fold_addresses", "read_msr_csv",
]
