"""Composable deterministic workload generators.

A :class:`Workload` is a request-level generalization of the trace
substrate: where :class:`~repro.traces.base.WriteTrace` emits write
addresses and :class:`~repro.traces.base.RequestStream` emits an i.i.d.
read/write mix, a workload emits ``(address, is_write)`` requests whose
address law and mix may *shift over phases* — the piecewise-stationary
traffic the serving layer and the FTL see in practice.

Determinism discipline (the same contract as
:class:`~repro.array.trace.SegmentedTrace`):

* every ``(phase, cycle)`` pair owns an independent generator derived
  from the workload seed and the pair's *indices*, never its content, so
  appending a phase cannot perturb the draws of any earlier phase;
* draws happen in fixed :data:`CHUNK`-sized chunks within a phase, so
  the stream is identical whether consumed one request at a time
  (:meth:`Workload.next_request`) or in bulk (:meth:`Workload.take`).

Every workload also projects down to the stationary world: ``segments()``
returns ``(start, probabilities)`` pairs accepted verbatim by
:class:`~repro.array.trace.SegmentedTrace`, and ``stationary()`` folds
the phases into one request-weighted
:class:`~repro.traces.base.DistributionTrace` for the batch engines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng
from ..traces import DistributionTrace, RequestStream, zipf_distribution

#: Fixed draw-chunk size: the stream is chunked at these boundaries no
#: matter how it is consumed, which is what makes ``take(1)`` n times
#: byte-identical to one ``take(n)``.
CHUNK = 4096


@dataclass(frozen=True)
class Phase:
    """One stationary stretch of a workload.

    ``requests`` draws from ``probabilities`` with the given read/write
    mix, then the workload moves on to the next phase.
    """

    requests: int
    probabilities: np.ndarray
    write_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError("phase needs >= 1 requests")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        probabilities = np.asarray(self.probabilities, dtype=np.float64)
        total = probabilities.sum()
        if len(probabilities) == 0 or total <= 0 \
                or (probabilities < 0).any():
            raise ConfigurationError(
                "phase probabilities must be non-negative, sum > 0")
        object.__setattr__(self, "probabilities", probabilities / total)


class Workload(abc.ABC):
    """A deterministic stream of ``(address, is_write)`` requests."""

    def __init__(self, virtual_blocks: int, name: str = "workload") -> None:
        if virtual_blocks <= 0:
            raise ConfigurationError("virtual_blocks must be positive")
        self.virtual_blocks = virtual_blocks
        self.name = name

    @abc.abstractmethod
    def take(self, count: int) -> np.ndarray:
        """Next *count* requests as an ``(count, 2)`` int64 array.

        Column 0 is the virtual address, column 1 the write flag (0/1).
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Restart the stream from its first request."""

    @abc.abstractmethod
    def segments(self) -> List[Tuple[int, np.ndarray]]:
        """First-cycle ``(start_request, probabilities)`` segments.

        The returned list is accepted verbatim by
        :class:`~repro.array.trace.SegmentedTrace`.
        """

    def next_request(self) -> Tuple[int, bool]:
        """Next request as ``(address, is_write)`` — same stream as take."""
        row = self.take(1)[0]
        return int(row[0]), bool(row[1])

    def cycle_total(self) -> int:
        """Requests in one full cycle (weights :meth:`stationary`)."""
        return self.segments()[-1][0] + 1

    def stationary(self) -> DistributionTrace:
        """Request-weighted fold of the segments into one distribution."""
        weights = np.zeros(self.virtual_blocks, dtype=np.float64)
        segs = self.segments()
        bounds = [start for start, _ in segs[1:]] + [self.cycle_total()]
        for (start, table), end in zip(segs, bounds):
            weights += max(1, end - start) * np.asarray(table,
                                                        dtype=np.float64)
        return DistributionTrace(weights, name=f"{self.name}-stationary",
                                 seed=getattr(self, "_seed", None))


class PhasedWorkload(Workload):
    """Phases played in order, cycling forever with fresh derived streams.

    Cycle ``c`` of phase ``k`` draws from
    ``derive_rng(seed, f"workload-{name}-p{k}-c{c}")`` in fixed
    :data:`CHUNK`-sized chunks — so a prefix of the stream is a pure
    function of the phases it spans, and appending phases (or wrapping
    into the next cycle) can never rewrite it.
    """

    def __init__(self, phases: Sequence[Phase], name: str = "phased",
                 seed: SeedLike = None) -> None:
        if not phases:
            raise ConfigurationError("PhasedWorkload needs >= 1 phase")
        width = len(phases[0].probabilities)
        for phase in phases:
            if len(phase.probabilities) != width:
                raise ConfigurationError(
                    "all phases must cover the same virtual space")
        super().__init__(width, name=name)
        self.phases = list(phases)
        self._seed = seed
        self.reset()

    @property
    def cycle_requests(self) -> int:
        """Requests in one full pass over the phases."""
        return sum(phase.requests for phase in self.phases)

    def cycle_total(self) -> int:
        return self.cycle_requests

    def reset(self) -> None:
        self._cycle = 0
        self._phase = 0
        self._pos = 0          # requests consumed within the active phase
        self._buffer: Optional[np.ndarray] = None
        self._buffer_pos = 0
        self._rng = self._phase_rng()

    def _phase_rng(self) -> np.random.Generator:
        return derive_rng(
            self._seed,
            f"workload-{self.name}-p{self._phase}-c{self._cycle}")

    def _advance_phase(self) -> None:
        self._phase += 1
        if self._phase >= len(self.phases):
            self._phase = 0
            self._cycle += 1
        self._pos = 0
        self._buffer = None
        self._rng = self._phase_rng()

    def _refill(self) -> None:
        phase = self.phases[self._phase]
        size = min(CHUNK, phase.requests - self._pos)
        addresses = self._rng.choice(self.virtual_blocks, size=size,
                                     p=phase.probabilities)
        writes = self._rng.random(size) < phase.write_ratio
        self._buffer = np.column_stack(
            [addresses.astype(np.int64), writes.astype(np.int64)])
        self._buffer_pos = 0

    def take(self, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        rows: List[np.ndarray] = []
        remaining = count
        while remaining > 0:
            if self._pos >= self.phases[self._phase].requests:
                self._advance_phase()
            if self._buffer is None \
                    or self._buffer_pos >= len(self._buffer):
                self._refill()
            assert self._buffer is not None
            chunk = self._buffer[self._buffer_pos:
                                 self._buffer_pos + remaining]
            rows.append(chunk)
            self._buffer_pos += len(chunk)
            self._pos += len(chunk)
            remaining -= len(chunk)
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(rows, axis=0)

    def segments(self) -> List[Tuple[int, np.ndarray]]:
        out: List[Tuple[int, np.ndarray]] = []
        start = 0
        for phase in self.phases:
            out.append((start, phase.probabilities))
            start += phase.requests
        return out

    def then(self, other: "PhasedWorkload") -> "PhasedWorkload":
        """This workload followed by *other*'s phases.

        The combined workload keeps this one's name and seed, so the
        prefix covering this workload's phases replays byte-identically;
        *other*'s phases are re-derived under the combined identity.
        """
        if other.virtual_blocks != self.virtual_blocks:
            raise ConfigurationError(
                "cannot concatenate workloads over different spaces")
        return PhasedWorkload(self.phases + other.phases,
                              name=self.name, seed=self._seed)


class SequentialWorkload(Workload):
    """Strided sequential sweep with a drawn read/write mix.

    Addresses are the deterministic arithmetic stream
    ``(start + i * stride) mod virtual_blocks``; only the write flags
    consume randomness (chunked like every other workload).
    """

    def __init__(self, virtual_blocks: int, start: int = 0, stride: int = 1,
                 write_ratio: float = 0.5, name: str = "sequential",
                 seed: SeedLike = None) -> None:
        super().__init__(virtual_blocks, name=name)
        if stride == 0:
            raise ConfigurationError("stride must be non-zero")
        if not 0.0 <= write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        self.start = start % virtual_blocks
        self.stride = stride
        self.write_ratio = write_ratio
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._position = 0
        self._flags: Optional[np.ndarray] = None
        self._flags_pos = 0
        self._rng = derive_rng(self._seed, f"workload-{self.name}-flags")

    def take(self, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        rows: List[np.ndarray] = []
        remaining = count
        while remaining > 0:
            if self._flags is None or self._flags_pos >= len(self._flags):
                self._flags = (self._rng.random(CHUNK)
                               < self.write_ratio).astype(np.int64)
                self._flags_pos = 0
            size = min(remaining, len(self._flags) - self._flags_pos)
            index = self._position + np.arange(size, dtype=np.int64)
            addresses = (self.start + index * self.stride) \
                % self.virtual_blocks
            flags = self._flags[self._flags_pos:self._flags_pos + size]
            rows.append(np.column_stack([addresses, flags]))
            self._position += size
            self._flags_pos += size
            remaining -= size
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(rows, axis=0)

    def segments(self) -> List[Tuple[int, np.ndarray]]:
        # A full-period sweep touches every block equally.
        uniform = np.full(self.virtual_blocks, 1.0 / self.virtual_blocks)
        return [(0, uniform)]


# ------------------------------------------------------------- builders


def uniform_workload(virtual_blocks: int, requests: int = 4096,
                     write_ratio: float = 0.5, name: str = "uniform",
                     seed: SeedLike = None) -> PhasedWorkload:
    """Uniform addresses with a read/write mix, one stationary phase."""
    probabilities = np.full(virtual_blocks, 1.0 / virtual_blocks)
    return PhasedWorkload(
        [Phase(requests, probabilities, write_ratio)], name=name, seed=seed)


def zipf_workload(virtual_blocks: int, exponent: float = 1.0,
                  requests: int = 4096, write_ratio: float = 0.5,
                  target_cov: Optional[float] = None, name: str = "zipf",
                  seed: SeedLike = None) -> PhasedWorkload:
    """Zipf-popular addresses (seeded rank permutation) with a mix.

    The address law is exactly
    :func:`~repro.traces.synthetic.zipf_distribution` with the same
    arguments, so serving-layer and batch experiments agree on it.
    """
    trace = zipf_distribution(virtual_blocks, exponent=exponent,
                              target_cov=target_cov, name=name, seed=seed)
    return PhasedWorkload(
        [Phase(requests, trace.probabilities, write_ratio)],
        name=name, seed=seed)


def sequential_workload(virtual_blocks: int, start: int = 0, stride: int = 1,
                        write_ratio: float = 0.5, name: str = "sequential",
                        seed: SeedLike = None) -> SequentialWorkload:
    """Strided sweep builder (mirrors the other builders' shape)."""
    return SequentialWorkload(virtual_blocks, start=start, stride=stride,
                              write_ratio=write_ratio, name=name, seed=seed)


def phase_shifting_hotspot(virtual_blocks: int, phases: int = 4,
                           phase_requests: int = 4096,
                           hot_fraction: float = 0.1,
                           hot_share: float = 0.9,
                           write_ratio: float = 0.5,
                           name: str = "hotshift",
                           seed: SeedLike = None) -> PhasedWorkload:
    """A contiguous hot set that rotates around the space each phase.

    Phase ``k`` concentrates *hot_share* of the traffic on a contiguous
    run of ``hot_fraction * virtual_blocks`` blocks starting at offset
    ``k * virtual_blocks / phases`` — the moving working set that defeats
    purely stationary wear models.
    """
    if phases < 1:
        raise ConfigurationError("need >= 1 phases")
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigurationError("hot_fraction must be in (0, 1)")
    if not 0.0 <= hot_share <= 1.0:
        raise ConfigurationError("hot_share must be in [0, 1]")
    hot_blocks = max(1, round(hot_fraction * virtual_blocks))
    if hot_blocks >= virtual_blocks:
        raise ConfigurationError("hot set cannot cover the whole space")
    phase_list: List[Phase] = []
    for k in range(phases):
        probabilities = np.full(
            virtual_blocks,
            (1.0 - hot_share) / (virtual_blocks - hot_blocks))
        offset = (k * virtual_blocks) // phases
        idx = (offset + np.arange(hot_blocks)) % virtual_blocks
        probabilities[idx] = hot_share / hot_blocks
        phase_list.append(Phase(phase_requests, probabilities, write_ratio))
    return PhasedWorkload(phase_list, name=name, seed=seed)


def uniform_request_stream(virtual_blocks: int, write_ratio: float = 0.5,
                           name: str = "uniform", seed: SeedLike = None,
                           stream_name: Optional[str] = None,
                           ) -> RequestStream:
    """Uniform-address request stream (serving-layer counterpart).

    ``stream_name`` names the per-consumer draw stream independently of
    the distribution identity, mirroring
    :func:`~repro.traces.synthetic.zipf_request_stream`.
    """
    size = virtual_blocks
    trace = DistributionTrace(np.full(size, 1.0 / size), name=name,
                              seed=seed)
    return trace.request_stream(write_ratio=write_ratio, name=stream_name)


__all__ = [
    "CHUNK", "Phase", "Workload", "PhasedWorkload", "SequentialWorkload",
    "uniform_workload", "zipf_workload", "sequential_workload",
    "phase_shifting_hotspot", "uniform_request_stream",
]
