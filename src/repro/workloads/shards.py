"""Per-shard projections of a global request stream.

The acceptance surface of the trace path: one stored trace must drive
the online service and the batch array with **byte-identical per-shard
address sequences**.  These helpers compute that sequence — the ordered
shard-local addresses a decoder routes to each shard — and a stable
digest of it, so the two stacks can be compared without shipping the
streams around.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from ..array.decoder import InterleavedDecoder
from ..errors import ConfigurationError


def per_shard_streams(addresses: np.ndarray,
                      decoder: InterleavedDecoder) -> List[np.ndarray]:
    """Ordered shard-local address sequence each shard receives.

    *addresses* is the global stream in arrival order; entry ``s`` of
    the result is the sub-sequence of shard-local addresses decoding to
    shard ``s``, preserving arrival order.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1:
        raise ConfigurationError("addresses must be a 1-d sequence")
    if len(addresses) and (addresses.min() < 0 or
                           int(addresses.max()) >= decoder.global_blocks):
        raise ConfigurationError(
            "address exceeds the decoder's global space")
    shards = decoder.shard_of(addresses)
    locals_ = decoder.local_of(addresses)
    return [locals_[shards == sid] for sid in range(decoder.num_shards)]


def stream_digest(addresses: np.ndarray) -> str:
    """SHA-256 over the little-endian int64 bytes of a sequence."""
    addresses = np.asarray(addresses, dtype=np.int64)
    return hashlib.sha256(addresses.astype("<i8").tobytes()).hexdigest()


def shard_digests(addresses: np.ndarray,
                  decoder: InterleavedDecoder) -> Dict[int, str]:
    """Per-shard digest table of a global stream under *decoder*."""
    return {sid: stream_digest(stream)
            for sid, stream in enumerate(per_shard_streams(addresses,
                                                           decoder))}


__all__ = ["per_shard_streams", "stream_digest", "shard_digests"]
