"""Per-shard service stations and the serving-layer fault interpreter.

A :class:`ShardStation` owns everything one shard contributes to the
service: the bounded admission queue, the overflow lane used by the
``block`` admission mode, the batching window, the circuit breaker, a
write-count wear proxy, and the raw *sample lists* (latencies, batch
sizes, queue depths) that the accounting cells later fold into telemetry
snapshots.  Stations never touch the clock or the event heap — the
:class:`~repro.serve.engine.ServiceEngine` drives them.

:class:`ServeFaultDriver` is the serving layer's interpreter for
:class:`~repro.faultinject.FaultSchedule` actions, the counterpart of
the engine-side :class:`~repro.faultinject.ScheduleDriver`: schedules
stay pure data, and each layer applies the kinds it understands.  Here
``fail-block``/``endurance-burst`` clamps covering a shard's dead
fraction become a whole-shard death, smaller clamps and ``read-error``
become one-request stalls, ``shard-stall`` stalls a burst of requests,
and the controller-protocol kinds (``crash``, ``exhaust-spares``) are
no-ops — the service has no controller to crash.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..faultinject import FaultAction, FaultSchedule, for_shard
from .breaker import CircuitBreaker
from .config import ServeConfig
from .requests import Request


class ShardStation:
    """Queueing, batching, and accounting state of one shard device."""

    def __init__(self, sid: int, config: ServeConfig) -> None:
        self.sid = sid
        self.config = config
        self.alive = True
        #: Bounded admission queue (depth enforced by the engine).
        self.queue: Deque[Request] = deque()
        #: Overflow lane for the ``block`` admission mode (unbounded —
        #: backpressure parks requests here until a queue slot frees).
        self.waiting: Deque[Request] = deque()
        #: Requests currently in service (one batch at a time).
        self.in_service: List[Request] = []
        self.busy = False
        #: True while a batch-window close event is pending on the heap.
        self.window_armed = False
        #: Bumped whenever a scheduled dispatch becomes stale (a batch
        #: filled early, the shard died) so old events are ignored.
        self.generation = 0
        self.breaker = CircuitBreaker(config.breaker_threshold,
                                      config.breaker_cooldown)
        #: Requests this shard must swallow before answering again.
        self.stall_remaining = 0
        #: Lifetime writes served — the wear proxy driving both the
        #: fault schedule's ``at_write`` pins and brownout steering.
        self.writes_served = 0

        # Raw deterministic samples, folded into telemetry by the
        # accounting cells (repro.serve.account).
        self.ok_latencies: List[Tuple[int, int]] = []  # (latency, is_write)
        self.batch_sizes: List[int] = []
        self.depth_samples: List[int] = []
        self.served = 0
        self.stalls = 0
        self.peak_depth = 0
        self.died_at: Optional[int] = None

    # ------------------------------------------------------------- queueing

    @property
    def backlog(self) -> int:
        """Queued plus overflow-parked requests (dispatchable work)."""
        return len(self.queue) + len(self.waiting)

    def note_depth(self) -> None:
        """Sample the instantaneous backlog for the depth histogram."""
        depth = self.backlog
        self.depth_samples.append(depth)
        if depth > self.peak_depth:
            self.peak_depth = depth

    def wear_fraction(self) -> float:
        """Wear proxy in [0, ~1]: lifetime writes over endurance budget."""
        return self.writes_served / self.config.endurance_budget

    def drain(self) -> List[Request]:
        """Remove and return every live request this station holds.

        Called exactly once, at death: the in-service batch, the queue,
        and the overflow lane are emptied in deterministic order so the
        engine can re-home (degraded) or fail (fail-stop) each request.
        """
        drained = list(self.in_service)
        drained.extend(self.queue)
        drained.extend(self.waiting)
        self.in_service.clear()
        self.queue.clear()
        self.waiting.clear()
        self.busy = False
        self.window_armed = False
        self.generation += 1
        return drained


class ServeFaultDriver:
    """Applies a fault schedule to stations, on shard-local write counts.

    The schedule is projected per shard with
    :func:`repro.faultinject.for_shard` (broadcast actions reach every
    shard), sorted deterministically, and consumed cursor-style exactly
    like the engine-side driver: each action applies once, when the
    station's ``writes_served`` reaches its ``at_write``.
    """

    def __init__(self, schedule: Optional[FaultSchedule],
                 config: ServeConfig) -> None:
        self.config = config
        self._schedule = schedule
        self._pending: List[List[FaultAction]] = []
        self._cursor: List[int] = []
        for _ in range(config.num_shards):
            self.grow()
        #: Actions applied so far, as ``(sid, action)`` in order.
        self.applied: List[Tuple[int, FaultAction]] = []

    def grow(self) -> int:
        """Project the schedule onto one more shard (elastic scale-out).

        A shard that joins mid-run starts at write count zero, so every
        broadcast action whose ``at_write`` pin it eventually reaches
        still applies — kill schedules compose with rebalancing.
        """
        sid = len(self._pending)
        if self._schedule is None:
            self._pending.append([])
        else:
            projected = for_shard(self._schedule, sid)
            self._pending.append(list(projected.sorted_actions()))
        self._cursor.append(0)
        return sid

    def poll(self, station: ShardStation) -> bool:
        """Apply every action due at the station's write count.

        Returns True when one of them killed the shard — the engine then
        drains and re-homes everything the station held.
        """
        sid = station.sid
        died = False
        pending = self._pending[sid]
        while (self._cursor[sid] < len(pending)
               and pending[self._cursor[sid]].at_write
               <= station.writes_served):
            action = pending[self._cursor[sid]]
            self._cursor[sid] += 1
            died = self._apply(station, action) or died
            self.applied.append((sid, action))
        return died

    def _apply(self, station: ShardStation, action: FaultAction) -> bool:
        if action.kind in ("fail-block", "endurance-burst"):
            covered = len({da for da in action.das
                           if 0 <= da < self.config.shard_blocks})
            floor = self.config.dead_fraction * self.config.shard_blocks
            if covered >= floor:
                return True  # whole-shard death
            # A partial clamp: the targeted blocks fail their next access
            # and remap; the station swallows one request per block.
            station.stall_remaining += max(1, covered)
            return False
        if action.kind == "read-error":
            station.stall_remaining += 1
            return False
        if action.kind == "shard-stall":
            station.stall_remaining += action.requests
            return False
        # crash / exhaust-spares: controller-protocol actions; the
        # serving layer has no controller, exactly as the fast engine
        # has no crash sites.
        return False


__all__ = ["ShardStation", "ServeFaultDriver"]
