"""The deterministic online serving engine.

:class:`ServiceEngine` runs a closed-loop service on a *virtual clock*:
a single heap of ``(tick, seq)``-ordered events drives N simulated
clients, the :class:`~repro.array.InterleavedDecoder` routing, per-shard
bounded queues with batching windows, admission control, deadline
budgets with bounded exponential-backoff retries, circuit breakers with
wear-fed brownout steering, and live degraded-mode failover when a
fault schedule kills a shard mid-traffic.

No wall clock, no module-level randomness: every tick is an integer,
every draw flows through :func:`repro.rng.derive_rng`, and the event
heap is totally ordered by ``(tick, monotone sequence)`` — so a run is
a pure function of ``(config, schedule)``, byte-identical at any
``--jobs`` (parallelism only fans out the post-run accounting cells).

The zero-drop discipline: a request finishes in exactly one of the
:data:`~repro.serve.requests.OUTCOMES`; every queue, overflow lane, and
in-service batch is drained at shard death and each displaced request is
re-homed (``degraded``) or failed (``fail-stop``).  The engine asserts
the accounting identity ``issued == sum(outcomes)`` before returning —
a violated identity is a framework bug and raises
:class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..array.decoder import InterleavedDecoder
from ..balance import (BalancedDecoder, LevelerPolicy, ShardHealthModel,
                       plan_swaps)
from ..errors import ConfigurationError, ProtocolError
from ..faultinject import FaultSchedule
from ..rng import derive_rng
from ..telemetry import TelemetrySession
from ..traces import RequestStream
from ..workloads import (TraceReplay, uniform_request_stream,
                         zipf_request_stream)
from .account import assemble_snapshots
from .config import ServeConfig
from .report import build_report
from .requests import OUTCOMES, Request
from .station import ServeFaultDriver, ShardStation

# Event kinds, in tie-break-free heap entries (tick, seq, kind, payload).
_ISSUE = 0      # payload: client id
_ADMIT = 1      # payload: Request (fresh routing at fire time)
_DISPATCH = 2   # payload: (sid, generation) — batch window closed
_COMPLETE = 3   # payload: (sid, generation) — batch finished service


@dataclass(frozen=True)
class ServiceResult:
    """Everything one serving run produced, JSON-canonical."""

    config: Dict[str, Any]
    #: Merged deterministic telemetry snapshot (front end + every shard).
    snapshot: Dict[str, Dict[str, Any]]
    #: The SLO report derived from the snapshot (latency quantiles,
    #: throughput, shed/retry/failover accounting).
    report: Dict[str, Any]
    #: Final virtual tick (the run's makespan).
    duration: int
    outcomes: Dict[str, int]

    def as_dict(self) -> Dict[str, Any]:
        return {"config": self.config, "snapshot": self.snapshot,
                "report": self.report, "duration": self.duration,
                "outcomes": self.outcomes}

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical runs."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))


class ServiceEngine:
    """Virtual-clock closed-loop service over an interleaved shard array."""

    def __init__(self, config: ServeConfig,
                 schedule: Optional[FaultSchedule] = None) -> None:
        self.config = config
        base = InterleavedDecoder(config.num_shards, config.shard_blocks,
                                  interleave=config.interleave,
                                  page_blocks=config.page_blocks)
        #: True when the repro.balance control plane is live: steering,
        #: elastic growth, or both.
        self.balanced = config.balance or config.add_shard_at is not None
        self.decoder: Any = BalancedDecoder(base) if self.balanced else base
        self.health: Optional[ShardHealthModel] = None
        self._policy: Optional[LevelerPolicy] = None
        if self.balanced:
            self.health = ShardHealthModel(config.num_shards,
                                           config.endurance_budget,
                                           seed=config.seed)
            self._policy = LevelerPolicy(budget=config.remap_budget)
        #: Empirical per-address write demand, sampled at issue time —
        #: the distribution the leveler steers against.
        self._demand = np.zeros(config.global_blocks, dtype=np.float64)
        self._shard_added = False
        self._writes_seen = 0
        self.stations = [ShardStation(sid, config)
                         for sid in range(config.num_shards)]
        self.faults = ServeFaultDriver(schedule, config)
        self.session = TelemetrySession()
        self.now = 0
        self.issued = 0
        self.finished = 0
        self.outcomes: Dict[str, int] = {o: 0 for o in OUTCOMES}
        self._events: List[Tuple[int, int, int, Any]] = []
        self._seq = 0
        #: Every issued request as ``(address, is_write)``, in issue
        #: order — the serving side of the per-shard trace-equivalence
        #: pin (not part of :class:`ServiceResult`).
        self.issue_log: List[Tuple[int, int]] = []
        if config.workload == "trace":
            replay = self._trace_replay()
            self._streams: List[Any] = [replay] * config.clients
        else:
            self._streams = [self._client_stream(c)
                             for c in range(config.clients)]
        self._think_rngs = [derive_rng(config.seed, f"serve-think-{c}")
                            for c in range(config.clients)]

    # --------------------------------------------------------------- set-up

    def _client_stream(self, client: int) -> RequestStream:
        """Per-client stream, built from the shared workload vocabulary.

        Both builders live in :mod:`repro.workloads`; the distribution
        identity is ``("serve", config.seed)`` and each client draws its
        own ``serve-client-<c>`` stream from it.
        """
        config = self.config
        if config.workload == "zipf":
            return zipf_request_stream(
                config.global_blocks, exponent=config.zipf_exponent,
                write_ratio=config.write_ratio, name="serve",
                seed=config.seed, stream_name=f"serve-client-{client}")
        return uniform_request_stream(
            config.global_blocks, write_ratio=config.write_ratio,
            name="serve", seed=config.seed,
            stream_name=f"serve-client-{client}")

    def _trace_replay(self) -> TraceReplay:
        """One shared file cursor for every client: requests are issued
        in file order no matter which client's think timer fires, so the
        per-shard routing sequence equals the file's decode order."""
        assert self.config.trace_path is not None  # validated by config
        replay = TraceReplay.load(self.config.trace_path)
        if replay.virtual_blocks != self.config.global_blocks:
            raise ConfigurationError(
                f"trace covers {replay.virtual_blocks} blocks, the array "
                f"decodes {self.config.global_blocks}")
        return replay

    def _push(self, tick: int, kind: int, payload: Any) -> None:
        heapq.heappush(self._events, (tick, self._seq, kind, payload))
        self._seq += 1

    def _think(self, client: int) -> int:
        if self.config.arrival == "uniform":
            return self.config.think_ticks
        return int(self._think_rngs[client].exponential(
            self.config.think_ticks))

    # ------------------------------------------------------------------ run

    def run(self, jobs: int = 1) -> ServiceResult:
        """Drive the service to quiescence and assemble the result."""
        for client in range(self.config.clients):
            self._push(0, _ISSUE, client)
        while self._events:
            tick, _seq, kind, payload = heapq.heappop(self._events)
            self.now = tick
            if kind == _ISSUE:
                self._issue(payload)
            elif kind == _ADMIT:
                self._route(payload)
            elif kind == _DISPATCH:
                self._window_closed(*payload)
            else:
                self._complete(*payload)
        self._check_identity()
        self._final_gauges()
        merged = assemble_snapshots(self.stations, self.session,
                                    self.config, jobs=jobs)
        report = build_report(merged, self.config)
        return ServiceResult(config=self.config.as_dict(), snapshot=merged,
                             report=report, duration=self.now,
                             outcomes=dict(self.outcomes))

    def _check_identity(self) -> None:
        accounted = sum(self.outcomes.values())
        if not (self.issued == self.finished == accounted
                == self.config.total_requests):
            raise ProtocolError(
                f"request accounting broken: issued {self.issued}, "
                f"finished {self.finished}, accounted {accounted}, "
                f"target {self.config.total_requests}")

    def _final_gauges(self) -> None:
        session = self.session
        session.set_gauge("serve.duration", self.now)
        session.set_gauge("serve.clients", self.config.clients)
        session.set_gauge("serve.shards", len(self.stations))
        session.set_gauge("serve.live_shards", len(self._live()))
        if self.health is not None:
            self.health.publish(session)
        session.count("serve.deaths",
                      sum(1 for s in self.stations if not s.alive))
        session.count("serve.breaker_opened",
                      sum(s.breaker.opened for s in self.stations))
        session.count("serve.breaker_closed",
                      sum(s.breaker.closed_after_probe
                          for s in self.stations))

    # ------------------------------------------------------------- clients

    def _issue(self, client: int) -> None:
        if self.issued >= self.config.total_requests:
            return  # quota reached while this client was thinking
        if (self.config.add_shard_at is not None and not self._shard_added
                and self.issued >= self.config.add_shard_at):
            self._add_shard()
        address, is_write = self._streams[client].next_request()
        if self.balanced and is_write:
            self._demand[address] += 1.0
        self.issue_log.append((address, int(is_write)))
        request = Request(rid=self.issued, client=client, address=address,
                          is_write=is_write, issued_at=self.now,
                          deadline=self.now + self.config.deadline_ticks)
        self.issued += 1
        self.session.count("serve.issued")
        self.session.count(f"serve.issued_{request.kind()}")
        self._route(request)

    def _finish(self, request: Request, outcome: str) -> None:
        self.outcomes[outcome] += 1
        self.finished += 1
        self.session.count(f"serve.{outcome}")
        if self.issued < self.config.total_requests:
            self._push(self.now + self._think(request.client), _ISSUE,
                       request.client)

    # ------------------------------------------------------------- routing

    def _live(self) -> List[int]:
        return [s.sid for s in self.stations if s.alive]

    def _route(self, request: Request) -> None:
        live = self._live()
        if not live:
            self._finish(request, "failed")
            return
        sid, local = (int(v) for v in self.decoder.decode(request.address))
        if not self.stations[sid].alive:
            if self.config.policy == "fail-stop":
                self._finish(request, "failed")
                return
            # The array's degraded re-home rule: the dead shard's local
            # address keeps its position, on the survivor it hashes to.
            sid = live[local % len(live)]
        if request.is_write:
            sid = self._steer(sid, live)
        self._admit(self.stations[sid], request)

    def _steer(self, sid: int, live: List[int]) -> int:
        """Wear-fed brownout: steer writes off a worn-out shard."""
        config = self.config
        if self.stations[sid].wear_fraction() < config.brownout_wear:
            return sid
        fresh = [s for s in live
                 if self.stations[s].wear_fraction() < config.brownout_wear]
        if not fresh:
            return sid  # everything is browned out; wear evenly
        target = min(fresh,
                     key=lambda s: (self.stations[s].writes_served, s))
        if target != sid:
            self.session.count("serve.steered")
        return target

    # ----------------------------------------------------------- admission

    def _admit(self, station: ShardStation, request: Request) -> None:
        if self.now >= request.deadline:
            self._finish(request, "deadline")
            return
        if len(station.queue) >= self.config.queue_depth:
            if self.config.admission == "shed":
                self.session.count("serve.shed_full_queue")
                self._finish(request, "shed")
            else:
                station.waiting.append(request)
                self.session.count("serve.blocked")
                station.note_depth()
            return
        self._enqueue(station, request)

    def _enqueue(self, station: ShardStation, request: Request) -> None:
        """Place a request into a queue slot (capacity already checked)."""
        decision = station.breaker.admit(self.now)
        if decision == "fast-fail":
            self.session.count("serve.breaker_fast_fail")
            self._retry(station, request, shard_failure=False)
            return
        if decision == "probe":
            request.probe = True
            self.session.count("serve.breaker_probes")
        station.queue.append(request)
        station.note_depth()
        self._maybe_dispatch(station)

    def _promote(self, station: ShardStation) -> None:
        """Pull overflow-parked requests into freed queue slots."""
        while station.waiting \
                and len(station.queue) < self.config.queue_depth:
            request = station.waiting.popleft()
            if self.now >= request.deadline:
                self._finish(request, "deadline")
                continue
            self._enqueue(station, request)

    # ------------------------------------------------------------ batching

    def _maybe_dispatch(self, station: ShardStation) -> None:
        if station.busy or not station.queue or not station.alive:
            return
        if len(station.queue) >= self.config.batch_max:
            self._dispatch(station)
            return
        if not station.window_armed:
            station.window_armed = True
            self._push(self.now + self.config.batch_window, _DISPATCH,
                       (station.sid, station.generation))

    def _window_closed(self, sid: int, generation: int) -> None:
        station = self.stations[sid]
        if station.generation != generation or not station.alive:
            return  # stale: the batch filled early or the shard died
        station.window_armed = False
        if station.busy or not station.queue:
            return
        self._dispatch(station)

    def _dispatch(self, station: ShardStation) -> None:
        batch: List[Request] = []
        while station.queue and len(batch) < self.config.batch_max:
            batch.append(station.queue.popleft())
        station.in_service = batch
        station.busy = True
        station.window_armed = False
        station.generation += 1
        station.batch_sizes.append(len(batch))
        duration = self.config.service_base + sum(
            self.config.write_ticks if r.is_write
            else self.config.read_ticks for r in batch)
        self._push(self.now + max(1, duration), _COMPLETE,
                   (station.sid, station.generation))
        self._promote(station)

    # ------------------------------------------------------------- service

    def _complete(self, sid: int, generation: int) -> None:
        station = self.stations[sid]
        if station.generation != generation or not station.alive:
            return  # stale: the shard died and drained mid-service
        batch = list(station.in_service)
        station.in_service.clear()
        station.busy = False
        for index, request in enumerate(batch):
            if not station.alive:
                # Death fired mid-batch: the rest of the batch joins the
                # displaced set the drain already re-homed.
                self._displace(batch[index:])
                break
            self._serve_one(station, request)
        if station.alive:
            self._maybe_dispatch(station)

    def _serve_one(self, station: ShardStation, request: Request) -> None:
        if station.stall_remaining > 0:
            station.stall_remaining -= 1
            station.stalls += 1
            self.session.count("serve.stalled")
            self._retry(station, request, shard_failure=True)
            return
        if request.is_write:
            station.writes_served += 1
        station.served += 1
        station.breaker.record_success(request.probe)
        request.probe = False
        latency = self.now - request.issued_at
        station.ok_latencies.append((latency, int(request.is_write)))
        if self.now > request.deadline:
            self.session.count("serve.deadline_miss")
        self._finish(request, "ok")
        if request.is_write and self.faults.poll(station):
            self._kill(station)
        if self.balanced and request.is_write:
            self._writes_seen += 1
            if (self.config.balance
                    and self._writes_seen % self.config.rebalance_every
                    == 0):
                self._rebalance()

    # ------------------------------------------------------- retry/backoff

    def _retry(self, station: ShardStation, request: Request,
               shard_failure: bool) -> None:
        """Bounded exponential-backoff retry (READ_RETRY_LIMIT semantics)."""
        if shard_failure:
            station.breaker.record_failure(self.now, request.probe)
        request.probe = False
        request.attempts += 1
        if request.attempts >= self.config.retry_limit:
            self.session.count("serve.retries_exhausted")
            self._finish(request, "error")
            return
        backoff = self.config.backoff_base * 2 ** (request.attempts - 1)
        retry_at = self.now + backoff
        if retry_at >= request.deadline:
            self._finish(request, "deadline")
            return
        self.session.count("serve.retries")
        self._push(retry_at, _ADMIT, request)

    # ------------------------------------------------------------ failover

    def _kill(self, station: ShardStation) -> None:
        station.alive = False
        station.died_at = self.now
        if self.health is not None:
            self.health.observe(station.sid, station.writes_served, 0.0,
                                dead=True)
        live = self._live()
        if (self.balanced and self.config.policy == "degraded" and live):
            # Fold the degraded re-home rule into the balanced map, so
            # later steering rounds see the survivors' true ownership.
            self.decoder.rehome(station.sid, live)
        self._displace(station.drain())

    def _displace(self, requests: List[Request]) -> None:
        """Re-home (degraded) or fail (fail-stop) displaced requests."""
        for request in requests:
            request.probe = False
            self.session.count("serve.failover")
            if self.config.policy == "fail-stop":
                self._finish(request, "failed")
            else:
                self._push(self.now, _ADMIT, request)

    # ---------------------------------------------- elastic balancing

    def _add_shard(self) -> None:
        """Grow the array by one shard, live, at an issue boundary.

        Consistent-hashing migration: ~1/(N+1) of the address space
        re-homes onto the fresh shard; everything else keeps its exact
        home, so in-flight requests are unaffected (routing is fixed at
        admit time) and the zero-drop identity is preserved.
        """
        self._shard_added = True
        movers, _donors = self.decoder.add_shard()
        sid = len(self.stations)
        self.stations.append(ShardStation(sid, self.config))
        self.faults.grow()
        assert self.health is not None  # balanced whenever add_shard_at set
        self.health.add_shard()
        self.session.count("serve.migrated", int(movers.size))
        self.session.count("serve.shards_added")

    def _rebalance(self) -> None:
        """One steering checkpoint: wear telemetry -> bounded swaps."""
        assert self.health is not None and self._policy is not None
        for station in self.stations:
            if station.alive:
                self.health.observe(station.sid, station.writes_served, 0.0)
        live = self._live()
        if len(live) < 2:
            return
        swaps = plan_swaps(self.decoder, self._demand,
                           self.health.risks(), live, self._policy)
        if swaps:
            self.session.count("serve.remap_swaps", len(swaps))


__all__ = ["ServiceEngine", "ServiceResult"]
