"""The resilient online serving layer over the shard array.

The wear-leveling stack below this package answers "how long does the
device live"; this package answers the operator's question — "what does
a *service* on that device do while shards brown out and die".  A
deterministic virtual-clock discrete-event engine
(:class:`~repro.serve.engine.ServiceEngine`) runs N closed-loop clients
against an interleaved shard array and exercises the full resilience
tool-set end to end:

* **admission control** — per-shard bounded queues that *shed* or
  *block* (backpressure) on overflow, with batching windows;
* **deadline budgets** — bounded retries with exponential backoff,
  reusing the controller's ``READ_RETRY_LIMIT`` semantics;
* **circuit breakers** — per-shard open → half-open → closed cycles on
  consecutive failures, plus wear-fed *brownout* steering of writes
  away from nearly-worn shards;
* **live degraded-mode failover** — a :mod:`repro.faultinject` schedule
  can kill a shard mid-traffic; every in-flight request is drained and
  re-homed under the array's degraded re-home rule (or failed, under
  ``fail-stop``), with a zero-drop accounting identity asserted at the
  end of every run.

Telemetry is assembled per shard by parallel accounting cells and
merged order-independently, so the SLO report (p50/p99 latency,
throughput, shed/retry/failover counts) is byte-identical for a fixed
seed at any ``--jobs``.  Run one from the command line with
``python -m repro.serve``.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .config import (ADMISSION_MODES, ARRIVAL_PROCESSES, LATENCY_BOUNDS,
                     SERVE_POLICIES, SERVE_WORKLOADS, ServeConfig)
from .engine import ServiceEngine, ServiceResult
from .report import build_report
from .requests import OUTCOMES, Request
from .station import ServeFaultDriver, ShardStation

__all__ = [
    "ServeConfig", "ServiceEngine", "ServiceResult",
    "CircuitBreaker", "BREAKER_STATES",
    "Request", "OUTCOMES",
    "ShardStation", "ServeFaultDriver",
    "build_report",
    "SERVE_POLICIES", "ADMISSION_MODES", "ARRIVAL_PROCESSES",
    "SERVE_WORKLOADS", "LATENCY_BOUNDS",
]
