"""Post-run accounting: per-shard sample lists → merged telemetry.

The discrete-event loop is inherently serial (one virtual clock), so
``--jobs`` parallelism lives here instead: each shard's raw samples —
success latencies, batch sizes, queue-depth observations, counters —
become one :class:`~repro.experiments.parallel.Cell` whose function
folds them into a telemetry snapshot.  Cells fan out on the shared
:class:`~repro.experiments.parallel.GridRunner`, and the snapshots merge
with :func:`~repro.telemetry.merge_snapshots`, which is associative and
commutative — so the merged result is byte-identical at any job count.

Shared metric names (``serve.latency.read``/``write``, ``serve.served``)
add across shards into global aggregates; per-shard names carry the
``serve.s<id>.`` prefix so gauges never collide under merge's max rule.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..array.shard import deterministic_snapshot
from ..experiments.parallel import Cell, GridRunner
from ..telemetry import TelemetrySession, merge_snapshots
from .config import ServeConfig
from .station import ShardStation

#: Bucket bounds for per-shard batch-size and queue-depth histograms.
SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def account_shard_cell(sid: int,
                       ok_latencies: Sequence[Sequence[int]],
                       batch_sizes: Sequence[int],
                       depth_samples: Sequence[int],
                       served: int, stalls: int, peak_depth: int,
                       writes_served: int, endurance_budget: float,
                       alive: bool, died_at: int,
                       latency_bounds: Sequence[float]
                       ) -> Dict[str, Dict[str, Any]]:
    """Fold one shard's raw samples into a telemetry snapshot.

    A module-level function with plain-data arguments, so the grid
    runner can hand it to worker processes by dotted name.  Everything
    observed here is a deterministic function of the samples — no wall
    clock, no randomness — which is what makes the merged snapshot
    byte-stable across job counts.
    """
    session = TelemetrySession()
    for latency, is_write in ok_latencies:
        kind = "write" if is_write else "read"
        session.observe(f"serve.latency.{kind}", latency,
                        bounds=tuple(latency_bounds))
    for size in batch_sizes:
        session.observe(f"serve.s{sid}.batch", size, bounds=SIZE_BOUNDS)
    for depth in depth_samples:
        session.observe(f"serve.s{sid}.depth", depth, bounds=SIZE_BOUNDS)
    session.count("serve.served", served)
    session.count(f"serve.s{sid}.served", served)
    session.count(f"serve.s{sid}.stalls", stalls)
    session.count(f"serve.s{sid}.writes", writes_served)
    session.set_gauge(f"serve.s{sid}.peak_depth", peak_depth)
    session.set_gauge(f"serve.s{sid}.wear",
                      writes_served / endurance_budget)
    session.set_gauge(f"serve.s{sid}.alive", int(alive))
    session.set_gauge(f"serve.s{sid}.died_at", died_at)
    return deterministic_snapshot(session.registry.snapshot())


def shard_cell(station: ShardStation, config: ServeConfig) -> Cell:
    """The accounting cell for one station (plain-data kwargs only)."""
    return Cell(
        key=f"serve/s{station.sid}",
        fn="repro.serve.account:account_shard_cell",
        kwargs={
            "sid": station.sid,
            "ok_latencies": [list(pair) for pair in station.ok_latencies],
            "batch_sizes": list(station.batch_sizes),
            "depth_samples": list(station.depth_samples),
            "served": station.served,
            "stalls": station.stalls,
            "peak_depth": station.peak_depth,
            "writes_served": station.writes_served,
            "endurance_budget": config.endurance_budget,
            "alive": station.alive,
            "died_at": -1 if station.died_at is None else station.died_at,
            "latency_bounds": list(config.latency_bounds),
        })


def assemble_snapshots(stations: List[ShardStation],
                       front_session: TelemetrySession,
                       config: ServeConfig,
                       jobs: int = 1) -> Dict[str, Dict[str, Any]]:
    """Fan per-shard accounting over *jobs* workers and merge everything."""
    runner = GridRunner(jobs=jobs)
    results = runner.run([shard_cell(station, config)
                          for station in stations])
    merged = deterministic_snapshot(front_session.registry.snapshot())
    for key in sorted(results):
        merged = merge_snapshots(merged, results[key])
    return merged


__all__ = ["account_shard_cell", "shard_cell", "assemble_snapshots",
           "SIZE_BOUNDS"]
