"""Configuration for the online serving layer.

One frozen dataclass holds every knob of the virtual-clock service:
array geometry (mirroring :class:`repro.array.ArrayConfig`), the
closed-loop client population, per-shard queueing and batching, the
admission/backpressure policy, deadline and retry budgets, and the
circuit-breaker / brownout thresholds.  Validation happens once at
construction so the discrete-event engine never re-checks ranges on its
hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..array.decoder import INTERLEAVE_MODES
from ..errors import ConfigurationError
from ..mc.controller import READ_RETRY_LIMIT

#: What the array does about a dead shard, as seen from the service:
#: ``degraded`` re-homes the dead shard's addresses onto survivors,
#: ``fail-stop`` turns every request touching it into a hard failure.
SERVE_POLICIES: Tuple[str, ...] = ("degraded", "fail-stop")

#: How a full per-shard queue treats a new request: ``shed`` rejects it
#: immediately (load shedding), ``block`` parks it in an overflow lane
#: until a slot frees (backpressure — the request keeps its deadline).
ADMISSION_MODES: Tuple[str, ...] = ("shed", "block")

#: Client think-time processes (virtual ticks between response and the
#: next request of a closed-loop client).
ARRIVAL_PROCESSES: Tuple[str, ...] = ("uniform", "poisson")

#: Client address/read-write workloads.  ``trace`` replays a recorded
#: :mod:`repro.workloads` trace file in file order (clients share one
#: cursor), so the same file drives the service and the batch array with
#: identical per-shard address streams.
SERVE_WORKLOADS: Tuple[str, ...] = ("zipf", "uniform", "trace")

#: Default latency histogram bounds, in virtual ticks (geometric, so the
#: p99 of a few-hundred-tick service keeps sub-bucket resolution).
LATENCY_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0, 8192.0, 16384.0)


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of one serving run (frozen; validated on construction)."""

    # ----------------------------------------------------- array geometry
    num_shards: int = 4
    shard_blocks: int = 512
    page_blocks: int = 16
    interleave: str = "block"
    policy: str = "degraded"
    #: Fraction of a shard's blocks a single clamp action must cover to
    #: count as a whole-shard death (mirrors the array engine's floor).
    dead_fraction: float = 0.5

    # -------------------------------------------------------------- load
    clients: int = 8
    total_requests: int = 2_000
    workload: str = "zipf"
    #: Recorded trace to replay when ``workload == "trace"``.
    trace_path: Optional[str] = None
    zipf_exponent: float = 1.0
    write_ratio: float = 0.5
    arrival: str = "poisson"
    #: Mean think time between a response and the client's next request.
    think_ticks: int = 4

    # ------------------------------------------------- queueing & service
    queue_depth: int = 16
    admission: str = "shed"
    batch_max: int = 8
    #: Ticks an idle shard waits for a batch to fill before dispatching.
    batch_window: int = 2
    #: Fixed per-batch service overhead, plus per-request read/write cost.
    service_base: int = 2
    read_ticks: int = 1
    write_ticks: int = 3

    # -------------------------------------------- deadlines & retries
    deadline_ticks: int = 400
    retry_limit: int = READ_RETRY_LIMIT
    backoff_base: int = 2

    # -------------------------------------- breaker & wear-fed brownout
    breaker_threshold: int = 4
    breaker_cooldown: int = 32
    #: Wear fraction (lifetime writes / endurance budget) past which a
    #: shard browns out: new writes steer to the least-worn live shard.
    brownout_wear: float = 0.85
    mean_endurance: float = 300.0

    # ------------------------------------- elastic balancing (repro.balance)
    #: Steer hot writes away from high-risk shards via the balanced
    #: decoder's hot/cold swaps (bounded by ``remap_budget`` per round).
    balance: bool = False
    #: Served writes between steering checkpoints.
    rebalance_every: int = 200
    #: Maximum hot/cold swaps one steering checkpoint may apply.
    remap_budget: int = 8
    #: Issued-request count at which a fresh shard joins the array
    #: (consistent-hashing migration; ``None`` = never grow).
    add_shard_at: Optional[int] = None

    # ---------------------------------------------------------- plumbing
    seed: int = 7
    latency_bounds: Tuple[float, ...] = LATENCY_BOUNDS

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.shard_blocks < 1:
            raise ConfigurationError("shard_blocks must be positive")
        if self.interleave not in INTERLEAVE_MODES:
            raise ConfigurationError(
                f"unknown interleave {self.interleave!r}")
        if self.policy not in SERVE_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SERVE_POLICIES}, "
                f"got {self.policy!r}")
        if not 0.0 < self.dead_fraction <= 1.0:
            raise ConfigurationError("dead_fraction must be in (0, 1]")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.total_requests < 1:
            raise ConfigurationError("total_requests must be positive")
        if self.workload not in SERVE_WORKLOADS:
            raise ConfigurationError(
                f"workload must be one of {SERVE_WORKLOADS}, "
                f"got {self.workload!r}")
        if self.workload == "trace" and self.trace_path is None:
            raise ConfigurationError(
                "workload 'trace' needs trace_path")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.arrival!r}")
        if self.think_ticks < 0:
            raise ConfigurationError("think_ticks must be >= 0")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if self.admission not in ADMISSION_MODES:
            raise ConfigurationError(
                f"admission must be one of {ADMISSION_MODES}, "
                f"got {self.admission!r}")
        if self.batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        if self.batch_window < 0:
            raise ConfigurationError("batch_window must be >= 0")
        if min(self.service_base, self.read_ticks, self.write_ticks) < 0:
            raise ConfigurationError("service costs must be >= 0")
        if self.service_base + self.read_ticks + self.write_ticks < 1:
            raise ConfigurationError("service must take at least one tick")
        if self.deadline_ticks < 1:
            raise ConfigurationError("deadline_ticks must be >= 1")
        if self.retry_limit < 1:
            raise ConfigurationError("retry_limit must be >= 1")
        if self.backoff_base < 1:
            raise ConfigurationError("backoff_base must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 1:
            raise ConfigurationError("breaker_cooldown must be >= 1")
        if not 0.0 < self.brownout_wear <= 1.0:
            raise ConfigurationError("brownout_wear must be in (0, 1]")
        if self.mean_endurance <= 0:
            raise ConfigurationError("mean_endurance must be positive")
        if self.rebalance_every < 1:
            raise ConfigurationError("rebalance_every must be >= 1")
        if self.remap_budget < 0:
            raise ConfigurationError("remap_budget cannot be negative")
        if self.add_shard_at is not None and self.add_shard_at < 1:
            raise ConfigurationError("add_shard_at must be >= 1")
        if len(self.latency_bounds) < 1:
            raise ConfigurationError("need at least one latency bound")

    @property
    def global_blocks(self) -> int:
        """Size of the decoded global address space."""
        return self.num_shards * self.shard_blocks

    @property
    def endurance_budget(self) -> float:
        """Lifetime writes one shard absorbs before full wear-out."""
        return self.shard_blocks * self.mean_endurance

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable key order comes from the serializer)."""
        data: Dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            data[name] = list(value) if isinstance(value, tuple) else value
        return data


__all__ = ["ServeConfig", "SERVE_POLICIES", "ADMISSION_MODES",
           "ARRIVAL_PROCESSES", "SERVE_WORKLOADS", "LATENCY_BOUNDS"]
