"""The request record and its terminal outcomes.

A request is born when a closed-loop client issues it and dies exactly
once, with one of the :data:`OUTCOMES`.  The zero-drop accounting
identity the regression suite pins — ``issued == sum(outcome counts)`` —
falls out of that single-death discipline: every admission decision,
retry, failover re-home, and brownout steer is a *transfer* of a live
request, never a fork or a silent drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Terminal outcomes; every issued request ends in exactly one.
#:
#: ``ok``
#:     Served; latency recorded (a late success additionally bumps the
#:     soft ``serve.deadline_miss`` counter).
#: ``shed``
#:     Rejected by admission control on a full queue (``shed`` mode).
#: ``deadline``
#:     Abandoned: its deadline passed while queued/waiting, or the next
#:     retry backoff could not finish inside the budget.
#: ``error``
#:     Failed every attempt of its bounded retry budget (the serving
#:     analogue of :class:`repro.errors.ReadRetriesExhausted`).
#: ``failed``
#:     Hit a dead shard under the ``fail-stop`` policy, or the whole
#:     array was lost.
OUTCOMES: Tuple[str, ...] = ("ok", "shed", "deadline", "error", "failed")


@dataclass
class Request:
    """One in-flight service request (mutable: attempts accumulate)."""

    #: Globally unique id, in issue order.
    rid: int
    #: Issuing client (responses re-arm this client's think timer).
    client: int
    #: Global block address (decoded to a shard at admission time).
    address: int
    is_write: bool
    #: Virtual tick the client issued it.
    issued_at: int
    #: Absolute virtual-tick deadline.
    deadline: int
    #: Failed attempts so far (stalls and breaker fast-fails).
    attempts: int = 0
    #: True while this request is the breaker's half-open probe.
    probe: bool = False

    def kind(self) -> str:
        """``"write"`` or ``"read"`` — the latency histogram key."""
        return "write" if self.is_write else "read"


__all__ = ["Request", "OUTCOMES"]
