"""Per-shard circuit breaker with the classic three-state cycle.

``closed`` — requests flow; consecutive failures are counted and any
success resets the count.  ``open`` — admissions fast-fail (the caller
retries elsewhere or backs off) until a cooldown of virtual ticks has
passed.  ``half-open`` — exactly one *probe* request is admitted; its
success closes the breaker, its failure re-opens a full cooldown.

The breaker runs on the virtual clock, so the cycle is deterministic and
its transitions are assertable in tests to the exact tick.  Wear-fed
*brownout* is deliberately kept out of this class: steering writes away
from a worn shard is an admission-time routing decision (see
:meth:`repro.serve.engine.ServiceEngine`), not a health state — a
browned-out shard still serves reads and steered-in traffic fine.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import ConfigurationError

#: Breaker states, as reported by :attr:`CircuitBreaker.state`.
BREAKER_STATES: Tuple[str, ...] = ("closed", "open", "half-open")


class CircuitBreaker:
    """Consecutive-failure breaker on the virtual clock."""

    __slots__ = ("threshold", "cooldown", "state", "failures",
                 "opened_at", "probing", "opened", "closed_after_probe")

    def __init__(self, threshold: int, cooldown: int) -> None:
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if cooldown < 1:
            raise ConfigurationError("breaker cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0
        #: True while the single half-open probe is in flight.
        self.probing = False
        #: Times this breaker tripped open (telemetry).
        self.opened = 0
        #: Times a probe success closed it again (telemetry).
        self.closed_after_probe = 0

    def admit(self, now: int) -> str:
        """Admission decision at tick *now*: ``ok``/``probe``/``fast-fail``.

        Returning ``probe`` transitions the breaker to half-open and
        claims the probe slot — the caller must mark the admitted request
        as the probe and report its fate via :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state == "closed":
            return "ok"
        if self.state == "open" and now - self.opened_at >= self.cooldown:
            self.state = "half-open"
        if self.state == "half-open" and not self.probing:
            self.probing = True
            return "probe"
        return "fast-fail"

    def record_success(self, probe: bool) -> None:
        """A request served fine; a probe success closes the breaker."""
        if probe:
            self.probing = False
            self.state = "closed"
            self.closed_after_probe += 1
        self.failures = 0

    def record_failure(self, now: int, probe: bool) -> None:
        """A request failed at the shard; may trip or re-open the breaker."""
        if probe:
            self.probing = False
            self._trip(now)
            return
        self.failures += 1
        if self.state == "closed" and self.failures >= self.threshold:
            self._trip(now)

    def _trip(self, now: int) -> None:
        self.state = "open"
        self.opened_at = now
        self.failures = 0
        self.opened += 1


__all__ = ["CircuitBreaker", "BREAKER_STATES"]
