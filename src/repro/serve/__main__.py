"""``python -m repro.serve`` — run one serving campaign and report SLOs.

Examples::

    # 4 shards, zipf traffic, shard 1 killed mid-run, degraded failover
    python -m repro.serve --shards 4 --clients 8 --requests 2000 \\
        --kill-shard 1 --kill-at 300 --jobs 2

    # breaker exercise: shard 0 stalls for 12 requests, then recovers
    python -m repro.serve --stall-shard 0 --stall-at 100 \\
        --stall-requests 12

    # save the full result (config + snapshot + SLO report) as JSON
    python -m repro.serve --requests 500 --json slo.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..errors import ReproError
from ..faultinject import FaultAction, FaultSchedule
from .config import (ADMISSION_MODES, ARRIVAL_PROCESSES, SERVE_POLICIES,
                     SERVE_WORKLOADS, ServeConfig)
from .engine import ServiceEngine, ServiceResult


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Deterministic online serving over a shard array: "
                    "admission control, breakers, degraded failover.")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--shard-blocks", type=int, default=512)
    parser.add_argument("--page-blocks", type=int, default=16)
    parser.add_argument("--interleave", choices=("block", "page"),
                        default="block")
    parser.add_argument("--policy", choices=SERVE_POLICIES,
                        default="degraded")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=2_000)
    parser.add_argument("--workload", choices=SERVE_WORKLOADS,
                        default="zipf")
    parser.add_argument("--trace", type=str, default=None,
                        help="recorded repro.workloads trace to replay "
                             "(implies --workload trace)")
    parser.add_argument("--zipf-exponent", type=float, default=1.0)
    parser.add_argument("--write-ratio", type=float, default=0.5)
    parser.add_argument("--arrival", choices=ARRIVAL_PROCESSES,
                        default="poisson")
    parser.add_argument("--think", type=int, default=4,
                        help="mean client think time in virtual ticks")
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--admission", choices=ADMISSION_MODES,
                        default="shed")
    parser.add_argument("--batch-max", type=int, default=8)
    parser.add_argument("--batch-window", type=int, default=2)
    parser.add_argument("--deadline", type=int, default=400,
                        help="per-request deadline budget in ticks")
    parser.add_argument("--retry-limit", type=int, default=None,
                        help="bounded retry budget "
                             "(default: the controller's READ_RETRY_LIMIT)")
    parser.add_argument("--brownout-wear", type=float, default=0.85)
    parser.add_argument("--mean-endurance", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1,
                        help="accounting-cell workers (results are "
                             "byte-identical at any value)")
    parser.add_argument("--kill-shard", type=int, default=None,
                        help="kill this shard mid-traffic")
    parser.add_argument("--kill-at", type=int, default=300,
                        help="shard-local write count of the kill")
    parser.add_argument("--stall-shard", type=int, default=None,
                        help="transiently stall this shard")
    parser.add_argument("--stall-at", type=int, default=100,
                        help="shard-local write count of the stall")
    parser.add_argument("--stall-requests", type=int, default=8,
                        help="requests the stalled shard swallows")
    parser.add_argument("--balance", action="store_true",
                        help="steer hot writes away from high-risk "
                             "shards (repro.balance)")
    parser.add_argument("--rebalance-every", type=int, default=200,
                        help="served writes between steering checkpoints")
    parser.add_argument("--remap-budget", type=int, default=8,
                        help="max hot/cold swaps per steering checkpoint")
    parser.add_argument("--add-shard-at", type=int, default=None,
                        help="issued-request count at which a fresh "
                             "shard joins the array, live")
    parser.add_argument("--json", type=str, default=None,
                        help="write the full result as JSON to this path")
    parser.add_argument("--quiet", action="store_true")
    return parser


def config_of(args: argparse.Namespace) -> ServeConfig:
    kwargs = dict(
        num_shards=args.shards, shard_blocks=args.shard_blocks,
        page_blocks=args.page_blocks, interleave=args.interleave,
        policy=args.policy, clients=args.clients,
        total_requests=args.requests, workload=args.workload,
        zipf_exponent=args.zipf_exponent, write_ratio=args.write_ratio,
        arrival=args.arrival, think_ticks=args.think,
        queue_depth=args.queue_depth, admission=args.admission,
        batch_max=args.batch_max, batch_window=args.batch_window,
        deadline_ticks=args.deadline, brownout_wear=args.brownout_wear,
        mean_endurance=args.mean_endurance, seed=args.seed,
        balance=args.balance, rebalance_every=args.rebalance_every,
        remap_budget=args.remap_budget, add_shard_at=args.add_shard_at)
    if args.retry_limit is not None:
        kwargs["retry_limit"] = args.retry_limit
    if args.trace is not None:
        kwargs["workload"] = "trace"
        kwargs["trace_path"] = args.trace
    return ServeConfig(**kwargs)


def schedule_of(args: argparse.Namespace) -> Optional[FaultSchedule]:
    """Combine the CLI's kill/stall switches into one fault schedule."""
    actions: List[FaultAction] = []
    if args.kill_shard is not None:
        actions.append(FaultAction(
            "fail-block", at_write=args.kill_at,
            das=tuple(range(args.shard_blocks)), shard=args.kill_shard))
    if args.stall_shard is not None:
        actions.append(FaultAction(
            "shard-stall", at_write=args.stall_at,
            requests=args.stall_requests, shard=args.stall_shard))
    if not actions:
        return None
    return FaultSchedule(actions=tuple(actions), seed=None, name="serve-cli")


def render(result: ServiceResult) -> str:
    """Human-readable SLO summary."""
    report = result.report
    lines = [
        f"served {report['counts']['issued']} requests over "
        f"{result.duration} virtual ticks "
        f"({report['throughput']:.4f} req/tick)",
        f"shards: {report['shards']['live']}/{report['shards']['total']} "
        f"live",
    ]
    for kind in ("read", "write"):
        table = report["latency"].get(kind)
        if table:
            quantiles = "  ".join(f"{label}={value:.1f}"
                                  for label, value in table.items())
            lines.append(f"latency[{kind}] ticks: {quantiles}")
    counts = report["counts"]
    lines.append("outcomes: " + "  ".join(
        f"{name}={counts[name]}"
        for name in ("ok", "shed", "deadline", "error", "failed")))
    resilience = report["resilience"]
    lines.append("resilience: " + "  ".join(
        f"{name}={resilience[name]}"
        for name in ("retries", "failover", "steered", "stalled",
                     "breaker_opened", "breaker_closed", "deaths")))
    counters = result.snapshot.get("counters", {})
    if "serve.remap_swaps" in counters or "serve.migrated" in counters:
        lines.append(
            f"balance: {counters.get('serve.remap_swaps', 0)} swaps, "
            f"{counters.get('serve.shards_added', 0)} shard(s) added, "
            f"{counters.get('serve.migrated', 0)} addresses migrated")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_of(args)
        engine = ServiceEngine(config, schedule=schedule_of(args))
        result = engine.run(jobs=args.jobs)
    except ReproError as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — a bad flag combination becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
    if not args.quiet:
        print(render(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
