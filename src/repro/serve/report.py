"""The SLO report: quantiles, throughput, and accounting from telemetry.

Everything in the report derives from the *merged* snapshot — never
from engine-private state — so the same report can be recomputed
offline from a saved snapshot artifact (``python -m repro.telemetry
summarize`` reads the same file), and so the report is byte-identical
whenever the snapshot is.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..telemetry import SLO_QUANTILES, quantile_label, snapshot_quantiles
from .config import ServeConfig
from .requests import OUTCOMES


def _counter(snapshot: Mapping[str, Mapping[str, Any]], name: str) -> Any:
    return snapshot.get("counters", {}).get(name, 0)


def _gauge(snapshot: Mapping[str, Mapping[str, Any]], name: str) -> Any:
    return snapshot.get("gauges", {}).get(name, 0)


def build_report(snapshot: Mapping[str, Mapping[str, Any]],
                 config: ServeConfig) -> Dict[str, Any]:
    """Derive the SLO report from a merged telemetry snapshot."""
    quantiles = snapshot_quantiles(snapshot, SLO_QUANTILES)
    labels = [quantile_label(q) for q in SLO_QUANTILES]
    latency: Dict[str, Dict[str, float]] = {}
    for kind in ("read", "write"):
        table = quantiles.get(f"serve.latency.{kind}")
        if table is not None:
            latency[kind] = {label: table[label] for label in labels}
    duration = _gauge(snapshot, "serve.duration")
    ok = _counter(snapshot, "serve.ok")
    throughput = (float(ok) / float(duration)) if duration else 0.0
    counts = {outcome: _counter(snapshot, f"serve.{outcome}")
              for outcome in OUTCOMES}
    counts["issued"] = _counter(snapshot, "serve.issued")
    return {
        "latency": latency,
        "throughput": throughput,
        "duration": duration,
        "counts": counts,
        "resilience": {
            "retries": _counter(snapshot, "serve.retries"),
            "retries_exhausted": _counter(snapshot,
                                          "serve.retries_exhausted"),
            "failover": _counter(snapshot, "serve.failover"),
            "steered": _counter(snapshot, "serve.steered"),
            "stalled": _counter(snapshot, "serve.stalled"),
            "blocked": _counter(snapshot, "serve.blocked"),
            "deadline_miss": _counter(snapshot, "serve.deadline_miss"),
            "breaker_fast_fail": _counter(snapshot,
                                          "serve.breaker_fast_fail"),
            "breaker_probes": _counter(snapshot, "serve.breaker_probes"),
            "breaker_opened": _counter(snapshot, "serve.breaker_opened"),
            "breaker_closed": _counter(snapshot, "serve.breaker_closed"),
            "deaths": _counter(snapshot, "serve.deaths"),
        },
        "shards": {
            # Read from the snapshot, not the config: elastic scale-out
            # can grow the array past its configured size mid-run.
            "total": _gauge(snapshot, "serve.shards") or config.num_shards,
            "live": _gauge(snapshot, "serve.live_shards"),
        },
    }


__all__ = ["build_report"]
