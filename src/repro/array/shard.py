"""One array shard: an independent chip + WL + recovery stack in a cell.

:func:`run_shard_cell` is the module-level grid-cell function the
:class:`~repro.experiments.parallel.GridRunner` executes (possibly in a
worker process, which re-imports it by its dotted name).  Everything it
needs arrives as plain JSON-able data — the segment tables of its
:class:`~repro.array.trace.SegmentedTrace`, a per-shard
:class:`~repro.faultinject.FaultSchedule` as canonical JSON — and
everything it returns is plain data, so the serial and pooled paths are
bit-for-bit identical (the harness's standing guarantee).

Seeding discipline: each shard receives one integer seed derived by
:func:`shard_seed` from the array seed and the shard index **only** —
never from the re-decode round — so re-running a surviving shard with
extended segments replays its life prefix byte-identically.

Telemetry: the per-shard snapshot is filtered through
:func:`deterministic_snapshot` before leaving the cell — phase timers
record wall-clock seconds, which would make the merged array snapshot
differ between runs; their deterministic ``.calls`` twins stay.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..ecc import ECP
from ..config import StartGapConfig
from ..faultinject import FaultSchedule, ScheduleDriver
from ..pcm import AddressGeometry, EnduranceModel, PCMChip
from ..rng import SeedLike, derive_rng, spawn_seed
from ..sim.batched import register_batchable
from ..sim.fast import FastConfig, FastEngine
from ..telemetry import TelemetrySession, attach_fast
from ..wl import StartGap
from .trace import SegmentedTrace


def shard_seed(array_seed: SeedLike, shard: int) -> int:
    """The shard's root seed: a function of array seed and shard id only."""
    return spawn_seed(derive_rng(array_seed, f"array-shard-{shard}"))


def deterministic_snapshot(snapshot: Dict[str, Dict[str, object]],
                           ) -> Dict[str, Dict[str, object]]:
    """Drop wall-clock phase counters so snapshots are run-stable.

    ``phase.<name>.seconds`` counters measure real elapsed time and differ
    between otherwise identical runs; every other metric in a seeded
    shard run is deterministic (``phase.<name>.calls`` included).
    """
    counters = {name: value
                for name, value in snapshot.get("counters", {}).items()
                if not (name.startswith("phase.")
                        and name.endswith(".seconds"))}
    return {"counters": counters,
            "gauges": dict(snapshot.get("gauges", {})),
            "histograms": dict(snapshot.get("histograms", {}))}


def build_shard_cell(shard: int, seed: int, device_blocks: int,
                     mean_endurance: float, endurance_cov: float,
                     max_order: int, ecp_k: int, psi: int,
                     batch_writes: int, recovery: str, dead_fraction: float,
                     page_blocks: int, segments: list,
                     max_writes: Optional[int], schedule: Optional[str],
                     telemetry: bool, label: str,
                     ) -> tuple:
    """Assemble one shard stack; returns ``(engine, context)``.

    ``segments`` is a list of ``[start_write, [probabilities...]]`` pairs
    (the JSON form of the shard's segmented local trace); ``schedule`` is
    a shard-local fault schedule as canonical JSON, already projected by
    :func:`repro.faultinject.for_shard`.
    """
    geometry = AddressGeometry(num_blocks=device_blocks, block_bytes=64,
                               page_bytes=64 * page_blocks)
    endurance = EnduranceModel(num_blocks=device_blocks,
                               mean=mean_endurance, cov=endurance_cov,
                               max_order=max_order,
                               seed=spawn_seed(derive_rng(seed, "endurance")))
    chip = PCMChip(geometry, ECP(endurance, ecp_k))
    wl = StartGap(device_blocks, config=StartGapConfig(
        psi=psi, seed=spawn_seed(derive_rng(seed, "startgap"))))
    tables: List[tuple] = [
        (int(start), np.asarray(probabilities, dtype=np.float64))
        for start, probabilities in segments]
    trace = SegmentedTrace(tables, name=f"s{shard}",
                           seed=spawn_seed(derive_rng(seed, "trace")))
    config = FastConfig(recovery=recovery, dead_fraction=dead_fraction,
                        batch_writes=batch_writes, max_writes=max_writes,
                        blocks_per_page=page_blocks,
                        seed=spawn_seed(derive_rng(seed, "engine")))
    engine = FastEngine(chip, wl, trace, config,
                        label=label or f"shard-{shard}")
    if schedule is not None:
        ScheduleDriver(FaultSchedule.from_json(schedule)).attach_fast(engine)
    session = TelemetrySession() if telemetry else None
    if session is not None:
        attach_fast(session, engine)
    return engine, (shard, session)


def finish_shard_cell(engine: FastEngine, summary: object,
                      context: tuple) -> dict:
    """Turn a completed shard engine into the cell's plain-data record."""
    shard, session = context
    report = engine.end_of_life_report()
    assert report.stop is not None
    snapshot = (deterministic_snapshot(session.registry.snapshot())
                if session is not None else None)
    return {"shard": shard,
            "stop": report.stop.cause.value,
            "local_writes": engine.total_writes,
            "virtual_blocks": engine.ospool.virtual_blocks,
            "series": engine.series.to_payload(),
            "report": report.as_dict(),
            "snapshot": snapshot}


def run_shard_cell(**kwargs: object) -> dict:
    """Run one shard stack to its stop condition; return plain data."""
    engine, context = build_shard_cell(**kwargs)  # type: ignore[arg-type]
    engine.run()
    return finish_shard_cell(engine, None, context)


register_batchable(f"{__name__}:run_shard_cell",
                   build_shard_cell, finish_shard_cell)


def idle_result(shard: int, virtual_blocks: int) -> dict:
    """Synthetic record for a shard that receives no traffic.

    A shard whose share of the global distribution is zero never wears
    and never advances its local clock; running an engine for it would
    require a drawable distribution it does not have.  The record mirrors
    :func:`run_shard_cell`'s shape with a pristine, zero-write life.
    """
    return {"shard": shard,
            "stop": "max-writes",
            "local_writes": 0,
            "virtual_blocks": virtual_blocks,
            "series": {"writes": [], "survival": [], "usable": [],
                       "avg_access": []},
            "report": {"stop": "max-writes: no traffic decoded to shard",
                       "total_writes": 0, "failed_fraction": 0.0,
                       "usable_fraction": 1.0, "os_interruptions": 0,
                       "victimized_writes": 0, "pages_acquired": 0,
                       "spares_available": 0, "linked_blocks": 0,
                       "pa_da_loops": 0, "crashes_recovered": 0},
            "snapshot": None}
