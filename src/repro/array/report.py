"""Array-level end-of-life reporting: per-shard census + aggregate.

Extends the single-chip :class:`~repro.sim.stop.EndOfLifeReport` with the
facts only an array has: the end-of-life policy in force, which shards
died (and at which point of the *global* write clock), and a full
per-shard census so a campaign can see exactly how the array degraded —
which device went first, how much traffic it had absorbed, and what the
survivors were left carrying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.stop import EndOfLifeReport


@dataclass(frozen=True)
class ShardCensus:
    """One shard's contribution to the array's end-of-life picture."""

    #: Shard index in the decoder's round-robin order.
    shard: int
    #: Fraction of global traffic decoded to this shard at boot.
    share: float
    #: Fraction it carried at the end (grows as it inherits dead shards').
    final_share: float
    #: Software writes this shard serviced over the whole array life.
    local_writes: int
    #: The shard engine's stop cause (``"max-writes"`` = outlived the array).
    stop: str
    #: Global write-clock estimate of this shard's death (None = survived).
    died_at_global: Optional[int]
    #: The shard's own :meth:`~repro.sim.stop.EndOfLifeReport.as_dict`.
    report: Dict[str, object]


@dataclass(frozen=True)
class ArrayEndOfLifeReport(EndOfLifeReport):
    """End-of-life report for a whole shard array.

    The inherited aggregate fields are array-wide: ``total_writes`` sums
    every shard's serviced writes, the fractions are capacity-weighted
    means (a dead shard contributes zero usable space), and the counters
    (OS interruptions, pages acquired, ...) are sums.  ``as_dict`` is
    inherited — the census nests as plain data.
    """

    #: End-of-life policy in force (``"fail-stop"`` or ``"degraded"``).
    policy: str = "degraded"
    #: Decoder layout (``"block"`` or ``"page"``).
    interleave: str = "block"
    num_shards: int = 0
    #: Re-decode rounds the array went through (1 = nobody died).
    rounds: int = 0
    #: Shards that died, in death order on the global clock.
    dead_shards: Tuple[int, ...] = ()
    shards: Tuple[ShardCensus, ...] = ()
