"""Global workloads sized to an array's decoded address space.

The single-chip trace generators stay usable as-is — these helpers only
size them to a decoder's global space, plus the one workload that needs
the decoder itself: the *single-shard hot-spot attack*, which aims all of
its hot traffic at the addresses one shard owns.  Under block
interleaving a uniform hot set spreads across every device; an attacker
who knows the layout can instead concentrate wear on one device and kill
the array's weakest link — the scenario the ``degraded`` policy exists
for.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike
from ..traces import DistributionTrace, hotspot_distribution, zipf_distribution
from .decoder import InterleavedDecoder


def uniform_workload(decoder: InterleavedDecoder,
                     seed: SeedLike = None) -> DistributionTrace:
    """Uniform writes over the array's global space."""
    size = decoder.global_blocks
    return DistributionTrace(np.full(size, 1.0 / size), name="uniform",
                             seed=seed)


def hotspot_workload(decoder: InterleavedDecoder, cov: float = 3.0,
                     seed: SeedLike = None) -> DistributionTrace:
    """Clustered hot-set workload over the global space (target CoV)."""
    return hotspot_distribution(decoder.global_blocks, cov, seed=seed)


def zipf_workload(decoder: InterleavedDecoder, exponent: float = 1.0,
                  seed: SeedLike = None) -> DistributionTrace:
    """Zipf-popularity workload over the global space.

    The seeded rank permutation scatters the popular head across shards,
    so unlike :func:`shard_attack_workload` the skew is *not* aligned with
    the layout — the realistic serving-traffic case, where interleaving
    soaks up most (but not all) of the per-device imbalance.
    """
    return zipf_distribution(decoder.global_blocks, exponent=exponent,
                             seed=seed)


def trace_workload(decoder: InterleavedDecoder, path: str,
                   seed: SeedLike = None) -> DistributionTrace:
    """Empirical write distribution of a recorded workload trace.

    Loads a :mod:`repro.workloads` trace file and folds its *write*
    records into per-block counts over the decoder's global space — the
    stationary view the batch lifetime engines consume.  The trace must
    cover exactly the decoded space: replaying a file against a
    different geometry would silently re-route every address.
    """
    from ..workloads import TraceReplay  # local: avoid a package cycle
    replay = TraceReplay.load(path)
    if replay.virtual_blocks != decoder.global_blocks:
        raise ConfigurationError(
            f"trace covers {replay.virtual_blocks} blocks, the decoder "
            f"decodes {decoder.global_blocks}")
    counts = replay.write_distribution()
    return DistributionTrace(counts.astype(np.float64),
                             name=f"trace-{replay.name}", seed=seed)


def shard_attack_workload(decoder: InterleavedDecoder, shard: int = 0,
                          hot_share: float = 0.9,
                          seed: SeedLike = None) -> DistributionTrace:
    """Layout-aware attack: *hot_share* of the traffic hits one shard.

    The attacker writes uniformly over the global addresses that decode
    to shard *shard*, with a thin uniform background over the whole array
    as camouflage — the array analogue of the single-chip hot-spot
    attacks, and the fastest way to force a whole-shard death.
    """
    if not 0.0 < hot_share <= 1.0:
        raise ConfigurationError("hot_share must be in (0, 1]")
    size = decoder.global_blocks
    probabilities = np.full(size, (1.0 - hot_share) / size)
    owned = decoder.encode(shard,
                           np.arange(decoder.shard_blocks, dtype=np.int64))
    probabilities[owned] += hot_share / decoder.shard_blocks
    return DistributionTrace(probabilities, name=f"attack-s{shard}",
                             seed=seed)
