"""The array engine: shared-nothing shards behind one decoder.

:class:`ArrayEngine` services a single global write distribution with an
array of independent shard stacks (chip + Start-Gap + recovery), each a
full :class:`~repro.sim.fast.FastEngine` run as a grid cell of the
parallel harness.  Shards never share state; what couples them is pure
arithmetic:

* the :class:`~repro.array.decoder.InterleavedDecoder` projects the
  global distribution into per-shard local mass vectors (a shard's
  *share* is its mass);
* a **global write clock** relates the shards: a shard with share ``f``
  advances its local clock ``f`` writes per global write, giving each
  shard a piecewise-linear local<->global map that the engine maintains
  as shares change.

End-of-life is decided on the global clock.  Each *round*, every live
shard runs to its own stop condition; the earliest death on the global
clock wins (ties broken by shard id):

``fail-stop``
    The array dies with its first shard.  Survivors are re-run capped at
    the death point (epoch-aligned) so the merged result describes the
    array at the moment it stopped.
``degraded``
    The dead shard drops out of the decoder: its local mass re-decodes
    round-robin onto the survivors, whose traces gain a new segment at
    their next epoch boundary, and the array keeps serving at reduced
    usable capacity until the last shard dies (or the budget runs out).

Determinism: per-shard seeds derive from the array seed and shard index
only, segment boundaries and write caps are quantized to whole epochs,
and per-segment trace generators are independent — so re-running a
survivor with appended segments replays its prefix byte-identically, and
the whole array result (merged telemetry snapshot included) is invariant
under ``jobs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Set,
                    Tuple)

import numpy as np

from ..errors import ConfigurationError
from ..experiments.parallel import Cell, GridRunner, ProgressFn
from ..faultinject import FaultSchedule, for_shard
from ..rng import SeedLike
from ..sim.metrics import LifetimeSeries, SamplePoint
from ..sim.stop import StopCause, StopReason
from ..telemetry import TelemetrySession, merge_snapshots
from ..traces.base import DistributionTrace
from ..units import blocks_of_pages, ceil_div, page_count
from .decoder import INTERLEAVE_MODES, InterleavedDecoder
from .report import ArrayEndOfLifeReport, ShardCensus
from .shard import idle_result, run_shard_cell, shard_seed

if TYPE_CHECKING:  # pragma: no cover - cycle guard: balance wraps our decoder
    from ..balance import BalancedDecoder, LevelerPolicy, ShardHealthModel

#: Array end-of-life policies.
ARRAY_POLICIES: Tuple[str, ...] = ("fail-stop", "degraded")

#: Dotted reference GridRunner workers re-import for each shard cell.
_CELL_FN = f"{run_shard_cell.__module__}:{run_shard_cell.__name__}"


@dataclass
class ArrayConfig:
    """Parameters of a homogeneous shard array."""

    num_shards: int = 4
    #: Device blocks per shard chip (must be a whole number of pages).
    shard_blocks: int = 1024
    interleave: str = "block"
    policy: str = "degraded"
    #: OS page size in blocks (shared by decoder and every shard stack).
    page_blocks: int = 64
    mean_endurance: float = 800.0
    endurance_cov: float = 0.2
    max_order: int = 16
    ecp_k: int = 6
    psi: int = 12
    recovery: str = "reviver"
    dead_fraction: float = 0.3
    #: Software writes per shard epoch (segment boundaries are quantized
    #: to this, so prefix replay is draw-for-draw identical).
    batch_writes: int = 4000
    #: Global write budget (None = run the array to death).
    max_writes: Optional[int] = None
    telemetry: bool = True
    seed: SeedLike = None
    #: Enable risk-steered inter-shard leveling (the balance subsystem).
    balance: bool = False
    #: Max hot/cold swaps per rebalance round (2 migration writes each).
    remap_budget: int = 8
    #: Global writes between steering checkpoints (None with ``balance``:
    #: steer only at shard-death boundaries).
    balance_every: Optional[int] = None
    #: Minimum risk spread before the leveler engages.
    min_risk_gap: float = 0.02
    #: Global write count at which one fresh shard joins (None = never).
    add_shard_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in ARRAY_POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; "
                f"choose from {ARRAY_POLICIES}")
        if self.interleave not in INTERLEAVE_MODES:
            raise ConfigurationError(
                f"unknown interleave {self.interleave!r}; "
                f"choose from {INTERLEAVE_MODES}")
        if self.num_shards < 1:
            raise ConfigurationError("array needs at least one shard")
        if self.shard_blocks < 2 * self.page_blocks:
            # Start-Gap spends one line on the gap, which costs the
            # software space a whole page; below two pages nothing is
            # left to serve.
            raise ConfigurationError(
                "shard_blocks must be at least two OS pages")
        if self.remap_budget < 0:
            raise ConfigurationError("remap_budget cannot be negative")
        if self.min_risk_gap < 0:
            raise ConfigurationError("min_risk_gap cannot be negative")
        if self.balance_every is not None and self.balance_every < 1:
            raise ConfigurationError("balance_every must be >= 1 writes")
        if self.add_shard_at is not None and self.add_shard_at < 1:
            raise ConfigurationError("add_shard_at must be >= 1 writes")

    @property
    def software_blocks(self) -> int:
        """Software-visible blocks per shard (whole pages after the gap)."""
        return blocks_of_pages(
            page_count(self.shard_blocks - 1, self.page_blocks),
            self.page_blocks)


@dataclass
class _ShardState:
    """Book-keeping the engine keeps per shard between rounds."""

    #: Current local mass vector (in global-probability units).
    mass: np.ndarray
    #: ``(start_write, mass_vector)`` trace segments, epoch-aligned.
    segments: List[Tuple[int, np.ndarray]]
    #: ``(local_start, global_start, share)`` pieces of the clock map.
    pieces: List[Tuple[int, float, float]]
    result: Optional[dict] = None
    dead: bool = False
    death_global: Optional[float] = None
    #: Fail-stop: epoch-aligned local write cap for the truncation re-run.
    forced_cap: Optional[int] = None

    @property
    def share(self) -> float:
        """Current share of global traffic."""
        return float(self.mass.sum())


@dataclass
class ArrayResult:
    """Everything one array run produces."""

    label: str
    config: ArrayConfig
    #: Merged survival/usable series on the global write clock.
    series: LifetimeSeries
    #: Associatively merged per-shard telemetry (plus array counters).
    snapshot: Dict[str, Dict[str, object]]
    report: ArrayEndOfLifeReport
    #: Raw per-shard cell records, by shard index.
    shards: List[dict] = field(default_factory=list)
    rounds: int = 0

    def as_dict(self) -> dict:
        """JSON-ready form for the CLI and experiment artifacts."""
        return {"label": self.label,
                "policy": self.config.policy,
                "interleave": self.config.interleave,
                "num_shards": self.report.num_shards,
                "rounds": self.rounds,
                "report": self.report.as_dict(),
                "series": self.series.to_payload(),
                "snapshot": self.snapshot}


class ArrayEngine:
    """Round-based lifetime simulation of a shard array."""

    def __init__(self, config: ArrayConfig, trace: DistributionTrace,
                 label: str = "array", jobs: int = 1, batch: int = 1,
                 schedule: Optional[FaultSchedule] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        self.config = config
        self.label = label
        self.jobs = jobs
        self.batch = batch
        self.schedule = schedule
        self.progress = progress
        self.decoder = InterleavedDecoder(
            config.num_shards, config.software_blocks,
            interleave=config.interleave, page_blocks=config.page_blocks)
        if trace.virtual_blocks < self.decoder.global_blocks:
            raise ConfigurationError(
                f"trace covers {trace.virtual_blocks} blocks, the array "
                f"decodes {self.decoder.global_blocks}; build the workload "
                f"for the array's global space")
        folded = trace.restricted_to(self.decoder.global_blocks)
        self.probabilities = folded.probabilities
        self.result: Optional[ArrayResult] = None
        #: True when the run goes through the balance control plane.
        self.balanced = (config.balance
                         or config.add_shard_at is not None)
        self.bdecoder: Optional["BalancedDecoder"] = None
        self.health: Optional["ShardHealthModel"] = None
        self._states: List[_ShardState] = []
        self._seeds: List[int] = []
        self._migration_writes = 0
        self._remap_swaps = 0
        self._shards_added = 0

    # -------------------------------------------------------------- the clock

    def _global_at_local(self, state: _ShardState, local: int) -> float:
        """Global write count when *state*'s local clock reads *local*."""
        for start, global_start, share in reversed(state.pieces):
            if local >= start:
                if share <= 0:
                    return global_start
                return global_start + (local - start) / share
        return 0.0

    def _local_at_global(self, state: _ShardState, at: float) -> float:
        """*state*'s local clock when the global clock reads *at*."""
        for start, global_start, share in reversed(state.pieces):
            if at >= global_start:
                return start + share * (at - global_start)
        return 0.0

    def _epoch_ceil(self, value: float) -> int:
        """Smallest whole-epoch local write count >= *value*."""
        whole = max(0, int(math.ceil(value - 1e-9)))
        return ceil_div(whole, self.config.batch_writes) \
            * self.config.batch_writes

    # ------------------------------------------------------------------- run

    def run(self) -> ArrayResult:
        """Simulate the array to its end of life; return the merged result."""
        if self.balanced:
            return self._run_balanced()
        cfg = self.config
        states = [self._boot_state(i) for i in range(cfg.num_shards)]
        seeds = [shard_seed(cfg.seed, i) for i in range(cfg.num_shards)]
        dead_order: List[int] = []
        pending = [i for i in range(cfg.num_shards) if states[i].share > 0]
        for i in range(cfg.num_shards):
            if states[i].share <= 0:
                states[i].result = idle_result(i, cfg.software_blocks)
        rounds = 0
        stop: Optional[StopReason] = None
        while stop is None:
            rounds += 1
            self._run_round(rounds, pending, states, seeds)
            deaths: List[Tuple[float, int]] = []
            for i, state in enumerate(states):
                record = state.result
                if (state.dead or record is None
                        or record["stop"] == StopCause.MAX_WRITES.value):
                    continue
                deaths.append((self._global_at_local(
                    state, int(record["local_writes"])), i))
            deaths.sort()
            if not deaths:
                stop = StopReason(StopCause.MAX_WRITES)
                break
            death_global, victim = deaths[0]
            states[victim].dead = True
            states[victim].death_global = death_global
            dead_order.append(victim)
            live = [i for i in range(cfg.num_shards) if not states[i].dead]
            if cfg.policy == "fail-stop":
                pending = self._truncate_survivors(states, live,
                                                   death_global)
                if pending:
                    rounds += 1
                    self._run_round(rounds, pending, states, seeds)
                stop = StopReason(
                    StopCause.SHARD_FAILED,
                    f"shard {victim} at ~{int(death_global):,} "
                    f"global writes")
                break
            if not live:
                stop = StopReason(StopCause.EXHAUSTED, "all shards dead")
                break
            pending = self._redistribute(states, victim, live, death_global)
        return self._assemble(states, dead_order, stop, rounds)

    # ----------------------------------------------------------- balanced run

    def _run_balanced(self) -> ArrayResult:
        """The balance control plane: steering + elastic growth.

        Same round structure as the legacy loop, with two additions: a
        rolling *horizon* (the next scheduled control event on the
        global clock) caps every cell run, and when a round ends with
        every live shard parked at the horizon the event fires — feed
        the health model, add the scheduled shard, plan bounded swaps —
        before the loop resumes.  Deaths always take priority over
        control events, and an event that a death overtakes slips to the
        death's global time so segment boundaries stay monotone.
        """
        from ..balance.health import ShardHealthModel
        from ..balance.leveler import LevelerPolicy
        from ..balance.remap import BalancedDecoder
        cfg = self.config
        bdec = BalancedDecoder(self.decoder)
        self.bdecoder = bdec
        health = ShardHealthModel(
            cfg.num_shards,
            endurance_budget=cfg.shard_blocks * cfg.mean_endurance,
            seed=cfg.seed)
        self.health = health
        policy = LevelerPolicy(budget=cfg.remap_budget,
                               min_gap=cfg.min_risk_gap)
        states = self._states = [self._boot_state(i)
                                 for i in range(cfg.num_shards)]
        seeds = self._seeds = [shard_seed(cfg.seed, i)
                               for i in range(cfg.num_shards)]
        dead_order: List[int] = []
        add_at = (float(cfg.add_shard_at)
                  if cfg.add_shard_at is not None else None)
        next_balance = (float(cfg.balance_every)
                        if cfg.balance and cfg.balance_every is not None
                        else None)
        rounds = 0
        stop: Optional[StopReason] = None
        while stop is None:
            horizon = self._next_horizon(add_at, next_balance)
            pending = self._pending_shards(states, horizon)
            rounds += 1
            self._run_round(rounds, pending, states, seeds, horizon=horizon)
            deaths: List[Tuple[float, int]] = []
            for i, state in enumerate(states):
                record = state.result
                if (state.dead or record is None
                        or record["stop"] == StopCause.MAX_WRITES.value):
                    continue
                deaths.append((self._global_at_local(
                    state, int(record["local_writes"])), i))
            deaths.sort()
            live = [i for i in range(len(states)) if not states[i].dead]
            self._observe_health(health, states, live)
            if deaths:
                death_global, victim = deaths[0]
                victim_record = states[victim].result
                victim_writes = (float(victim_record["local_writes"])
                                 if victim_record is not None else 0.0)
                health.observe(victim, victim_writes,
                               self._failed_fraction(victim_record),
                               dead=True)
                states[victim].dead = True
                states[victim].death_global = death_global
                dead_order.append(victim)
                live = [i for i in range(len(states))
                        if not states[i].dead]
                if cfg.policy == "fail-stop":
                    pending = self._truncate_survivors(states, live,
                                                       death_global)
                    if pending:
                        rounds += 1
                        self._run_round(rounds, pending, states, seeds)
                    stop = StopReason(
                        StopCause.SHARD_FAILED,
                        f"shard {victim} at ~{int(death_global):,} "
                        f"global writes")
                    break
                if not live:
                    stop = StopReason(StopCause.EXHAUSTED,
                                      "all shards dead")
                    break
                affected = self._rehome_victim(victim, live)
                if cfg.balance:
                    affected |= self._steer(health, live, policy)
                self._apply_masses(states, affected, death_global)
                # Control events a death overtakes slip to the death's
                # global time, keeping segment boundaries monotone.
                if add_at is not None:
                    add_at = max(add_at, death_global)
                if next_balance is not None:
                    next_balance = max(next_balance, death_global)
                continue
            if horizon is None:
                stop = StopReason(StopCause.MAX_WRITES)
                break
            affected = set()
            if add_at is not None and horizon >= add_at:
                affected |= self.add_shard(horizon)
                add_at = None
            if (cfg.balance and next_balance is not None
                    and horizon >= next_balance):
                affected |= self._steer(health, live, policy)
                assert cfg.balance_every is not None
                next_balance = horizon + float(cfg.balance_every)
            self._apply_masses(states, affected, horizon)
        return self._assemble(states, dead_order, stop, rounds)

    def _next_horizon(self, add_at: Optional[float],
                      next_balance: Optional[float]) -> Optional[float]:
        """Earliest scheduled control event still inside the budget."""
        candidates = [at for at in (add_at, next_balance) if at is not None]
        if not candidates:
            return None
        horizon = min(candidates)
        if (self.config.max_writes is not None
                and horizon >= float(self.config.max_writes)):
            return None
        return horizon

    def _pending_shards(self, states: List[_ShardState],
                        horizon: Optional[float]) -> List[int]:
        """Live shards whose recorded run does not reach the current cap."""
        pending = []
        for i, state in enumerate(states):
            if state.dead or state.share <= 0:
                if state.result is None:
                    state.result = idle_result(
                        i, self.config.software_blocks)
                continue
            record = state.result
            if record is None:
                pending.append(i)
                continue
            if record["stop"] != StopCause.MAX_WRITES.value:
                continue  # an unprocessed death: no re-run, no new cap
            if int(record["local_writes"]) != self._cap_for(state, horizon):
                pending.append(i)
        return pending

    def _observe_health(self, health: "ShardHealthModel",
                        states: List[_ShardState],
                        live: List[int]) -> None:
        """Feed every live shard's latest record into the health model."""
        for i in live:
            record = states[i].result
            if record is not None:
                health.observe(i, float(record["local_writes"]),
                               self._failed_fraction(record))

    @staticmethod
    def _failed_fraction(record: Optional[dict]) -> float:
        if record is None:
            return 0.0
        report = record.get("report", {})
        value = report.get("failed_fraction", 0.0) \
            if isinstance(report, dict) else 0.0
        return float(value) if isinstance(value, (int, float)) \
            and not isinstance(value, bool) else 0.0

    def _rehome_victim(self, victim: int, live: List[int]) -> Set[int]:
        """Degraded death through the elastic map; returns changed shards."""
        assert self.bdecoder is not None
        affected_addresses = self.bdecoder.rehome(victim, live)
        self._states[victim].mass = np.zeros_like(
            self._states[victim].mass)
        owners = self.bdecoder.shard_of(affected_addresses)
        return {int(s) for s in np.unique(np.asarray(owners))}

    def _steer(self, health: "ShardHealthModel", live: List[int],
               policy: "LevelerPolicy") -> Set[int]:
        """One bounded leveler round; returns the shards whose map changed."""
        from ..balance.leveler import plan_swaps
        assert self.bdecoder is not None
        swaps = plan_swaps(self.bdecoder, self.probabilities,
                           health.risks(), live, policy)
        affected: Set[int] = set()
        if swaps:
            self._remap_swaps += len(swaps)
            self._migration_writes += 2 * len(swaps)
            for hot, cold in swaps:
                affected.add(int(self.bdecoder.shard_of(hot)))
                affected.add(int(self.bdecoder.shard_of(cold)))
        return affected

    def add_shard(self, at_global: float) -> Set[int]:
        """Grow the array by one fresh shard at a round boundary.

        The new chip+reviver cell starts pristine with its local clock
        pinned to the global clock at *at_global*; the consistent-hash
        movers give it ~``1/(N+1)`` of the address space.  Returns the
        donor shards whose traffic changed (the new shard's own state is
        installed directly).
        """
        assert self.bdecoder is not None and self.health is not None
        cfg = self.config
        movers, donors = self.bdecoder.add_shard()
        new_index = len(self._states)
        self._seeds.append(shard_seed(cfg.seed, new_index))
        mass = self.bdecoder.local_mass(self.probabilities, new_index)
        state = _ShardState(
            mass=mass, segments=[(0, mass.copy())],
            pieces=[(0, float(at_global), float(mass.sum()))])
        if state.share <= 0:
            state.result = idle_result(new_index, cfg.software_blocks)
        self._states.append(state)
        self.health.add_shard()
        self._migration_writes += int(movers.size)
        self._shards_added += 1
        return {int(s) for s in np.unique(np.asarray(donors))}

    def _apply_masses(self, states: List[_ShardState],
                      affected: Iterable[int], at_global: float) -> None:
        """Re-project masses for *affected* shards at the event boundary."""
        assert self.bdecoder is not None
        for i in sorted(set(affected)):
            state = states[i]
            if state.dead:
                continue
            new_mass = self.bdecoder.local_mass(self.probabilities, i)
            boundary = self._epoch_ceil(
                self._local_at_global(state, at_global))
            boundary = max(boundary, state.segments[-1][0])
            global_at_boundary = max(
                at_global, self._global_at_local(state, boundary))
            state.mass = new_mass
            self._append_segment(state, boundary, new_mass.copy(),
                                 global_at_boundary)

    # ---------------------------------------------------------------- rounds

    def _boot_state(self, shard: int) -> _ShardState:
        mass = self.decoder.local_mass(self.probabilities, shard)
        return _ShardState(mass=mass, segments=[(0, mass.copy())],
                           pieces=[(0, 0.0, float(mass.sum()))])

    def _run_round(self, round_no: int, pending: List[int],
                   states: List[_ShardState], seeds: List[int],
                   horizon: Optional[float] = None) -> None:
        """Run the pending shards' cells and record their results.

        *horizon* (balanced runs) caps every cell at the epoch boundary
        covering that global write count, so a control event can fire
        with all live shards parked at the same point of the clock.
        """
        if not pending:
            return
        cells = []
        for i in pending:
            key = f"{self.label}/r{round_no}/s{i}"
            cells.append(Cell(key=key, fn=_CELL_FN,
                              kwargs=self._cell_kwargs(i, states[i],
                                                       seeds[i], horizon)))
        runner = GridRunner(jobs=self.jobs, progress=self.progress,
                            batch=self.batch)
        values = runner.run(cells)
        for i in pending:
            states[i].result = values[f"{self.label}/r{round_no}/s{i}"]

    def _cap_for(self, state: _ShardState,
                 horizon: Optional[float] = None) -> Optional[int]:
        """Epoch-aligned local write cap for one shard's next cell run."""
        cfg = self.config
        cap: Optional[int] = None
        if cfg.max_writes is not None:
            cap = self._epoch_ceil(
                self._local_at_global(state, float(cfg.max_writes)))
        if horizon is not None:
            capped = self._epoch_ceil(self._local_at_global(state, horizon))
            cap = capped if cap is None else min(cap, capped)
        if state.forced_cap is not None:
            cap = (state.forced_cap if cap is None
                   else min(cap, state.forced_cap))
        return cap

    def _cell_kwargs(self, shard: int, state: _ShardState, seed: int,
                     horizon: Optional[float] = None) -> dict:
        cfg = self.config
        cap = self._cap_for(state, horizon)
        schedule_json: Optional[str] = None
        if self.schedule is not None:
            schedule_json = for_shard(self.schedule, shard).to_json()
        segments = [[start, [float(x) for x in mass]]
                    for start, mass in state.segments]
        return dict(shard=shard, seed=seed,
                    device_blocks=cfg.shard_blocks,
                    mean_endurance=cfg.mean_endurance,
                    endurance_cov=cfg.endurance_cov,
                    max_order=cfg.max_order, ecp_k=cfg.ecp_k, psi=cfg.psi,
                    batch_writes=cfg.batch_writes, recovery=cfg.recovery,
                    dead_fraction=cfg.dead_fraction,
                    page_blocks=cfg.page_blocks, segments=segments,
                    max_writes=cap, schedule=schedule_json,
                    telemetry=cfg.telemetry,
                    label=f"{self.label}/s{shard}")

    def _truncate_survivors(self, states: List[_ShardState],
                            live: List[int],
                            death_global: float) -> List[int]:
        """Fail-stop: cap every survivor at the death point (epoch-aligned).

        Returns the shards that must re-run; a survivor whose previous
        cap already matches keeps its result.
        """
        pending = []
        for i in live:
            state = states[i]
            cap = self._epoch_ceil(
                self._local_at_global(state, death_global))
            assert state.result is not None
            if int(state.result["local_writes"]) != cap:
                state.forced_cap = cap
                pending.append(i)
        return pending

    def _redistribute(self, states: List[_ShardState], victim: int,
                      live: List[int], death_global: float) -> List[int]:
        """Degraded mode: re-decode the dead shard's mass onto survivors.

        Local address ``l`` of the dead shard re-homes to the survivor at
        round-robin position ``l mod len(live)``, at the same local
        position — deterministic, capacity-free, and spreading any hot
        set of the dead shard across every survivor.  Returns the shards
        whose traffic actually changed (only those re-run).
        """
        cfg = self.config
        dead_mass = states[victim].mass
        states[victim].mass = np.zeros_like(dead_mass)
        positions = np.arange(cfg.software_blocks, dtype=np.int64)
        pending = []
        for slot, survivor in enumerate(live):
            take = positions % len(live) == slot
            inherited = dead_mass[take]
            if inherited.sum() <= 0:
                continue
            state = states[survivor]
            state.mass = state.mass.copy()
            state.mass[take] += inherited
            boundary = self._epoch_ceil(
                self._local_at_global(state, death_global))
            global_at_boundary = max(
                death_global, self._global_at_local(state, boundary))
            self._append_segment(state, boundary, state.mass.copy(),
                                 global_at_boundary)
            pending.append(survivor)
        return pending

    def _append_segment(self, state: _ShardState, boundary: int,
                        mass: np.ndarray, global_start: float) -> None:
        """Extend a shard's trace and clock map at an epoch boundary.

        A boundary equal to the last segment's start *replaces* it — the
        shard had not consumed any of that segment yet (e.g. an idle
        shard inheriting its first traffic).
        """
        segments = list(state.segments)
        pieces = list(state.pieces)
        if segments and segments[-1][0] == boundary:
            segments[-1] = (boundary, mass)
            pieces[-1] = (boundary, global_start, float(mass.sum()))
        else:
            segments.append((boundary, mass))
            pieces.append((boundary, global_start, float(mass.sum())))
        state.segments = segments
        state.pieces = pieces

    # -------------------------------------------------------------- assembly

    def _assemble(self, states: List[_ShardState], dead_order: List[int],
                  stop: Optional[StopReason],
                  rounds: int) -> ArrayResult:
        cfg = self.config
        # A shard's boot-time share is its first trace segment's mass —
        # identical to the decoder projection for the initial shards,
        # and well-defined for shards added mid-run.
        base_shares = [float(state.segments[0][1].sum())
                       for state in states]
        census = []
        rescaled = []
        total_writes = 0
        for i, state in enumerate(states):
            record = state.result
            assert record is not None
            report = record["report"]
            local_writes = int(record["local_writes"])
            total_writes += local_writes
            died_at = (int(state.death_global)
                       if state.death_global is not None else None)
            census.append(ShardCensus(
                shard=i, share=base_shares[i], final_share=state.share,
                local_writes=local_writes, stop=str(record["stop"]),
                died_at_global=died_at, report=dict(report)))
            rescaled.append(self._global_series(i, state, record))
        merged = LifetimeSeries.merge(
            rescaled, access_weights=(base_shares
                                      if any(base_shares) else None),
            label=self.label)
        snapshot = self._merged_snapshot(states, dead_order, rounds,
                                         total_writes)
        report_out = self._array_report(states, census, dead_order, stop,
                                        rounds, total_writes)
        self.result = ArrayResult(
            label=self.label, config=cfg, series=merged, snapshot=snapshot,
            report=report_out,
            shards=[dict(s.result) for s in states if s.result is not None],
            rounds=rounds)
        return self.result

    def _global_series(self, shard: int, state: _ShardState,
                       record: dict) -> LifetimeSeries:
        """One shard's series rescaled onto the global write clock."""
        local = LifetimeSeries.from_payload(record["series"],
                                            label=f"s{shard}")
        points = [SamplePoint(
            int(round(self._global_at_local(state, p.writes))),
            p.survival, p.usable, p.avg_access) for p in local.points]
        if state.dead and state.death_global is not None:
            last = points[-1] if points else SamplePoint(0, 1.0, 1.0)
            # A dead shard serves nothing: its capacity is gone from the
            # array at the death point onward.
            points.append(SamplePoint(int(round(state.death_global)),
                                      last.survival, 0.0,
                                      last.avg_access))
        return LifetimeSeries(label=f"s{shard}", points=points)

    def _merged_snapshot(self, states: List[_ShardState],
                         dead_order: List[int], rounds: int,
                         total_writes: int,
                         ) -> Dict[str, Dict[str, object]]:
        merged: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for state in states:
            assert state.result is not None
            snapshot = state.result.get("snapshot")
            if snapshot:
                merged = merge_snapshots(merged, snapshot)
        extra: Dict[str, Dict[str, object]] = {
            "counters": {"array.rounds": rounds,
                         "array.shard-deaths": len(dead_order),
                         "array.writes": total_writes},
            "gauges": {"array.shards-live":
                       sum(1 for s in states if not s.dead)}}
        if self.balanced:
            extra["counters"]["balance.migration-writes"] = \
                self._migration_writes
            extra["counters"]["balance.remap-swaps"] = self._remap_swaps
            extra["counters"]["balance.shards-added"] = self._shards_added
        merged = merge_snapshots(merged, extra)
        if self.health is not None:
            session = TelemetrySession()
            self.health.publish(session)
            merged = merge_snapshots(merged,
                                     session.registry.snapshot())
        return merged

    def _array_report(self, states: List[_ShardState],
                      census: List[ShardCensus], dead_order: List[int],
                      stop: Optional[StopReason], rounds: int,
                      total_writes: int) -> ArrayEndOfLifeReport:
        cfg = self.config
        shards = len(states)

        def summed(name: str) -> int:
            return sum(int(self._num(c.report.get(name, 0)))
                       for c in census)

        failed = sum(float(self._num(c.report.get("failed_fraction", 0.0)))
                     for c in census) / shards
        usable = sum(
            0.0 if states[c.shard].dead
            else float(self._num(c.report.get("usable_fraction", 0.0)))
            for c in census) / shards
        return ArrayEndOfLifeReport(
            stop=stop, total_writes=total_writes,
            failed_fraction=failed, usable_fraction=usable,
            os_interruptions=summed("os_interruptions"),
            victimized_writes=summed("victimized_writes"),
            pages_acquired=summed("pages_acquired"),
            spares_available=summed("spares_available"),
            linked_blocks=summed("linked_blocks"),
            pa_da_loops=summed("pa_da_loops"),
            crashes_recovered=summed("crashes_recovered"),
            policy=cfg.policy, interleave=cfg.interleave,
            num_shards=shards, rounds=rounds,
            dead_shards=tuple(dead_order), shards=tuple(census))

    @staticmethod
    def _num(value: object) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"expected a number in a shard report, got {value!r}")
        return value
