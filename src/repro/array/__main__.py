"""CLI: run one shard-array campaign.

Examples::

    # 4-shard degraded-mode array under a clustered workload
    python -m repro.array --shards 4 --shard-blocks 512 --page-blocks 16 \
        --mean 300 --workload hotspot --jobs 2

    # single-shard hot-spot attack against a fail-stop array
    python -m repro.array --policy fail-stop --workload attack \
        --attack-shard 1

    # force a whole-shard death to exercise degraded operation
    python -m repro.array --kill-shard 2 --kill-at 8000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ConfigurationError, ReproError
from ..faultinject import FaultSchedule, shard_death_schedule
from ..traces import DistributionTrace
from .engine import (ARRAY_POLICIES, ArrayConfig, ArrayEngine, ArrayResult)
from .decoder import INTERLEAVE_MODES, InterleavedDecoder
from .workloads import (hotspot_workload, shard_attack_workload,
                        trace_workload, uniform_workload, zipf_workload)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.array",
        description="Simulate a sharded PCM array to its end of life.")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--shard-blocks", type=int, default=512,
                        help="device blocks per shard chip")
    parser.add_argument("--page-blocks", type=int, default=16,
                        help="OS page size in blocks")
    parser.add_argument("--interleave", choices=INTERLEAVE_MODES,
                        default="block")
    parser.add_argument("--policy", choices=ARRAY_POLICIES,
                        default="degraded")
    parser.add_argument("--recovery", choices=("reviver", "none"),
                        default="reviver")
    parser.add_argument("--workload",
                        choices=("uniform", "hotspot", "attack", "zipf",
                                 "trace"),
                        default="hotspot")
    parser.add_argument("--trace", type=str, default=None,
                        help="recorded repro.workloads trace to replay "
                             "(implies --workload trace); also prints "
                             "the per-shard stream digests")
    parser.add_argument("--cov", type=float, default=3.0,
                        help="hotspot workload write CoV")
    parser.add_argument("--zipf-exponent", type=float, default=1.0,
                        help="zipf workload rank exponent")
    parser.add_argument("--attack-shard", type=int, default=0)
    parser.add_argument("--hot-share", type=float, default=0.9)
    parser.add_argument("--mean", type=float, default=300.0,
                        help="mean block endurance (scaled)")
    parser.add_argument("--endurance-cov", type=float, default=0.2)
    parser.add_argument("--psi", type=int, default=12)
    parser.add_argument("--batch-writes", type=int, default=2_000)
    parser.add_argument("--max-writes", type=int, default=None,
                        help="global write budget (default: run to death)")
    parser.add_argument("--dead-fraction", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--batch", type=int, default=1,
                        help="shards per struct-of-arrays group (default 1: "
                             "per-shard engines)")
    parser.add_argument("--no-telemetry", action="store_true")
    parser.add_argument("--kill-shard", type=int, default=None,
                        help="inject a whole-shard death on this shard")
    parser.add_argument("--kill-at", type=int, default=4_000,
                        help="shard-local write count of the injected death")
    parser.add_argument("--balance", action="store_true",
                        help="steer hot addresses away from high-risk "
                             "shards (repro.balance)")
    parser.add_argument("--balance-every", type=int, default=None,
                        help="global writes between steering checkpoints "
                             "(default: steer at shard deaths only)")
    parser.add_argument("--remap-budget", type=int, default=8,
                        help="max hot/cold swaps per rebalance round")
    parser.add_argument("--add-shard-at", type=int, default=None,
                        help="global write count at which a fresh shard "
                             "joins the array")
    parser.add_argument("--json", type=str, default=None,
                        help="write the full result as JSON to this path")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _decoder(engine_config: ArrayConfig) -> InterleavedDecoder:
    return InterleavedDecoder(engine_config.num_shards,
                              engine_config.software_blocks,
                              interleave=engine_config.interleave,
                              page_blocks=engine_config.page_blocks)


def _workload(args: argparse.Namespace,
              engine_config: ArrayConfig) -> DistributionTrace:
    decoder = _decoder(engine_config)
    if args.workload == "uniform":
        return uniform_workload(decoder, seed=args.seed)
    if args.workload == "attack":
        return shard_attack_workload(decoder, shard=args.attack_shard,
                                     hot_share=args.hot_share,
                                     seed=args.seed)
    if args.workload == "zipf":
        return zipf_workload(decoder, exponent=args.zipf_exponent,
                             seed=args.seed)
    if args.workload == "trace":
        if args.trace is None:
            raise ConfigurationError("--workload trace needs --trace FILE")
        return trace_workload(decoder, args.trace, seed=args.seed)
    return hotspot_workload(decoder, cov=args.cov, seed=args.seed)


def trace_digest_lines(path: str, config: ArrayConfig) -> List[str]:
    """Per-shard digests of a recorded trace under this array geometry.

    This is the array's half of the serve/array equivalence pin: the
    digests are computed from the file's records in file order, exactly
    what the serving layer issues when replaying the same file.
    """
    from ..workloads import TraceReplay, shard_digests
    replay = TraceReplay.load(path)
    digests = shard_digests(replay.records[:, 0], _decoder(config))
    return [f"  trace s{sid}: {digest}"
            for sid, digest in digests.items()]


def render(result: ArrayResult) -> str:
    """Human summary: aggregate line plus the per-shard census."""
    report = result.report
    stop = report.stop.render() if report.stop is not None else "running"
    lines = [
        f"array[{report.num_shards}x] policy={report.policy} "
        f"interleave={report.interleave} rounds={report.rounds}",
        f"  stop: {stop}",
        f"  total writes {report.total_writes:,}, "
        f"failed {report.failed_fraction:.1%}, "
        f"usable {report.usable_fraction:.1%}",
        f"  dead shards: "
        + (", ".join(str(s) for s in report.dead_shards) or "none"),
    ]
    counters = result.snapshot.get("counters", {})
    if "balance.migration-writes" in counters:
        lines.append(
            f"  balance: {counters.get('balance.remap-swaps', 0)} swaps, "
            f"{counters.get('balance.shards-added', 0)} shard(s) added, "
            f"{counters['balance.migration-writes']} migration writes")
    for shard in report.shards:
        died = (f"died @ ~{shard.died_at_global:,} global"
                if shard.died_at_global is not None else "survived")
        lines.append(
            f"  s{shard.shard}: share {shard.share:.2f}"
            f" -> {shard.final_share:.2f}, "
            f"{shard.local_writes:,} local writes, "
            f"stop={shard.stop}, {died}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.trace is not None:
        args.workload = "trace"
    schedule: Optional[FaultSchedule] = None
    if args.kill_shard is not None:
        schedule = shard_death_schedule(args.kill_shard, args.kill_at,
                                        args.shard_blocks)
    try:
        config = ArrayConfig(
            num_shards=args.shards, shard_blocks=args.shard_blocks,
            interleave=args.interleave, policy=args.policy,
            page_blocks=args.page_blocks, mean_endurance=args.mean,
            endurance_cov=args.endurance_cov, psi=args.psi,
            recovery=args.recovery, dead_fraction=args.dead_fraction,
            batch_writes=args.batch_writes, max_writes=args.max_writes,
            telemetry=not args.no_telemetry, seed=args.seed,
            balance=args.balance, balance_every=args.balance_every,
            remap_budget=args.remap_budget,
            add_shard_at=args.add_shard_at)
        engine = ArrayEngine(config, _workload(args, config),
                             label=f"array-{args.workload}", jobs=args.jobs,
                             batch=args.batch, schedule=schedule)
        result = engine.run()
    except ReproError as exc:  # repro: allow(EXC-SWALLOW): CLI boundary — a bad flag combination becomes exit code 2, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(render(result))
        if args.trace is not None:
            for line in trace_digest_lines(args.trace, config):
                print(line)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, sort_keys=True)
        if not args.quiet:
            print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
