"""A write trace whose distribution changes at scheduled write counts.

Degraded-mode operation re-decodes a dead shard's traffic onto the
survivors, so a surviving shard's local write stream is *piecewise
stationary*: one distribution up to the re-decode point, another after
it.  :class:`SegmentedTrace` models exactly that — an ordered list of
``(start_write, probabilities)`` segments over one virtual block space.

Replay determinism is the load-bearing property: the array engine re-runs
a surviving shard from write zero each round with more segments appended,
and the shared prefix must reproduce **byte-identical** draws.  Two design
points guarantee it:

* every segment owns an independent generator derived from the trace seed
  and the segment *index* (not its content), so appending segment ``k+1``
  cannot perturb segment ``k``'s stream;
* a ``batch_counts`` call that falls entirely inside one segment issues
  exactly one multinomial draw from that segment's generator, so as long
  as the caller keeps segment boundaries on epoch boundaries (the array
  engine quantizes them), the draw sequence of a prefix is independent of
  what comes later.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, derive_rng
from ..traces.base import WriteTrace


class SegmentedTrace(WriteTrace):
    """Piecewise-stationary trace: scheduled distribution switches."""

    def __init__(self, segments: Sequence[Tuple[int, np.ndarray]],
                 name: str = "segmented", seed: SeedLike = None) -> None:
        if not segments:
            raise ConfigurationError("SegmentedTrace needs >= 1 segment")
        starts: List[int] = []
        tables: List[np.ndarray] = []
        width = -1
        for start, raw in segments:
            probabilities = np.asarray(raw, dtype=np.float64)
            if width < 0:
                width = len(probabilities)
            elif len(probabilities) != width:
                raise ConfigurationError(
                    "all segments must cover the same virtual space")
            total = probabilities.sum()
            if total <= 0 or (probabilities < 0).any():
                raise ConfigurationError(
                    "segment probabilities must be non-negative, sum > 0")
            starts.append(int(start))
            tables.append(probabilities / total)
        if starts[0] != 0:
            raise ConfigurationError("first segment must start at write 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError(
                "segment starts must be strictly increasing")
        super().__init__(width, name=name)
        self._starts = starts
        self._tables = tables
        self._seed = seed
        self._rngs = [derive_rng(seed, f"segtrace-{name}-{k}")
                      for k in range(len(starts))]
        #: Total writes drawn so far (selects the active segment).
        self._position = 0

    @property
    def position(self) -> int:
        """Writes drawn since construction or the last :meth:`reset`."""
        return self._position

    @property
    def num_segments(self) -> int:
        """Number of distribution segments."""
        return len(self._starts)

    def _segment_index(self, position: int) -> int:
        return bisect.bisect_right(self._starts, position) - 1

    # --------------------------------------------------------------- drawing

    def next_write(self) -> int:
        index = self._segment_index(self._position)
        value = int(self._rngs[index].choice(self.virtual_blocks,
                                             p=self._tables[index]))
        self._position += 1
        return value

    def batch_counts(self, batch: int) -> np.ndarray:
        """Per-block counts for the next *batch* writes, segment-aware.

        A batch spanning a boundary is split there, each piece drawn from
        its own segment's generator — correct at any alignment, and one
        single full-batch draw in the aligned case the engine arranges.
        """
        counts = np.zeros(self.virtual_blocks, dtype=np.int64)
        remaining = batch
        while remaining > 0:
            index = self._segment_index(self._position)
            if index + 1 < len(self._starts):
                room = self._starts[index + 1] - self._position
            else:
                room = remaining
            take = min(remaining, room)
            counts += self._rngs[index].multinomial(take,
                                                    self._tables[index])
            self._position += take
            remaining -= take
        return counts

    def reset(self) -> None:
        self._rngs = [derive_rng(self._seed, f"segtrace-{self.name}-{k}")
                      for k in range(len(self._starts))]
        self._position = 0

    # --------------------------------------------------------------- folding

    def restricted_to(self, virtual_blocks: int) -> "SegmentedTrace":
        """Fold every segment onto a smaller virtual space (tail wraps)."""
        if virtual_blocks >= self.virtual_blocks:
            return self
        folded: List[Tuple[int, np.ndarray]] = []
        for start, table in zip(self._starts, self._tables):
            squeezed = np.zeros(virtual_blocks, dtype=np.float64)
            for base in range(0, self.virtual_blocks, virtual_blocks):
                chunk = table[base:base + virtual_blocks]
                squeezed[:len(chunk)] += chunk
            folded.append((start, squeezed))
        return SegmentedTrace(folded, name=f"{self.name}-folded",
                              seed=self._seed)
