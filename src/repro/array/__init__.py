"""Sharded multi-device PCM arrays behind an interleaved decoder.

Everything below :mod:`repro.array` simulates *one* chip; this package
scales out: N independent shard devices — each a full chip + Start-Gap +
recovery stack with its own derived seed — behind an
:class:`InterleavedDecoder` that round-robins the global block space
across them, driven by an :class:`ArrayEngine` that runs the shards
shared-nothing on the parallel harness and merges their series and
telemetry into one array-level result.

The new failure regime this opens is *array-level* end of life: with the
``fail-stop`` policy the array dies with its first shard; with the
``degraded`` policy a dead shard drops out of the decoder, its traffic
re-decodes onto the survivors (a :class:`SegmentedTrace` distribution
switch at the next epoch boundary), and the array keeps serving at
reduced usable capacity until the last shard dies.  Both are reported
through an :class:`ArrayEndOfLifeReport` carrying a per-shard census.

Run one from the command line with ``python -m repro.array``; the
``fig_array`` experiment sweeps shard counts and workloads.
"""

from .decoder import INTERLEAVE_MODES, InterleavedDecoder
from .engine import (ARRAY_POLICIES, ArrayConfig, ArrayEngine, ArrayResult)
from .report import ArrayEndOfLifeReport, ShardCensus
from .shard import deterministic_snapshot, run_shard_cell, shard_seed
from .trace import SegmentedTrace
from .workloads import (hotspot_workload, shard_attack_workload,
                        trace_workload, uniform_workload, zipf_workload)

__all__ = [
    "ARRAY_POLICIES",
    "ArrayConfig",
    "ArrayEndOfLifeReport",
    "ArrayEngine",
    "ArrayResult",
    "INTERLEAVE_MODES",
    "InterleavedDecoder",
    "SegmentedTrace",
    "ShardCensus",
    "deterministic_snapshot",
    "hotspot_workload",
    "run_shard_cell",
    "shard_attack_workload",
    "shard_seed",
    "trace_workload",
    "uniform_workload",
    "zipf_workload",
]
