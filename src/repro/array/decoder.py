"""Interleaved address decoding across an array of shard devices.

A production deployment is not one 1 GB chip but an *array* of devices
behind a decoder that scatters the global block address space across
them.  :class:`InterleavedDecoder` implements the two standard
round-robin layouts:

``block``
    Consecutive global blocks (cachelines) rotate across shards —
    ``shard = ga mod N`` — the bandwidth-maximizing layout, which also
    spreads any hot set evenly over devices.
``page``
    Whole OS pages rotate across shards, so every block of a page lives
    on one device — the layout that keeps page retirement local to a
    single shard, at the price of letting a page-sized hot set
    concentrate on one device.

All page arithmetic is routed through the :mod:`repro.units` helpers so
the RAW-GEOM lint rule keeps every ``blocks_per_page`` operation in one
audited module.  The decoder is pure geometry: it holds no device state,
so the array engine can consult it before and after shards die.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import (BlockLike, block_at, block_offset_in_page,
                     is_page_aligned, page_of_block)

#: Supported round-robin interleaving layouts.
INTERLEAVE_MODES: Tuple[str, ...] = ("block", "page")


class InterleavedDecoder:
    """Round-robin split of a global block space across ``num_shards``.

    The global space has ``num_shards * shard_blocks`` block addresses;
    ``encode``/``decode`` form a bijection between global addresses and
    ``(shard, local)`` pairs.  Every method accepts scalars or numpy
    arrays (the engine projects whole probability vectors at once).
    """

    def __init__(self, num_shards: int, shard_blocks: int,
                 interleave: str = "block", page_blocks: int = 64) -> None:
        if num_shards < 1:
            raise ConfigurationError("array needs at least one shard")
        if shard_blocks < 1:
            raise ConfigurationError("shard_blocks must be positive")
        if interleave not in INTERLEAVE_MODES:
            raise ConfigurationError(
                f"unknown interleave {interleave!r}; "
                f"choose from {INTERLEAVE_MODES}")
        if page_blocks < 1:
            raise ConfigurationError("page_blocks must be positive")
        if interleave == "page" and not is_page_aligned(shard_blocks,
                                                        page_blocks):
            raise ConfigurationError(
                f"page interleaving needs page-aligned shards: "
                f"{shard_blocks} blocks is not a whole number of "
                f"{page_blocks}-block pages")
        self.num_shards = num_shards
        self.shard_blocks = shard_blocks
        self.interleave = interleave
        self.page_blocks = page_blocks

    @property
    def global_blocks(self) -> int:
        """Size of the global block address space."""
        return self.num_shards * self.shard_blocks

    # -------------------------------------------------------------- decoding

    def shard_of(self, block: BlockLike) -> BlockLike:
        """Shard device owning global address *block* (scalar or vector)."""
        if self.interleave == "block":
            return block % self.num_shards
        return page_of_block(block, self.page_blocks) % self.num_shards

    def local_of(self, block: BlockLike) -> BlockLike:
        """Shard-local address of global *block* (scalar or vector)."""
        if self.interleave == "block":
            return block // self.num_shards
        page = page_of_block(block, self.page_blocks)
        return block_at(page // self.num_shards,
                        block_offset_in_page(block, self.page_blocks),
                        self.page_blocks)

    def decode(self, block: BlockLike) -> Tuple[BlockLike, BlockLike]:
        """``(shard, local)`` of global *block*."""
        return self.shard_of(block), self.local_of(block)

    def encode(self, shard: BlockLike, local: BlockLike) -> BlockLike:
        """Global address of *local* on shard *shard* (inverse of decode)."""
        if np.any(np.asarray(shard) < 0) \
                or np.any(np.asarray(shard) >= self.num_shards):
            raise ConfigurationError(
                f"shard {shard} out of range [0, {self.num_shards})")
        if self.interleave == "block":
            return local * self.num_shards + shard
        page = page_of_block(local, self.page_blocks)
        return block_at(page * self.num_shards + shard,
                        block_offset_in_page(local, self.page_blocks),
                        self.page_blocks)

    # ----------------------------------------------------------- projections

    def shard_masses(self, probabilities: np.ndarray) -> np.ndarray:
        """Traffic mass each shard receives under a global distribution."""
        probabilities = self._checked(probabilities)
        shards = self.shard_of(np.arange(self.global_blocks, dtype=np.int64))
        return np.bincount(shards, weights=probabilities,
                           minlength=self.num_shards)

    def local_mass(self, probabilities: np.ndarray,
                   shard: int) -> np.ndarray:
        """Shard-local mass vector projected from a global distribution.

        Unnormalized: entry ``l`` is the global probability of the global
        address that shard *shard* stores at local position ``l``, so the
        vector sums to the shard's share of the traffic (possibly zero
        for a shard no global address of interest maps to).
        """
        probabilities = self._checked(probabilities)
        where = self.encode(shard,
                            np.arange(self.shard_blocks, dtype=np.int64))
        return probabilities[where].astype(np.float64)

    def _checked(self, probabilities: np.ndarray) -> np.ndarray:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != (self.global_blocks,):
            raise ConfigurationError(
                f"distribution covers {probabilities.shape} addresses, "
                f"decoder needs ({self.global_blocks},)")
        return probabilities
