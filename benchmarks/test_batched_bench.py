"""Batched-kernel benchmark: campaign throughput vs the per-process path.

The 100-seed campaign is the workload the struct-of-arrays kernel exists
for: one hundred independent chip lifetimes at the campaign's default
working point.  The baseline runs a 16-seed subset the way figure grids
always ran — one :class:`~repro.sim.fast.FastEngine` per cell through the
``--jobs 2`` process pool — while the batched run folds all hundred cells
into one lockstep :class:`~repro.sim.batched.BatchedEngine`.

Two pins:

* throughput — batched cells/sec must be at least 10x the per-process
  path's (the tentpole's reason to exist);
* equivalence — the 16 baseline cells must appear byte-identical inside
  the batched payload (same seed root, same derived streams).
"""

import json
import time

from repro.sim.campaign import run_campaign

BASELINE_SEEDS = 16
BATCHED_SEEDS = 100
SPEEDUP_FLOOR = 10.0


def _timed(seeds, jobs, batch):
    started = time.perf_counter()
    payload = run_campaign(seeds, seed=0, jobs=jobs, batch=batch)
    return payload, time.perf_counter() - started


def test_batched_campaign_throughput(benchmark, once, capsys):
    baseline, baseline_seconds = _timed(BASELINE_SEEDS, jobs=2, batch=1)
    batched, batched_seconds = once(benchmark, _timed, BATCHED_SEEDS,
                                    jobs=1, batch=BATCHED_SEEDS)
    baseline_cps = BASELINE_SEEDS / baseline_seconds
    batched_cps = BATCHED_SEEDS / batched_seconds
    speedup = batched_cps / baseline_cps
    with capsys.disabled():
        print()
        print(f"campaign throughput: per-process {baseline_cps:.2f} "
              f"cells/s ({BASELINE_SEEDS} seeds, jobs=2), batched "
              f"{batched_cps:.2f} cells/s ({BATCHED_SEEDS} seeds, "
              f"batch={BATCHED_SEEDS}) -> {speedup:.1f}x")
    # Byte-identity: the batched campaign must contain the per-process
    # subset verbatim — same keys, same values, bit for bit.
    subset = {key: batched["cells"][key] for key in baseline["cells"]}
    assert json.dumps(subset, sort_keys=True) == \
        json.dumps(baseline["cells"], sort_keys=True)
    assert speedup >= SPEEDUP_FLOOR, (baseline_cps, batched_cps)
