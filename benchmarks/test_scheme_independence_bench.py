"""Scheme-independence benchmark: the framework's headline claim.

"WL-Reviver assumes only one fundamental operation common to any of such
schemes" — so revival must deliver for structurally different migrators.
This benchmark runs four scheme families (Start-Gap, Regioned Start-Gap,
single- and two-level Security Refresh) under identical hardware and
workload, with and without the framework, and asserts every family gains
substantially from revival.
"""

from repro.config import SecurityRefreshConfig, StartGapConfig
from repro.ecc import ECP
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import FastConfig, FastEngine
from repro.traces import hotspot_distribution
from repro.wl import (
    RegionedStartGap,
    SecurityRefresh,
    StartGap,
    TwoLevelSecurityRefresh,
)

NUM_BLOCKS = 1024
MEAN = 800
PSI = 12

SCHEMES = {
    "StartGap": lambda: StartGap(NUM_BLOCKS,
                                 config=StartGapConfig(psi=PSI)),
    "RegionedStartGap": lambda: RegionedStartGap(
        NUM_BLOCKS, num_regions=4, config=StartGapConfig(psi=PSI)),
    "SecurityRefresh": lambda: SecurityRefresh(
        NUM_BLOCKS, config=SecurityRefreshConfig(refresh_interval=PSI)),
    "TwoLevelSecRef": lambda: TwoLevelSecurityRefresh(
        NUM_BLOCKS, num_subregions=8, inner_interval=PSI),
}


def lifetime(scheme_factory, recovery: str) -> int:
    geometry = AddressGeometry(num_blocks=NUM_BLOCKS)
    endurance = EnduranceModel(num_blocks=NUM_BLOCKS, mean=MEAN, cov=0.2,
                               max_order=12, seed=3)
    chip = PCMChip(geometry, ECP(endurance, 6))
    trace = hotspot_distribution(NUM_BLOCKS, target_cov=8.0, seed=9)
    engine = FastEngine(chip, scheme_factory(), trace,
                        FastConfig(recovery=recovery, batch_writes=4000,
                                   seed=1))
    return engine.run().lifetime_writes


def test_every_scheme_family_gains_from_revival(benchmark, once, capsys):
    def sweep():
        return {name: (lifetime(factory, "none"),
                       lifetime(factory, "reviver"))
                for name, factory in SCHEMES.items()}

    results = once(benchmark, sweep)
    with capsys.disabled():
        print()
        for name, (frozen, revived) in results.items():
            gain = revived / max(frozen, 1) - 1.0
            print(f"  {name:18s} frozen={frozen:>11,} "
                  f"revived={revived:>11,}  (+{gain:.0%})")
    for name, (frozen, revived) in results.items():
        assert revived > frozen * 1.5, name  # >= +50% everywhere
    # Revived lifetimes of all families land in the same ballpark: the
    # framework, not the scheme, is what carries the late-life chip.
    revived = [value for _, value in results.values()]
    assert max(revived) / min(revived) < 3.0
