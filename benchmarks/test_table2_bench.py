"""Table II benchmark: access time and usable space at fixed failure ratios.

Shape assertions (Section IV-D):

* with the remap cache both systems sit near 1.00 PCM accesses/request;
* WL-Reviver's uncached penalty is 2 accesses vs LLS's 3, so LLS's
  uncached access time is the larger of the two;
* WL-Reviver retains more software-usable space than LLS at every ratio.
"""

import pytest

from repro.experiments import table2
from repro.experiments.common import build_engine, build_lls_engine, \
    scaled_parameters
from repro.experiments.table2 import measure_access_time


def test_table2(benchmark, once, capsys):
    result = once(benchmark, table2.run, scale="tiny",
                  benchmarks=["mg", "ocean"], ratios=[0.10, 0.20, 0.30],
                  samples=50_000)
    with capsys.disabled():
        print()
        print(table2.render(result))
    data = table2.as_dict(result)
    for ratio, systems in data.items():
        for bench in ("mg", "ocean"):
            wlr = systems["WL-Reviver"][bench]
            lls = systems["LLS"][bench]
            assert 1.0 <= wlr["access_time"] < 1.1, (ratio, bench)
            assert 1.0 <= lls["access_time"] < 1.1, (ratio, bench)
            assert wlr["usable"] >= lls["usable"], (ratio, bench)
    # More failures, less usable space, for both systems.
    assert data["30%"]["WL-Reviver"]["ocean"]["usable"] < \
        data["10%"]["WL-Reviver"]["ocean"]["usable"]


def test_uncached_access_cost_ordering(benchmark, once, capsys):
    """Without the cache, LLS pays 3 accesses per failed hit vs WLR's 2."""
    params = scaled_parameters("tiny")

    def measure():
        engine = build_engine(params, "ocean", recovery="reviver",
                              dead_fraction=0.2, stop_on_capacity=False)
        engine.run()
        # Same aged chip, same sampled stream: cost with WLR's 1-extra
        # penalty versus LLS's 2-extra penalty.
        as_wlr = measure_access_time(engine, extra_accesses=1,
                                     samples=50_000, seed=17)
        as_lls = measure_access_time(engine, extra_accesses=2,
                                     samples=50_000, seed=17)
        return as_wlr, as_lls

    wlr_time, lls_time = once(benchmark, measure)
    with capsys.disabled():
        print(f"\nuncached access time on the same aged chip: "
              f"2-access model={wlr_time:.4f} 3-access model={lls_time:.4f}")
    assert wlr_time > 1.0, "the aged chip must produce redirections"
    # LLS's extra bitmap read doubles the redirection penalty exactly.
    assert (lls_time - 1.0) == pytest.approx(2.0 * (wlr_time - 1.0),
                                             rel=1e-6)
