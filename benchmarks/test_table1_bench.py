"""Table I benchmark: regenerate the workload-characterization table."""

import pytest

from repro.experiments import table1


def test_table1(benchmark, once, capsys):
    result = once(benchmark, table1.run, scale="small",
                  sample_writes=500_000)
    with capsys.disabled():
        print()
        print(table1.render(result))
    data = table1.as_dict(result)
    # Every realizable CoV is calibrated to the paper's value.
    for name, row in data.items():
        if row["paper"] < 20:
            assert row["calibrated"] == pytest.approx(row["paper"], rel=0.03)
    # The sampled CoV tracks the calibrated target closely.
    for name, row in data.items():
        assert row["sampled"] == pytest.approx(row["calibrated"], rel=0.10)
    # The benchmark ordering by CoV matches Table I.
    covs = [data[name]["calibrated"] for name in
            ("ocean", "water-spatial", "radix", "blackscholes",
             "streamcluster", "swaptions", "fft", "mg")]
    assert covs == sorted(covs)
