"""Figure 6 benchmark: survival curves for ocean and mg under six systems.

Shape assertions (Section IV-B):

* WL-Reviver extends every configuration it revives;
* the improvement is larger for the biased mg than for ocean;
* ECP6 gains more from revival than PAYG (whose pool is nearly drained
  when the first failure shows).
"""

from repro.experiments import fig6

SYSTEMS = ["ECP6", "PAYG", "ECP6-SG", "PAYG-SG",
           "ECP6-SG-WLR", "PAYG-SG-WLR"]


def test_fig6(benchmark, once, capsys):
    result = once(benchmark, fig6.run, scale="tiny",
                  benchmarks=["ocean", "mg"], systems=SYSTEMS)
    with capsys.disabled():
        print()
        print(fig6.render(result))
    milestones = fig6.as_dict(result)

    for bench in ("ocean", "mg"):
        rows = milestones[bench]
        # Revival extends both ECC substrates.
        assert rows["ECP6-SG-WLR"] > rows["ECP6-SG"], bench
        assert rows["PAYG-SG-WLR"] > rows["PAYG-SG"], bench

    # Revival matters more for the biased workload.
    gain = {bench: milestones[bench]["ECP6-SG-WLR"]
            / max(milestones[bench]["ECP6-SG"], 1)
            for bench in ("ocean", "mg")}
    assert gain["mg"] > gain["ocean"]

    # ECP6's relative revival gain exceeds PAYG's (paper, Section IV-B).
    ecp6_gain = (milestones["ocean"]["ECP6-SG-WLR"]
                 / max(milestones["ocean"]["ECP6-SG"], 1))
    payg_gain = (milestones["ocean"]["PAYG-SG-WLR"]
                 / max(milestones["ocean"]["PAYG-SG"], 1))
    assert ecp6_gain >= payg_gain * 0.9
