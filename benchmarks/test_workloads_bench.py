"""Workload-suite throughput benchmark: record, replay, and amplify.

The workload package sits on every experiment's request path, so its three
hot loops get a timed pass at a realistic size (256K requests):

* generator draw throughput (``zipf_workload(...).take``);
* canonical-file round trip — ``record_workload`` then ``TraceReplay.load``
  reparsing every line;
* FTL replay — every host write walking the page-mapping/GC machinery.

Each loop must clear a conservative floor (far below a healthy machine's
rate) so a quadratic regression fails loudly while scheduler noise does
not.
"""

import time

from repro.workloads import (FTLConfig, PageMappingFTL, TraceReplay,
                             record_workload, zipf_workload)

REQUESTS = 256 * 1024
BLOCKS = 4096

# Floors in requests/second; tuned ~10x under a cold CI runner's rate.
GENERATE_FLOOR = 500_000.0
ROUND_TRIP_FLOOR = 50_000.0
FTL_FLOOR = 5_000.0


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_workload_pipeline_throughput(benchmark, once, capsys, tmp_path):
    workload = zipf_workload(BLOCKS, requests=REQUESTS, seed=9,
                             name="bench")
    records, generate_s = _timed(lambda: workload.take(REQUESTS))

    path = tmp_path / "bench.trace"

    def round_trip():
        record_workload(path, zipf_workload(BLOCKS, requests=REQUESTS,
                                            seed=9, name="bench"),
                        REQUESTS, epoch_requests=REQUESTS // 16)
        return TraceReplay.load(path)

    replay, round_trip_s = _timed(round_trip)

    ftl = PageMappingFTL(FTLConfig(logical_pages=BLOCKS,
                                   physical_blocks=BLOCKS // 64 + 8,
                                   pages_per_block=64))
    addresses = replay.records[:, 0]
    _, ftl_s = once(benchmark, lambda: _timed(
        lambda: ftl.replay(addresses, epoch_writes=REQUESTS // 16)))

    rates = {"generate": REQUESTS / generate_s,
             "round-trip": REQUESTS / round_trip_s,
             "ftl-replay": REQUESTS / ftl_s}
    with capsys.disabled():
        print()
        print(f"workloads {REQUESTS:,} requests: " +
              ", ".join(f"{name} {rate:,.0f} req/s"
                        for name, rate in rates.items()))

    assert len(replay.records) == REQUESTS
    assert ftl.host_writes > 0 and ftl.gc_writes > 0
    assert rates["generate"] > GENERATE_FLOOR, rates
    assert rates["round-trip"] > ROUND_TRIP_FLOOR, rates
    assert rates["ftl-replay"] > FTL_FLOOR, rates
