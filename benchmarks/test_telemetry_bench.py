"""Telemetry overhead benchmark: disabled hooks must be free.

The fast engine is the lifetime-scale hot path; the telemetry subsystem's
core promise is that an engine with no session attached (``telem is
None``, the default) runs the *identical* epoch code as before the
subsystem existed.  This benchmark A/B-times the same seeded FastEngine
lifetime with telemetry detached and attached:

* detached vs. attached overhead is reported (attached is allowed to
  cost a little — it times three phases per epoch);
* the detached run must not be slower than the attached one beyond noise,
  and the two must produce bit-identical simulation results either way
  (telemetry observes, never perturbs).
"""

import time

from repro.ecc import ECP
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim.fast import FastConfig, FastEngine
from repro.telemetry import TelemetrySession, attach_fast
from repro.traces import hotspot_distribution
from repro.units import blocks_of_pages
from repro.wl import StartGap

NUM_BLOCKS = 4096
MAX_WRITES = 3_000_000


def _build_engine():
    geometry = AddressGeometry(num_blocks=NUM_BLOCKS, block_bytes=64,
                               page_bytes=512)
    endurance = EnduranceModel(num_blocks=NUM_BLOCKS, mean=2_000.0, cov=0.25,
                               max_order=8, seed=17)
    chip = PCMChip(geometry, ECP(endurance, 1))
    wl = StartGap(NUM_BLOCKS)
    config = FastConfig(batch_writes=50_000, max_writes=MAX_WRITES, seed=3)
    trace = hotspot_distribution(blocks_of_pages(48, config.blocks_per_page),
                                 4.0, seed=5)
    return FastEngine(chip, wl, trace, config=config)


def _lifetime(instrumented):
    engine = _build_engine()
    if instrumented:
        attach_fast(TelemetrySession(), engine)
    started = time.perf_counter()
    engine.run()
    return engine.stats(), time.perf_counter() - started


def test_disabled_telemetry_costs_nothing(benchmark, once, capsys):
    # Interleave A/B/A to keep cache and thermal drift out of the margin.
    plain_stats, warm = _lifetime(instrumented=False)
    instr_stats, instrumented_s = _lifetime(instrumented=True)
    plain_stats2, detached_s = once(benchmark, _lifetime, instrumented=False)
    with capsys.disabled():
        print()
        print(f"fast engine {NUM_BLOCKS} blocks, "
              f"{plain_stats['total_writes']:,} writes: detached "
              f"{detached_s:.2f}s (warm-up {warm:.2f}s), instrumented "
              f"{instrumented_s:.2f}s "
              f"({instrumented_s / detached_s:.2f}x)")
    # Telemetry observes, never perturbs: identical simulation outcome.
    assert plain_stats == plain_stats2 == instr_stats
    # The detached run must show no telemetry slowdown; 20% headroom
    # absorbs scheduler noise on a busy machine (the real check is that
    # detached does not trend toward the instrumented time).
    assert detached_s <= instrumented_s * 1.2, (detached_s, instrumented_s)
