"""Array overhead benchmark: sharding must not tax the hot path.

The array engine adds a decoding/merging layer on top of N independent
FastEngine shard cells; all the heavy lifting still happens inside the
same vectorized epoch loop.  This benchmark A/B-times the same global
write budget served by one 4096-block chip versus a 4-shard array of
1024-block devices (same total capacity, same page size, uniform
traffic), both healthy throughout, and pins the array's wall-clock to a
small multiple of the single chip's.

The array is allowed to cost something — four quarter-size epoch loops
do less work per vector operation and the harness adds bookkeeping — but
a per-shard slowdown (array time growing with the shard count rather
than the work) would show up as a blown factor here.
"""

import time

import numpy as np

from repro.array import ArrayConfig, ArrayEngine, uniform_workload
from repro.ecc import ECP
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim.fast import FastConfig, FastEngine
from repro.traces import DistributionTrace
from repro.wl import StartGap

TOTAL_BLOCKS = 4096
SHARDS = 4
PAGE_BLOCKS = 16
GLOBAL_WRITES = 2_000_000


def _single_chip():
    geometry = AddressGeometry(num_blocks=TOTAL_BLOCKS, block_bytes=64,
                               page_bytes=64 * PAGE_BLOCKS)
    endurance = EnduranceModel(num_blocks=TOTAL_BLOCKS, mean=2_000.0,
                               cov=0.2, max_order=8, seed=17)
    chip = PCMChip(geometry, ECP(endurance, 1))
    config = FastConfig(batch_writes=50_000, max_writes=GLOBAL_WRITES,
                        blocks_per_page=PAGE_BLOCKS, seed=3)
    trace = DistributionTrace(
        np.full(TOTAL_BLOCKS, 1.0 / TOTAL_BLOCKS), name="uniform", seed=5)
    engine = FastEngine(chip, StartGap(TOTAL_BLOCKS), trace, config=config)
    started = time.perf_counter()
    engine.run()
    return engine.total_writes, time.perf_counter() - started


def _shard_array():
    config = ArrayConfig(num_shards=SHARDS,
                         shard_blocks=TOTAL_BLOCKS // SHARDS,
                         page_blocks=PAGE_BLOCKS, mean_endurance=2_000.0,
                         batch_writes=50_000 // SHARDS,
                         max_writes=GLOBAL_WRITES, telemetry=False,
                         seed=3)
    engine = ArrayEngine(config, uniform_workload(engine_decoder(config),
                                                  seed=5), jobs=1)
    started = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - started


def engine_decoder(config):
    from repro.array import InterleavedDecoder
    return InterleavedDecoder(config.num_shards, config.software_blocks,
                              page_blocks=config.page_blocks)


def test_array_matches_single_chip_throughput(benchmark, once, capsys):
    # Interleave A/B/A so cache warm-up lands on neither side's tally.
    single_writes, warm = _single_chip()
    array_result, array_s = _shard_array()
    single_writes2, single_s = once(benchmark, _single_chip)
    report = array_result.report
    with capsys.disabled():
        print()
        print(f"{GLOBAL_WRITES:,} writes: single chip {single_s:.2f}s "
              f"(warm-up {warm:.2f}s), {SHARDS}-shard array {array_s:.2f}s "
              f"({array_s / single_s:.2f}x)")
    # Both served the whole budget and stayed healthy.
    assert single_writes == single_writes2 == GLOBAL_WRITES
    assert report.stop is not None
    assert report.stop.cause.value == "max-writes"
    assert report.dead_shards == ()
    assert report.total_writes == GLOBAL_WRITES
    # The array runs 4x as many quarter-size epochs plus the harness; a
    # 3x wall-clock envelope is generous headroom for that fixed overhead
    # while still catching any per-shard scaling pathology.
    assert array_s <= single_s * 3.0 + 0.5, (array_s, single_s)
