"""Parallel-harness benchmark: Fig. 5 grid scaling across worker processes.

The experiment grids are embarrassingly parallel — every (benchmark,
system) cell is an independent chip-lifetime simulation — so the process
pool should scale near-linearly until the grid runs out of cells or the
machine runs out of cores.  This benchmark times the tiny Fig. 5 grid
serially and at ``--jobs 4``, asserts the two produce bit-for-bit
identical results (the determinism contract the per-cell seed derivation
guarantees), and — on machines with enough cores — asserts at least a 2x
wall-clock improvement.
"""

import os
import time

import pytest

from repro.experiments import fig5

BENCHMARKS = ["ocean", "radix", "blackscholes", "fft", "mg"]
JOBS = 4


def _timed_run(jobs):
    started = time.perf_counter()
    result = fig5.run(scale="tiny", benchmarks=BENCHMARKS, seed=1,
                      jobs=jobs)
    return fig5.as_dict(result), time.perf_counter() - started


def test_parallel_grid_scaling(benchmark, once, capsys):
    serial, serial_seconds = _timed_run(jobs=1)
    pooled, pooled_seconds = once(benchmark, _timed_run, jobs=JOBS)
    with capsys.disabled():
        print()
        print(f"fig5 tiny grid ({len(BENCHMARKS) * 2} cells): "
              f"serial {serial_seconds:.2f}s, jobs={JOBS} "
              f"{pooled_seconds:.2f}s "
              f"({serial_seconds / pooled_seconds:.2f}x)")
    # The determinism contract: worker scheduling must not leak into
    # results.  Cell seeds derive from (experiment seed, cell key) alone.
    assert pooled == serial
    if os.cpu_count() >= JOBS:
        # Near-linear scaling; 2x at 4 workers is a loose floor that
        # leaves room for pool start-up and result pickling.
        assert serial_seconds / pooled_seconds >= 2.0, (
            serial_seconds, pooled_seconds)
    else:
        pytest.skip(f"only {os.cpu_count()} cores: speedup floor needs "
                    f">= {JOBS}; determinism still verified above")
