"""Figure 5 benchmark: lifetime per benchmark, ECP6-SG vs ECP6-SG-WLR.

Shape assertions (the paper's claims, Section IV-B):

* the unrevived baseline's lifetime is anti-correlated with write CoV;
* WL-Reviver improves every benchmark's lifetime (paper: +36%..+325% at
  1 GB scale; scaled chips amplify the high-CoV end);
* WL-Reviver's lifetimes vary far less across benchmarks.
"""

import numpy as np

from repro.experiments import fig5

BENCHMARKS = ["ocean", "radix", "blackscholes", "fft", "mg"]


def test_fig5(benchmark, once, capsys):
    result = once(benchmark, fig5.run, scale="tiny", benchmarks=BENCHMARKS)
    with capsys.disabled():
        print()
        print(fig5.render(result))
    rows = result.rows  # CoV-sorted
    # WL-Reviver always wins, and substantially (>= 30%, the paper's floor).
    for row in rows:
        assert row.wlr_lifetime > row.sg_lifetime
        assert row.improvement >= 0.30, row.benchmark
    # Baseline lifetime decreases from the lowest-CoV to the highest-CoV
    # benchmark (monotone trend over the spread, tolerant of local noise).
    sg = [row.sg_lifetime for row in rows]
    assert sg[0] == max(sg)
    assert sg[-1] == min(sg)
    correlation = np.corrcoef([row.write_cov for row in rows], sg)[0, 1]
    assert correlation < 0.0
    # Revival flattens the cross-benchmark variation.
    wlr = [row.wlr_lifetime for row in rows]
    assert max(sg) / min(sg) > max(wlr) / min(wlr)
