"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures at the
``tiny`` scale (a few seconds per run), reports the simulator's throughput
through pytest-benchmark, prints the regenerated rows/series, and asserts
the paper's qualitative shape so a regression in *results* fails the run,
not just a regression in speed.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment runs simulate whole chip lifetimes; repeating them dozens of
    times per benchmark would be waste, so a single timed round is used.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
