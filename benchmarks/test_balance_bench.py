"""Balance overhead benchmark: the remap layer must not tax decoding.

:class:`~repro.balance.BalancedDecoder` replaces the base decoder's
arithmetic with two materialized-array gathers, and the balanced array
engine consults it on every steering horizon.  This benchmark A/B-times
the same global write budget through the static engine and through the
balanced engine with an idle control loop (an effectively infinite
rebalance horizon, so no swaps fire) — isolating the pure cost of the
remap indirection on the hot path — and pins the balanced run to within
10% of the static run (plus a small absolute slack for timer noise on
sub-second runs).

A bulk-decode microbench rides along: two million mixed lookups through
both decoders, pinning the gather path to at most the arithmetic path's
wall-clock (it is typically *faster*; 1.5x is a generous ceiling).
"""

import time

import numpy as np

from repro.array import (ArrayConfig, ArrayEngine, InterleavedDecoder,
                         uniform_workload)
from repro.balance import BalancedDecoder

TOTAL_BLOCKS = 4096
SHARDS = 4
PAGE_BLOCKS = 16
GLOBAL_WRITES = 2_000_000
LOOKUPS = 2_000_000


def _engine_run(balance):
    config = ArrayConfig(num_shards=SHARDS,
                         shard_blocks=TOTAL_BLOCKS // SHARDS,
                         page_blocks=PAGE_BLOCKS, mean_endurance=2_000.0,
                         batch_writes=50_000 // SHARDS,
                         max_writes=GLOBAL_WRITES, telemetry=False, seed=3,
                         balance=balance,
                         balance_every=10 * GLOBAL_WRITES if balance
                         else None)
    decoder = InterleavedDecoder(config.num_shards, config.software_blocks,
                                 page_blocks=config.page_blocks)
    engine = ArrayEngine(config, uniform_workload(decoder, seed=5), jobs=1)
    started = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - started


def _bulk_decode(decoder, addresses):
    started = time.perf_counter()
    for _ in range(5):
        decoder.shard_of(addresses)
        decoder.local_of(addresses)
    return time.perf_counter() - started


def test_balanced_decoder_overhead_is_bounded(benchmark, once, capsys):
    # Interleave A/B/A so cache warm-up lands on neither side's tally.
    _warm, warm_s = _engine_run(False)
    balanced_result, balanced_s = _engine_run(True)
    static_result, static_s = once(benchmark, _engine_run, False)

    base = InterleavedDecoder(SHARDS, TOTAL_BLOCKS // SHARDS,
                              page_blocks=PAGE_BLOCKS)
    wrapped = BalancedDecoder(base)
    addresses = np.random.default_rng(11).integers(
        0, base.global_blocks, size=LOOKUPS)
    base_decode_s = _bulk_decode(base, addresses)
    wrapped_decode_s = _bulk_decode(wrapped, addresses)

    with capsys.disabled():
        print()
        print(f"{GLOBAL_WRITES:,} writes: static {static_s:.2f}s "
              f"(warm-up {warm_s:.2f}s), balanced {balanced_s:.2f}s "
              f"({balanced_s / static_s:.2f}x); {LOOKUPS:,} decodes: "
              f"arithmetic {base_decode_s:.3f}s, "
              f"gather {wrapped_decode_s:.3f}s")

    # Both engines served the whole budget and stayed healthy.
    assert static_result.report.total_writes == GLOBAL_WRITES
    assert balanced_result.report.total_writes == GLOBAL_WRITES
    assert static_result.report.dead_shards == ()
    assert balanced_result.report.dead_shards == ()
    # No swaps fired: the only difference is the remap indirection.
    counters = balanced_result.snapshot["counters"]
    assert counters.get("balance.remap-swaps", 0) == 0
    # The pin: the remap layer costs at most 10% of the static engine's
    # wall-clock (plus timer-noise slack on sub-second runs).
    assert balanced_s <= static_s * 1.10 + 0.25, (balanced_s, static_s)
    # The gathers must not be slower than the arithmetic they replace.
    assert wrapped_decode_s <= base_decode_s * 1.5 + 0.05, (
        wrapped_decode_s, base_decode_s)
