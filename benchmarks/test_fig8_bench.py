"""Figure 8 benchmark: software-usable space, LLS vs WL-Reviver.

Shape assertions (Section IV-D):

* LLS prevents the unrevived baseline's precipitous collapse but sustains
  far fewer writes than WL-Reviver;
* the ordering WL-Reviver > LLS > frozen baseline holds for both the
  uniform-ish ocean and the biased mg ("the more uniform write
  distribution of ocean barely helps" LLS close the gap).
"""

from repro.experiments import fig8


def test_fig8(benchmark, once, capsys):
    result = once(benchmark, fig8.run, scale="tiny",
                  benchmarks=["ocean", "mg"])
    with capsys.disabled():
        print()
        print(fig8.render(result))
    milestones = fig8.as_dict(result)

    for bench in ("ocean", "mg"):
        rows = milestones[bench]
        assert rows["WL-Reviver"] > rows["LLS"], bench
        assert rows["LLS"] > rows["ECP6-SG"], bench

    # LLS stays well behind WL-Reviver even on ocean (paper: the uniform
    # distribution "barely helps" because of the restricted randomization).
    assert milestones["ocean"]["LLS"] < 0.8 * milestones["ocean"]["WL-Reviver"]

    # The LLS runs actually exercised chunk reservation.
    for curve in result.curves:
        if curve.system == "LLS":
            assert curve.stats["lls_chunks"] >= 1
