"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these quantify our own design space:

* randomizer choice for Start-Gap (Feistel vs full permutation vs the
  restricted half-space variant LLS is stuck with);
* remap-cache size sweep for the Table II access-time result;
* engine-throughput measurements (exact vs fast) documenting why the
  vectorized engine exists;
* psi sensitivity (migration overhead vs leveling quality).
"""

import pytest

from repro.config import CacheConfig, StartGapConfig
from repro.ecc import ECP
from repro.experiments.common import build_engine, scaled_parameters
from repro.experiments.table2 import measure_access_time
from repro.mc import RemapCache
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.rng import make_rng
from repro.sim import FastConfig, FastEngine
from repro.traces import hotspot_distribution
from repro.wl import StartGap, make_randomizer


def lifetime_with_randomizer(kind: str) -> int:
    num_blocks = 1024
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=800, cov=0.2,
                               max_order=10, seed=3)
    chip = PCMChip(geometry, ECP(endurance, 6))
    randomizer = make_randomizer(kind, num_blocks - 1, seed=2)
    wl = StartGap(num_blocks, config=StartGapConfig(psi=12),
                  randomizer=randomizer)
    trace = hotspot_distribution(num_blocks, 8.0, clustered=True, seed=9)
    engine = FastEngine(chip, wl, trace,
                        FastConfig(recovery="reviver", batch_writes=4000,
                                   seed=1))
    return engine.run().lifetime_writes


def test_ablation_randomizer_choice(benchmark, once, capsys):
    """Any static randomization clearly beats none; Feistel tracks a true
    random permutation.  (The *restricted* variant's damage is systemic —
    it shows through the full LLS composite in the Figure 8 benchmark
    rather than in this isolated sweep.)"""
    def sweep():
        return {kind: lifetime_with_randomizer(kind)
                for kind in ("feistel", "permutation", "restricted",
                             "identity")}

    lifetimes = once(benchmark, sweep)
    with capsys.disabled():
        print()
        for kind, value in lifetimes.items():
            print(f"  randomizer={kind:12s} lifetime={value:>12,}")
    assert lifetimes["feistel"] > lifetimes["identity"]
    assert lifetimes["permutation"] > lifetimes["identity"]
    # Feistel approximates a true random permutation well.
    ratio = lifetimes["feistel"] / lifetimes["permutation"]
    assert 0.6 < ratio < 1.7


def test_ablation_cache_size_sweep(benchmark, once, capsys):
    """Access time converges to 1.0 as the remap cache grows (Table II)."""
    params = scaled_parameters("tiny")

    def sweep():
        engine = build_engine(params, "mg", recovery="reviver",
                              dead_fraction=0.3, stop_on_capacity=False)
        engine.run()
        times = {}
        for entries in (0, 8, 64, 512):
            cache = None
            if entries:
                cache = RemapCache(CacheConfig(capacity_entries=entries,
                                               associativity=4))
            times[entries] = measure_access_time(
                engine, extra_accesses=1, samples=50_000, cache=cache)
        return times

    times = once(benchmark, sweep)
    with capsys.disabled():
        print()
        for entries, value in times.items():
            print(f"  cache={entries:>4} entries: "
                  f"avg access = {value:.4f}")
    assert times[512] <= times[8] <= times[0] + 1e-9


def test_ablation_psi_sensitivity(benchmark, once, capsys):
    """Smaller psi levels harder but pays more migration wear."""
    def sweep():
        out = {}
        for psi in (4, 16, 64):
            num_blocks = 1024
            geometry = AddressGeometry(num_blocks=num_blocks)
            endurance = EnduranceModel(num_blocks=num_blocks, mean=800,
                                       cov=0.2, max_order=10, seed=3)
            chip = PCMChip(geometry, ECP(endurance, 6))
            wl = StartGap(num_blocks, config=StartGapConfig(psi=psi))
            trace = hotspot_distribution(num_blocks, 8.0, seed=9)
            engine = FastEngine(chip, wl, trace,
                                FastConfig(recovery="reviver",
                                           batch_writes=4000, seed=1))
            out[psi] = engine.run().lifetime_writes
        return out

    lifetimes = once(benchmark, sweep)
    with capsys.disabled():
        print()
        for psi, value in lifetimes.items():
            print(f"  psi={psi:>3}: lifetime={value:>12,}")
    assert all(value > 0 for value in lifetimes.values())


def test_throughput_exact_engine(benchmark):
    """Exact-engine throughput: per-write fidelity costs real time."""
    from repro.config import ReviverConfig
    from repro.mc import ReviverController
    from repro.osmodel import PagePool

    geometry = AddressGeometry(num_blocks=128, block_bytes=64,
                               page_bytes=512)
    endurance = EnduranceModel(num_blocks=128, mean=100_000, cov=0.25,
                               max_order=8, seed=11)
    chip = PCMChip(geometry, ECP(endurance, 1), track_contents=True)
    wl = StartGap(128)
    ospool = PagePool(wl.logical_blocks, blocks_per_page=8,
                      utilization=0.8, seed=5)
    controller = ReviverController(
        chip, wl, ospool, reviver_config=ReviverConfig(),
        copy_on_retire=True)
    rng = make_rng(1)
    space = controller.ospool.virtual_blocks

    def write_block():
        for _ in range(2_000):
            controller.service_write(int(rng.integers(space)), tag=1)

    benchmark.pedantic(write_block, rounds=3, iterations=1)


def test_throughput_fast_engine(benchmark):
    """Fast-engine throughput: vectorized epochs over the same stack."""
    num_blocks = 4096
    geometry = AddressGeometry(num_blocks=num_blocks)
    endurance = EnduranceModel(num_blocks=num_blocks, mean=10**7, cov=0.2,
                               max_order=10, seed=3)
    chip = PCMChip(geometry, ECP(endurance, 6))
    wl = StartGap(num_blocks, config=StartGapConfig(psi=8))
    trace = hotspot_distribution(num_blocks, 8.0, seed=9)
    engine = FastEngine(chip, wl, trace,
                        FastConfig(recovery="reviver", batch_writes=50_000,
                                   max_writes=10**9, seed=1))

    def epoch_block():
        engine._epoch(200_000)

    benchmark.pedantic(epoch_block, rounds=3, iterations=1)
