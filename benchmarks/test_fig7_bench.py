"""Figure 7 benchmark: user-usable space, WL-Reviver vs adapted FREE-p.

Shape assertions (Section IV-C):

* WL-Reviver keeps 100% usable space before the first failure and
  dominates every FREE-p pre-reservation;
* each FREE-p curve starts at 1 - reserve and cliffs at exhaustion;
* for the biased mg, larger reserves postpone the cliff.

Known deviation (documented in EXPERIMENTS.md): at scaled chip sizes the
larger reserve also wins for ocean, where the paper reports 5% ahead.
"""

import pytest

from repro.experiments import fig7

RESERVES = [0.05, 0.10, 0.15]


def test_fig7(benchmark, once, capsys):
    result = once(benchmark, fig7.run, scale="tiny",
                  benchmarks=["ocean", "mg"], reserves=RESERVES)
    with capsys.disabled():
        print()
        print(fig7.render(result))
    milestones = fig7.as_dict(result)

    for bench in ("ocean", "mg"):
        rows = milestones[bench]
        wlr = rows["WL-Reviver"]
        # WL-Reviver dominates every FREE-p variant.
        for label, value in rows.items():
            if label != "WL-Reviver" and value is not None:
                assert wlr >= value, (bench, label)

    # Larger reserves postpone mg's cliff (monotone in the sweep).
    mg = milestones["mg"]
    assert mg["FREE-p 15%"] > mg["FREE-p 10%"] > mg["FREE-p 5%"]

    # Starting capacity matches the reservation.
    for curve in result.curves:
        start = curve.series.points[0].usable
        if curve.reserve is None:
            assert start == pytest.approx(1.0)
        else:
            assert start == pytest.approx(1.0 - curve.reserve, abs=0.02)
