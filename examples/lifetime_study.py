#!/usr/bin/env python
"""Lifetime study: sweep the paper's benchmarks across scheme stacks.

Reproduces the flavour of Figures 5 and 6 interactively: for each Table I
benchmark, measures chip lifetime under four stacks (no protection, ECP6,
ECP6 + Start-Gap, ECP6 + Start-Gap + WL-Reviver) and prints the survival
milestones, showing how each layer buys time and how WL-Reviver flattens
the workload sensitivity.

Run:  python examples/lifetime_study.py [--scale tiny|small]
"""

import argparse

from repro.experiments.common import (
    build_engine,
    scaled_parameters,
)
from repro.experiments.report import format_number, format_table
from repro.traces import BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small"],
                        help="chip scale (default: tiny)")
    parser.add_argument("--benchmarks", nargs="*",
                        default=["ocean", "radix", "fft", "mg"])
    args = parser.parse_args()

    params = scaled_parameters(args.scale)
    stacks = [
        ("ECP6", dict(ecc="ecp6", wear_leveling=False, recovery="none")),
        ("ECP6-SG", dict(ecc="ecp6", wear_leveling=True, recovery="none")),
        ("ECP6-SG-WLR",
         dict(ecc="ecp6", wear_leveling=True, recovery="reviver")),
        ("PAYG-SG-WLR",
         dict(ecc="payg", wear_leveling=True, recovery="reviver")),
    ]
    rows = []
    for bench in args.benchmarks:
        cells = [bench, f"{BENCHMARKS[bench].write_cov:.2f}"]
        for _, kwargs in stacks:
            engine = build_engine(params, bench, **kwargs)
            summary = engine.run()
            cells.append(format_number(summary.lifetime_writes))
        rows.append(cells)
    headers = ["Benchmark", "CoV"] + [name for name, _ in stacks]
    print(format_table(headers, rows,
                       title=f"Lifetime (writes to 30% capacity lost), "
                             f"scale={args.scale}"))
    print("\nEach layer extends life; WL-Reviver keeps the wear-leveler "
          "running after failures,\nwhich both lengthens every row and "
          "narrows the spread between easy and hostile workloads.")


if __name__ == "__main__":
    main()
