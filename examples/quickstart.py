#!/usr/bin/env python
"""Quickstart: assemble a PCM system, break it, and watch WL-Reviver work.

Builds a small chip with ECP1 error correction and Start-Gap wear leveling,
drives random writes through the full exact-fidelity memory controller
until a third of the blocks have worn out, and prints what the framework
did along the way: failures hidden without OS involvement, pages acquired,
chains switched, and the (tiny) access-time cost.

Run:  python examples/quickstart.py
"""

from repro.config import CacheConfig, ReviverConfig
from repro.ecc import ECP
from repro.errors import CapacityExhaustedError
from repro.mc import RemapCache, ReviverController
from repro.osmodel import PagePool
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.rng import make_rng
from repro.wl import StartGap


def main() -> None:
    # --- hardware: 256 blocks of 64 B, 8-block pages, weak endurance so
    # --- failures arrive quickly enough to watch.
    geometry = AddressGeometry(num_blocks=256, block_bytes=64, page_bytes=512)
    endurance = EnduranceModel(num_blocks=256, mean=500, cov=0.25,
                               max_order=8, seed=42)
    chip = PCMChip(geometry, ECP(endurance, capacity=1), track_contents=True)

    # --- system: Start-Gap over the whole device, revived by WL-Reviver,
    # --- with a small remap cache (Table II's optimization).
    wear_leveler = StartGap(chip.num_blocks)
    ospool = PagePool(wear_leveler.logical_blocks, blocks_per_page=8,
                      utilization=0.9, seed=7)
    controller = ReviverController(
        chip, wear_leveler, ospool,
        reviver_config=ReviverConfig(check_invariants=True),
        cache=RemapCache(CacheConfig(capacity_entries=64, associativity=4)),
        copy_on_retire=True)

    # --- workload: random writes with verifiable content tags.
    rng = make_rng(1)
    stored = {}
    print(f"chip: {chip.num_blocks} blocks, "
          f"{ospool.num_pages} OS pages, Start-Gap psi={wear_leveler.psi}")
    try:
        while chip.failed_fraction() < 0.34:
            vblock = int(rng.integers(ospool.virtual_blocks))
            tag = controller.writes
            controller.service_write(vblock, tag=tag)
            stored[vblock] = tag
            if controller.writes % 20_000 == 0:
                print(f"  {controller.writes:>8,} writes: "
                      f"{chip.failed_fraction():5.1%} blocks failed, "
                      f"stats={controller.reviver.stats()}")
    except CapacityExhaustedError:
        print("  the OS page pool ran dry — genuine end of chip life")

    # --- every surviving datum reads back exactly as written.
    corrupted = sum(
        1 for vblock, tag in stored.items()
        if vblock not in controller.lost_vblocks
        and controller.service_read(vblock).tag != tag)
    print(f"\nfinal: {chip.failed_fraction():.1%} blocks failed after "
          f"{controller.writes:,} writes")
    print(f"reviver: {controller.reviver.stats()}")
    print(f"average access time: {controller.stats.avg_access_time:.4f} "
          f"PCM accesses/request "
          f"(cache hit rate {controller.cache.hit_rate:.1%})")
    print(f"data integrity: {corrupted} corrupted blocks "
          f"out of {len(stored)} tracked")
    assert corrupted == 0


if __name__ == "__main__":
    main()
