#!/usr/bin/env python
"""Attack resilience: does revival survive malicious write streams?

Start-Gap and Security Refresh were designed to withstand adversarial
workloads such as Seznec's birthday-paradox attack; the WL-Reviver paper
argues the benefit of revival is "still substantial" under highly biased
or malicious writes.  This example compares chip lifetime under three
adversarial streams for the frozen baseline versus the revived system,
using the vectorized lifetime engine.

Run:  python examples/attack_resilience.py
"""

from repro.config import StartGapConfig
from repro.ecc import ECP
from repro.pcm import AddressGeometry, EnduranceModel, PCMChip
from repro.sim import FastConfig, FastEngine
from repro.traces import birthday_paradox_attack, hammer_attack
from repro.traces.synthetic import hotspot_distribution
from repro.wl import StartGap

NUM_BLOCKS = 1 << 11
MEAN_ENDURANCE = 1_000
PSI = 10


def build_engine(trace, recovery: str) -> FastEngine:
    geometry = AddressGeometry(num_blocks=NUM_BLOCKS)
    endurance = EnduranceModel(num_blocks=NUM_BLOCKS, mean=MEAN_ENDURANCE,
                               cov=0.2, max_order=12, seed=5)
    chip = PCMChip(geometry, ECP(endurance, 6))
    wear_leveler = StartGap(NUM_BLOCKS, config=StartGapConfig(psi=PSI))
    return FastEngine(chip, wear_leveler, trace,
                      FastConfig(recovery=recovery, batch_writes=5_000,
                                 seed=2))


def main() -> None:
    attacks = [
        ("birthday-paradox (64 addresses)",
         birthday_paradox_attack(NUM_BLOCKS, set_size=64, seed=3)),
        ("hammer (8 addresses)",
         hammer_attack(NUM_BLOCKS, targets=8, seed=3)),
        ("hot region (CoV 10)",
         hotspot_distribution(NUM_BLOCKS, target_cov=10.0, seed=3)),
    ]
    print(f"{NUM_BLOCKS} blocks, mean endurance {MEAN_ENDURANCE}, "
          f"Start-Gap psi={PSI}; lifetime = writes to lose 30% of capacity\n")
    print(f"{'attack':34s} {'frozen SG':>14s} {'SG + WL-Reviver':>16s} "
          f"{'gain':>8s}")
    for name, trace in attacks:
        frozen = build_engine(trace, "none").run().lifetime_writes
        revived = build_engine(trace, "reviver").run().lifetime_writes
        gain = revived / max(frozen, 1) - 1.0
        print(f"{name:34s} {frozen:>14,} {revived:>16,} {gain:>7.0%}")
    print("\nRevival keeps the wear-leveler fighting the attack instead of"
          "\nsurrendering the chip at the first casualty.")


if __name__ == "__main__":
    main()
